//! Multi-concern arbitration: turning *all* the rule fires of one safe
//! point into one coherent reconfiguration.
//!
//! The paper's MAPE loop assumes the Plan step produces a single
//! consistent change per safe point, but independent point rules — a
//! width rule and a cost guard wanting the same [`Knob`](crate::Knob),
//! two promotions overlapping on one subtree — can disagree.
//! Multi-concern autonomic work (Aldinucci/Danelutto/Kilpatrick's
//! per-concern managers; Dearle/Kirby/McCarthy's single re-solved
//! objective) coordinates explicitly instead of letting registration
//! order decide. This module is that coordination step, run by the
//! [`Reconfigurator`](crate::Reconfigurator) between
//! [`TriggerEngine::plan`](crate::TriggerEngine::plan) and application:
//!
//! 1. **Group** the safe point's fires into conflict groups: two fires
//!    conflict when they touch the same resource — `SetKnob`s whose
//!    knobs share state ([`Knob::shares_state`](crate::Knob::shares_state)),
//!    or tree actions (`Replace`/`Place`) whose targets are equal or
//!    nested within one another in the current tree. Knob actions never
//!    conflict with tree actions.
//! 2. **Pick a winner** per group under the configured
//!    [`ConflictPolicy`].
//! 3. Report losers as suppressed (the `Reconfigurator` logs them as
//!    suppressed `AdaptRecord`s and re-arms their rules) and vetoes that
//!    opposed nothing as idle (dropped silently).
//!
//! Arbitration is a **pure, deterministic** function of the fires, the
//! policy and the current tree: permuting rule registration order never
//! changes the winning set (property-tested in
//! `crates/adapt/tests/adapt_props.rs`).

use std::cmp::Ordering;
use std::sync::Arc;

use askel_skeletons::Node;

use crate::rules::RewriteAction;
use crate::trigger::PlannedRewrite;

/// How a conflict group is resolved. Every policy falls back to the same
/// deterministic total order for ties: priority (higher first), then
/// concern rank (`Reliability > Cost > Performance`), then rule name,
/// then the action's rendering — never registration order.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum ConflictPolicy {
    /// The highest-ranked fire wins its group; everything else in the
    /// group is suppressed. A veto that ranks first blocks the whole
    /// group (nothing applies); a veto outranked by an action loses like
    /// any other fire. The default.
    #[default]
    PriorityWins,
    /// Any veto in a group blocks the group regardless of rank — the
    /// conservative policy: a cost or reliability objection always
    /// holds. Groups without a veto resolve as under
    /// [`PriorityWins`](ConflictPolicy::PriorityWins).
    Veto,
    /// Each fire is scored `weight(concern) × (baseline − predicted)`
    /// seconds from its [`Forecast`](crate::Forecast) (0 without one;
    /// vetoes score 0 — "do nothing" has no predicted gain), and the
    /// highest score wins; ties fall back to the deterministic order.
    /// An unforecast action therefore cannot beat a veto on score alone
    /// — it needs rank.
    WeightedObjective {
        /// Weight applied to `Concern::Performance` gains.
        performance: f64,
        /// Weight applied to `Concern::Cost` gains.
        cost: f64,
        /// Weight applied to `Concern::Reliability` gains.
        reliability: f64,
    },
}

/// A fire arbitration rejected, and who beat it.
pub struct Suppressed {
    /// The losing fire.
    pub plan: PlannedRewrite,
    /// Name of the rule whose fire won (or vetoed) the group.
    pub by: String,
}

/// The result of arbitrating one safe point's fires.
pub struct ArbitrationOutcome {
    /// The winning set, in the order the fires were collected — at most
    /// one action per contested resource, ready to apply.
    pub winners: Vec<PlannedRewrite>,
    /// Losing fires, for the suppressed-decision audit; their rules
    /// should be re-armed.
    pub suppressed: Vec<Suppressed>,
    /// Vetoes that conflicted with nothing this safe point. Dropped
    /// without a log entry — a standing objection is not a decision.
    pub idle_vetoes: Vec<PlannedRewrite>,
}

/// Do two actions contend for the same resource, given the current tree?
///
/// * Two `SetKnob`s conflict when their knobs share state.
/// * Two tree actions (`Replace`/`Place`) conflict when their targets
///   are equal, or one target's subtree contains the other's target in
///   `root` (an outer replacement would tear out the inner one's
///   anchor).
/// * A knob action never conflicts with a tree action.
pub fn conflicts(a: &RewriteAction, b: &RewriteAction, root: &Arc<Node>) -> bool {
    use RewriteAction::{Place, Replace, SetKnob};
    let target_of = |action: &RewriteAction| match action {
        Replace { target, .. } | Place { target, .. } => Some(*target),
        SetKnob { .. } => None,
    };
    match (a, b) {
        (SetKnob { knob: ka, .. }, SetKnob { knob: kb, .. }) => ka.shares_state(kb),
        _ => match (target_of(a), target_of(b)) {
            (Some(ta), Some(tb)) => {
                if ta == tb {
                    return true;
                }
                let contains = |outer, inner| {
                    root.find(outer)
                        .is_some_and(|sub| sub.find(inner).is_some())
                };
                contains(ta, tb) || contains(tb, ta)
            }
            _ => false,
        },
    }
}

/// The deterministic total order every policy tie-breaks with: priority
/// desc, concern rank desc, rule name asc, action rendering asc.
fn rank_cmp(a: &PlannedRewrite, b: &PlannedRewrite) -> Ordering {
    b.priority
        .cmp(&a.priority)
        .then_with(|| b.concern.cmp(&a.concern))
        .then_with(|| a.rule.cmp(&b.rule))
        .then_with(|| format!("{:?}", a.action).cmp(&format!("{:?}", b.action)))
}

fn objective_score(plan: &PlannedRewrite, policy: &ConflictPolicy) -> f64 {
    let ConflictPolicy::WeightedObjective {
        performance,
        cost,
        reliability,
    } = policy
    else {
        return 0.0;
    };
    if plan.veto {
        return 0.0;
    }
    let gain = plan
        .forecast
        .map(|f| f.baseline.as_secs_f64() - f.predicted.as_secs_f64())
        .unwrap_or(0.0);
    let weight = match plan.concern {
        crate::Concern::Performance => *performance,
        crate::Concern::Cost => *cost,
        crate::Concern::Reliability => *reliability,
    };
    weight * gain
}

/// Arbitrates one safe point's fires: groups conflicting actions against
/// the current tree `root`, resolves each group under `policy`, and
/// splits the fires into winners, suppressed losers and idle vetoes. A
/// pure function — no logging, no re-arming; the
/// [`Reconfigurator`](crate::Reconfigurator) handles the bookkeeping.
pub fn arbitrate(
    plans: Vec<PlannedRewrite>,
    policy: &ConflictPolicy,
    root: &Arc<Node>,
) -> ArbitrationOutcome {
    let n = plans.len();
    // Union-find over the fires: every pairwise conflict merges groups,
    // so transitively-overlapping actions (A∩B, B∩C) arbitrate as one.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut i = i;
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if conflicts(&plans[i].action, &plans[j].action, root) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let r = find(&mut parent, i);
        groups[r].push(i);
    }

    let mut winner_idx: Vec<usize> = Vec::new();
    let mut suppressed_idx: Vec<(usize, String)> = Vec::new();
    let mut idle_idx: Vec<usize> = Vec::new();
    for group in groups.into_iter().filter(|g| !g.is_empty()) {
        if group.iter().all(|&i| plans[i].veto) {
            // Nothing to oppose: vetoes without a contested action are
            // idle, however many agree with each other.
            idle_idx.extend(group);
            continue;
        }
        if group.len() == 1 {
            winner_idx.push(group[0]);
            continue;
        }
        let mut order = group.clone();
        match policy {
            ConflictPolicy::PriorityWins => {
                order.sort_by(|&a, &b| rank_cmp(&plans[a], &plans[b]));
            }
            ConflictPolicy::Veto => {
                // Vetoes first (any veto blocks), then the usual order.
                order.sort_by(|&a, &b| {
                    plans[b]
                        .veto
                        .cmp(&plans[a].veto)
                        .then_with(|| rank_cmp(&plans[a], &plans[b]))
                });
            }
            ConflictPolicy::WeightedObjective { .. } => {
                order.sort_by(|&a, &b| {
                    objective_score(&plans[b], policy)
                        .total_cmp(&objective_score(&plans[a], policy))
                        .then_with(|| rank_cmp(&plans[a], &plans[b]))
                });
            }
        }
        let head = order[0];
        let by = plans[head].rule.clone();
        if plans[head].veto {
            // The group is blocked: every action in it is suppressed by
            // the veto, and the veto itself (plus any fellow vetoes)
            // performed its job without becoming an action — idle.
            for &i in &order {
                if plans[i].veto {
                    idle_idx.push(i);
                } else {
                    suppressed_idx.push((i, by.clone()));
                }
            }
        } else {
            winner_idx.push(head);
            for &i in &order[1..] {
                if plans[i].veto {
                    idle_idx.push(i);
                } else {
                    suppressed_idx.push((i, by.clone()));
                }
            }
        }
    }

    // Winners apply in collection order (stable across policies).
    winner_idx.sort_unstable();
    suppressed_idx.sort_by_key(|&(i, _)| i);
    idle_idx.sort_unstable();

    let mut slots: Vec<Option<PlannedRewrite>> = plans.into_iter().map(Some).collect();
    let mut take = |i: usize| slots[i].take().expect("each fire lands in exactly one bin");
    ArbitrationOutcome {
        winners: winner_idx.iter().map(|&i| take(i)).collect(),
        suppressed: suppressed_idx
            .iter()
            .map(|(i, by)| Suppressed {
                plan: take(*i),
                by: by.clone(),
            })
            .collect(),
        idle_vetoes: idle_idx.iter().map(|&i| take(i)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Concern, Knob};
    use askel_skeletons::{seq, NodeId, Skel};

    fn plan(
        rule: &str,
        action: RewriteAction,
        concern: Concern,
        priority: i32,
        veto: bool,
    ) -> PlannedRewrite {
        PlannedRewrite {
            rule: rule.to_string(),
            rule_index: 0,
            action,
            why: String::new(),
            forecast: None,
            concern,
            priority,
            veto,
        }
    }

    fn set(
        rule: &str,
        knob: &Knob,
        value: usize,
        concern: Concern,
        priority: i32,
    ) -> PlannedRewrite {
        plan(
            rule,
            RewriteAction::SetKnob {
                knob: knob.clone(),
                value,
            },
            concern,
            priority,
            false,
        )
    }

    #[test]
    fn same_knob_conflicts_distinct_knobs_do_not() {
        let probe: Skel<i64, i64> = seq(|x: i64| x);
        let root = Arc::clone(probe.node());
        let k = Knob::new("w", 4);
        let alias = Knob::from_shared("w-alias", Arc::new(std::sync::atomic::AtomicUsize::new(4)));
        let a = RewriteAction::SetKnob {
            knob: k.clone(),
            value: 8,
        };
        let b = RewriteAction::SetKnob {
            knob: k.clone(),
            value: 2,
        };
        let c = RewriteAction::SetKnob {
            knob: alias,
            value: 2,
        };
        assert!(conflicts(&a, &b, &root));
        assert!(!conflicts(&a, &c, &root), "distinct state, no conflict");
    }

    #[test]
    fn nested_tree_targets_conflict() {
        use askel_skeletons::map;
        let inner: Skel<Vec<i64>, i64> = seq(|v: Vec<i64>| v[0]);
        let outer: Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| vec![v],
            inner.clone(),
            |p: Vec<i64>| p.into_iter().sum(),
        );
        let root = Arc::clone(outer.node());
        let repl = Arc::clone(seq(|v: Vec<i64>| v[0]).node());
        let on_outer = RewriteAction::Replace {
            target: outer.id(),
            replacement: Arc::clone(&repl),
        };
        let on_inner = RewriteAction::Place {
            target: inner.id(),
            node: "hub".into(),
        };
        assert!(conflicts(&on_outer, &on_inner, &root));
        let elsewhere = RewriteAction::Place {
            target: NodeId(u64::MAX),
            node: "hub".into(),
        };
        assert!(!conflicts(&on_inner, &elsewhere, &root));
    }

    #[test]
    fn priority_wins_then_concern_rank_then_name() {
        let probe: Skel<i64, i64> = seq(|x: i64| x);
        let root = Arc::clone(probe.node());
        let k = Knob::new("w", 4);
        // Equal priority: reliability outranks performance.
        let out = arbitrate(
            vec![
                set("widen", &k, 8, Concern::Performance, 0),
                set("safety", &k, 1, Concern::Reliability, 0),
            ],
            &ConflictPolicy::PriorityWins,
            &root,
        );
        assert_eq!(out.winners.len(), 1);
        assert_eq!(out.winners[0].rule, "safety");
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].plan.rule, "widen");
        assert_eq!(out.suppressed[0].by, "safety");
        // Priority trumps concern rank.
        let out = arbitrate(
            vec![
                set("widen", &k, 8, Concern::Performance, 5),
                set("safety", &k, 1, Concern::Reliability, 0),
            ],
            &ConflictPolicy::PriorityWins,
            &root,
        );
        assert_eq!(out.winners[0].rule, "widen");
        // All equal: lexicographic rule name.
        let out = arbitrate(
            vec![
                set("beta", &k, 8, Concern::Performance, 0),
                set("alpha", &k, 2, Concern::Performance, 0),
            ],
            &ConflictPolicy::PriorityWins,
            &root,
        );
        assert_eq!(out.winners[0].rule, "alpha");
    }

    #[test]
    fn veto_policy_blocks_group_regardless_of_rank() {
        let probe: Skel<i64, i64> = seq(|x: i64| x);
        let root = Arc::clone(probe.node());
        let k = Knob::new("w", 4);
        let hold = plan(
            "cost-guard",
            RewriteAction::SetKnob {
                knob: k.clone(),
                value: 4,
            },
            Concern::Cost,
            -10,
            true,
        );
        let out = arbitrate(
            vec![set("widen", &k, 8, Concern::Performance, 99), hold],
            &ConflictPolicy::Veto,
            &root,
        );
        assert!(out.winners.is_empty(), "veto blocks even priority 99");
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].by, "cost-guard");
        assert_eq!(out.idle_vetoes.len(), 1, "the veto itself applies nothing");
    }

    #[test]
    fn idle_veto_is_dropped_silently() {
        let probe: Skel<i64, i64> = seq(|x: i64| x);
        let root = Arc::clone(probe.node());
        let k = Knob::new("w", 4);
        let k2 = Knob::new("other", 1);
        let hold = plan(
            "cost-guard",
            RewriteAction::SetKnob {
                knob: k.clone(),
                value: 4,
            },
            Concern::Cost,
            0,
            true,
        );
        let out = arbitrate(
            vec![hold, set("other", &k2, 3, Concern::Performance, 0)],
            &ConflictPolicy::Veto,
            &root,
        );
        assert_eq!(out.winners.len(), 1, "unrelated action unaffected");
        assert_eq!(out.winners[0].rule, "other");
        assert!(out.suppressed.is_empty());
        assert_eq!(out.idle_vetoes.len(), 1);
    }

    #[test]
    fn weighted_objective_prefers_the_bigger_weighted_gain() {
        use crate::forecast::Forecast;
        use askel_skeletons::TimeNs;
        let probe: Skel<i64, i64> = seq(|x: i64| x);
        let root = Arc::clone(probe.node());
        let k = Knob::new("w", 4);
        let mut fast = set("widen", &k, 8, Concern::Performance, 0);
        fast.forecast = Some(Forecast {
            predicted: TimeNs::from_secs(2),
            baseline: TimeNs::from_secs(10),
            realized: None,
        });
        let mut cheap = set("shrink", &k, 1, Concern::Cost, 0);
        cheap.forecast = Some(Forecast {
            predicted: TimeNs::from_secs(9),
            baseline: TimeNs::from_secs(10),
            realized: None,
        });
        // Performance gain 8s × 1.0 = 8 > cost gain 1s × 2.0 = 2.
        let perf_heavy = ConflictPolicy::WeightedObjective {
            performance: 1.0,
            cost: 2.0,
            reliability: 1.0,
        };
        let out = arbitrate(vec![fast.clone(), cheap.clone()], &perf_heavy, &root);
        assert_eq!(out.winners[0].rule, "widen");
        // Cost weighted 10×: 1s × 10 = 10 > 8.
        let cost_heavy = ConflictPolicy::WeightedObjective {
            performance: 1.0,
            cost: 10.0,
            reliability: 1.0,
        };
        let out = arbitrate(vec![fast, cheap], &cost_heavy, &root);
        assert_eq!(out.winners[0].rule, "shrink");
    }
}
