//! Forecast-coupled adaptation: predicting the WCT a rewrite would buy.
//!
//! The WCT controller (`askel-core`) predicts completion times by
//! expanding an Activity Dependency Graph from the estimator table and
//! scheduling it against a level of parallelism (`limited_lp`). This
//! module reuses exactly that machinery to answer the self-configuration
//! question: *"what would the predicted WCT be under the rewritten
//! skeleton?"* — closing the loop the paper's two autonomic properties
//! share one analysis for.
//!
//! Rules opt in via [`Promote::forecast_gated`](crate::Promote::forecast_gated)
//! / [`RetuneWidth::forecast_gated`](crate::RetuneWidth::forecast_gated):
//! the rule then fires only when the forecast under the rewritten
//! structure beats the forecast under the current one by a configurable
//! margin. Every forecast-gated firing carries a [`Forecast`] into the
//! decision log; the [`TriggerEngine`](crate::TriggerEngine) later fills
//! in the *realized* WCT of the first item completing under the new
//! version, so prediction accuracy is auditable — symmetric to the
//! controller's `AnalysisRecord` studies.
//!
//! Like the controller's analysis gate, the forecast refuses to guess:
//! [`predicted_wct`] returns `None` unless the estimator table covers
//! every muscle of the tree being forecast (seed replacement subtrees via
//! [`TriggerEngine::seed_from`](crate::TriggerEngine::seed_from),
//! [`TriggerEngine::with_estimates`](crate::TriggerEngine::with_estimates),
//! or estimator aliases) — an uncovered forecast gate simply keeps its
//! rule closed.

use std::sync::Arc;

use askel_core::EstimatorTable;
use askel_skeletons::{Node, TimeNs};

/// A forecast-gated rewrite's audit trail: what the gate predicted, what
/// it was compared against, and — once the first item has completed under
/// the new version — what actually happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Forecast {
    /// Predicted WCT of one item under the **rewritten** skeleton.
    pub predicted: TimeNs,
    /// Predicted WCT of one item under the skeleton as it was.
    pub baseline: TimeNs,
    /// Realized WCT of the first root submission that completed after
    /// the rewrite was applied (`None` until one does).
    pub realized: Option<TimeNs>,
}

impl Forecast {
    /// `baseline − predicted`: the improvement the gate promised.
    pub fn predicted_gain(&self) -> TimeNs {
        self.baseline.saturating_sub(self.predicted)
    }
}

/// Predicts the WCT of one submission of the skeleton rooted at `root`
/// under `lp` workers, from the estimator table alone (a cold predictive
/// ADG — no live execution state). Delegates to the controller-shared
/// [`askel_core::predictive_wct`].
///
/// Returns `None` when `estimates` does not cover every muscle of
/// `root` (the analysis gate: never decide from a guess) or the tree
/// expands to an empty graph.
pub fn predicted_wct(estimates: &EstimatorTable, root: &Arc<Node>, lp: usize) -> Option<TimeNs> {
    askel_core::predictive_wct(estimates, root, lp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::{map, seq, MuscleId, MuscleRole, Skel};

    fn fan_program() -> Skel<Vec<i64>, i64> {
        map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0]),
            |p: Vec<i64>| p.into_iter().sum::<i64>(),
        )
    }

    fn seeded(program: &Skel<Vec<i64>, i64>, card: f64) -> EstimatorTable {
        let mut est = EstimatorTable::new(0.5);
        for m in program.node().collect_muscles() {
            let d = match m.id.role {
                MuscleRole::Execute => TimeNs::from_millis(100),
                _ => TimeNs::from_millis(1),
            };
            est.init_duration(m.id, d);
            if m.id.role == MuscleRole::Split {
                est.init_cardinality(m.id, card);
            }
        }
        est
    }

    #[test]
    fn uncovered_estimates_refuse_to_forecast() {
        let program = fan_program();
        let est = EstimatorTable::new(0.5);
        assert_eq!(predicted_wct(&est, program.node(), 2), None);
    }

    #[test]
    fn forecast_scales_with_lp() {
        let program = fan_program();
        let est = seeded(&program, 8.0);
        let at1 = predicted_wct(&est, program.node(), 1).unwrap();
        let at4 = predicted_wct(&est, program.node(), 4).unwrap();
        let at8 = predicted_wct(&est, program.node(), 8).unwrap();
        assert!(at4 < at1, "parallelism shortens the forecast: {at1} {at4}");
        assert!(at8 <= at4);
        // 8 children × 100ms over 4 workers ≈ 200ms of execute time.
        let serial = TimeNs::from_millis(8 * 100);
        assert!(at1 >= serial, "{at1} vs {serial}");
        let split = MuscleId::new(program.id(), MuscleRole::Split);
        let _ = split; // keep the id handy for readers
    }

    #[test]
    fn forecast_compares_structures() {
        // A seq leaf vs its map promotion: under lp 4 the promotion's
        // forecast must win once both sides are seeded.
        let leaf = seq(|v: Vec<i64>| v.iter().sum::<i64>());
        let promoted = fan_program();
        let mut est = seeded(&promoted, 8.0);
        est.init_duration(
            MuscleId::new(leaf.id(), MuscleRole::Execute),
            TimeNs::from_millis(800),
        );
        let seq_wct = predicted_wct(&est, leaf.node(), 4).unwrap();
        let map_wct = predicted_wct(&est, promoted.node(), 4).unwrap();
        assert!(map_wct < seq_wct, "{map_wct} !< {seq_wct}");
    }

    #[test]
    fn predicted_gain_saturates() {
        let f = Forecast {
            predicted: TimeNs::from_millis(300),
            baseline: TimeNs::from_millis(200),
            realized: None,
        };
        assert_eq!(f.predicted_gain(), TimeNs::ZERO);
    }
}
