//! Event-driven **self-configuration** for algorithmic skeletons:
//! structural rewriting of a running skeleton at stream safe points.
//!
//! The source paper promises two autonomic properties. Self-*optimization*
//! — tuning the Level of Parallelism against a WCT goal — lives in
//! `askel-core`. This crate adds the second: self-*configuration*, adapting
//! the *structure* of a skeleton in response to the same event stream, in
//! the spirit of behavioural skeletons (Aldinucci, Danelutto & Kilpatrick)
//! where an autonomic manager swaps pattern implementations while the
//! computation runs.
//!
//! The MAPE split mirrors `askel-core`'s:
//!
//! * **Monitor/Analyze** — [`TriggerEngine`], an ordinary event
//!   [`Listener`](askel_events::Listener): per-muscle EWMA durations and
//!   cardinalities (the same state machines as the WCT controller, and
//!   optionally *seeded from* a controller via
//!   [`TriggerEngine::seed_from`]), plus item outcomes and input-size
//!   hints that events cannot carry.
//! * **Plan** — [`Rule`]s ([`Promote`], [`FallbackSwap`], [`RetuneWidth`],
//!   [`RetuneGrain`], [`Offload`], [`CostGuard`]) evaluated once per safe
//!   point, each yielding at most one [`RewriteAction`]. Rules can be
//!   coupled to the WCT controller's prediction machinery
//!   ([`crate::forecast`]: `Promote::forecast_gated` /
//!   `RetuneWidth::forecast_gated` fire only on a forecast WCT
//!   improvement, audited predicted-vs-realized in the decision log),
//!   damped against oscillating load ([`Hysteresis`]), and made
//!   cluster-aware ([`Offload`] re-places a subtree onto an underloaded
//!   `askel-dist` node, pairing with `askel_dist::ProvisioningPolicy`
//!   for dynamic node provisioning; [`CostGuard`] opposes spend past a
//!   node-hours budget). Every rule carries a [`Concern`] and a
//!   priority.
//! * **Execute** — [`Reconfigurator`] first **arbitrates** the safe
//!   point's collected fires ([`crate::arbitration`]: conflicting
//!   actions on one knob or overlapping subtrees resolve under a
//!   [`ConflictPolicy`]; losers are logged as suppressed
//!   [`AdaptRecord`]s and re-armed), then applies the winning set to a
//!   [`VersionedSkel`] **between stream items**: the tree is rebuilt
//!   persistently (`Skel::rewritten`), the version bumps, an
//!   `(After, Reconfigured)` event announces the change through the
//!   registry, an [`AdaptRecord`] lands in the decision log — symmetric
//!   to the controller's `AnalysisRecord` — and estimator history for
//!   the replaced subtree is invalidated
//!   ([`TriggerEngine::invalidate_estimates_for`]) so the next forecast
//!   is computed from the live tree.
//!
//! [`AdaptiveSession`] packages the loop over `askel-engine`'s
//! `StreamSession`; [`AdaptiveSimSession`] packages the *same* loop over
//! the discrete-event simulator (`askel-sim`), where rewrite decisions —
//! timestamps included — replay deterministically, and where a seeded
//! ordering policy fuzzes the decision stack across tie-break schedules.
//!
//! In-flight items always finish on the skeleton *tree* they were
//! submitted with (versions are immutable `Arc` trees), so a subtree
//! rewrite can never be observed mid-item; [`Knob`] retunes are the
//! documented exception — a knob is a live shared atomic, so its muscles
//! must be result-invariant across the knob's range (see [`Knob`]).
//! With no rules registered an [`AdaptiveSession`] is behaviourally
//! identical to a plain `StreamSession` (property-tested).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitration;
pub mod forecast;
mod metrics;
pub mod rules;
pub mod session;
pub mod sim_session;
pub mod trigger;

pub use arbitration::{arbitrate, ArbitrationOutcome, ConflictPolicy, Suppressed};
pub use forecast::{predicted_wct, Forecast};
pub use rules::{
    Concern, CostGuard, ErrorStats, FallbackSwap, Hysteresis, Knob, Offload, Promote, RetuneGrain,
    RetuneWidth, RewriteAction, Rule, RuleCtx, RuleFire, Trigger,
};
pub use session::{AdaptiveSession, Reconfigurator, VersionedSkel};
pub use sim_session::AdaptiveSimSession;
pub use trigger::{decision_log_to_chrome, AdaptRecord, PlannedRewrite, TriggerEngine};
