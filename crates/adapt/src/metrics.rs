//! Self-configuration metrics on a shared hub.
//!
//! Attached to a [`TriggerEngine`](crate::TriggerEngine) via
//! [`attach_metrics`](crate::TriggerEngine::attach_metrics) — done
//! automatically by [`AdaptiveSession::new`](crate::AdaptiveSession::new)
//! and [`Reconfigurator::for_engine`](crate::Reconfigurator::for_engine),
//! which know the engine's hub. The inventory:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `adapt_rule_fires_total` | counter | rule fires across all safe points |
//! | `adapt_rule_fires_total{rule="<name>"}` | counter | fires per rule |
//! | `adapt_forecast_error_ns` | histogram | \|realized − predicted\| WCT per closed forecast audit |
//!
//! A *fire* is a rule requesting a rewrite at a safe point — before
//! arbitration, so suppressed and skipped fires count too (they are the
//! interesting ones when tuning rule priorities). The forecast error is
//! recorded the moment a [`Forecast`](crate::Forecast) audit closes —
//! when the first root submission running under the rewritten version
//! completes and fills in `realized`.

use std::collections::HashMap;
use std::sync::Arc;

use askel_obs::{Counter, Histogram, MetricsHub};

/// The trigger engine's metric handles (module docs list them). Lives
/// inside the trigger's state mutex, so the per-rule counter cache
/// needs no locking of its own.
pub(crate) struct AdaptMetrics {
    hub: Arc<MetricsHub>,
    fires: Counter,
    forecast_error: Histogram,
    per_rule: HashMap<String, Counter>,
}

impl AdaptMetrics {
    /// Registers (idempotently) the self-configuration metrics on `hub`.
    pub(crate) fn register(hub: &Arc<MetricsHub>) -> Self {
        AdaptMetrics {
            hub: Arc::clone(hub),
            fires: hub.counter("adapt_rule_fires_total"),
            forecast_error: hub.histogram("adapt_forecast_error_ns"),
            per_rule: HashMap::new(),
        }
    }

    /// Counts one rule fire, in the total and the rule's own series.
    pub(crate) fn note_fire(&mut self, rule: &str) {
        self.fires.inc();
        if !self.per_rule.contains_key(rule) {
            let name = format!("adapt_rule_fires_total{{rule=\"{rule}\"}}");
            self.per_rule
                .insert(rule.to_string(), self.hub.counter(&name));
        }
        self.per_rule[rule].inc();
    }

    /// Records one closed forecast audit's absolute error.
    pub(crate) fn note_forecast_error(&self, ns: u64) {
        self.forecast_error.record(ns);
    }
}
