//! Rewrite rules: *when* to change a skeleton's structure, and *into what*.
//!
//! A [`Rule`] is evaluated at stream safe points against the statistics the
//! [`TriggerEngine`](crate::TriggerEngine) derived from the event stream
//! (EWMA muscle durations and cardinalities, observed input sizes, error
//! streaks) and may produce one [`RewriteAction`]. Rules never apply
//! anything themselves — application happens at the safe point, by the
//! [`Reconfigurator`](crate::Reconfigurator), so a rewrite can never be
//! observed mid-item.
//!
//! Four built-in rules cover the paper-adjacent adaptation repertoire:
//!
//! | rule | fires when | action |
//! |------|-----------|--------|
//! | [`Promote`] | its [`Trigger`]s all hold (e.g. input cardinality high) | replace a subtree (seq → map/farm) |
//! | [`FallbackSwap`] | `n` consecutive item errors | replace a subtree with a fallback |
//! | [`RetuneWidth`] | desired width ≠ current knob value | set a split-width [`Knob`] |
//! | [`RetuneGrain`] | leaf duration outside its target band | halve/double a d&C grain [`Knob`] |
//!
//! The typed constructors ([`Promote::new`], [`FallbackSwap::new`]) take
//! both sides as `Skel<P, R>`, so a replacement can never disagree with the
//! subtree it replaces on input/output types.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use askel_core::EstimatorTable;
use askel_skeletons::{MuscleId, Node, NodeId, Skel, TimeNs};

/// Error statistics over the stream items observed so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ErrorStats {
    /// Items whose outcome was recorded (ok or error).
    pub items: usize,
    /// Total errored items.
    pub total: usize,
    /// Current run of consecutive errors (reset by any success).
    pub consecutive: usize,
}

/// Everything a rule may consult when deciding. Borrowed from the
/// [`TriggerEngine`](crate::TriggerEngine) for the duration of one safe
/// point.
pub struct RuleCtx<'a> {
    /// Event-derived EWMA estimates (durations, cardinalities).
    pub estimates: &'a EstimatorTable,
    /// Item error statistics.
    pub errors: &'a ErrorStats,
    /// EWMA of the input-size hints recorded by the session, if any.
    pub input_size: Option<f64>,
    /// Root of the skeleton version currently in use.
    pub root: &'a Arc<Node>,
    /// Current skeleton version (0 = as constructed).
    pub version: u64,
    /// The engine's current level of parallelism.
    pub lp: usize,
}

/// A shared structural parameter read by a muscle and retuned by a rule —
/// e.g. the chunk count of a map split or the grain threshold of a d&C
/// condition. Cheap to clone; clones share the value.
///
/// **Visibility contract.** A knob value is never torn (a single atomic
/// word), but — unlike a subtree replacement — a knob set at a safe point
/// is visible *immediately*, including to items already in flight, and a
/// muscle that reads the same knob several times within one item (a d&C
/// condition, once per recursion level) may observe two different values.
/// Knob-driven muscles must therefore treat **every** value in the knob's
/// range as producing correct results — width and grain knobs qualify by
/// construction (splitting/recursing more or less never changes the
/// merged result); a knob that changes *semantics* (a sampling rate, a
/// precision) does not belong in one. Sessions that must not expose
/// in-flight items to a retune can bound `max_in_flight(1)` (feed/collect
/// lock-step), which makes safe points quiescent.
#[derive(Clone, Debug)]
pub struct Knob {
    name: Arc<str>,
    value: Arc<AtomicUsize>,
}

impl Knob {
    /// A named knob starting at `initial`.
    pub fn new(name: impl Into<String>, initial: usize) -> Self {
        Knob {
            name: Arc::from(name.into().into_boxed_str()),
            value: Arc::new(AtomicUsize::new(initial)),
        }
    }

    /// Wraps an existing shared counter (e.g. one a workload crate already
    /// threads through its split muscle) as a knob.
    pub fn from_shared(name: impl Into<String>, value: Arc<AtomicUsize>) -> Self {
        Knob {
            name: Arc::from(name.into().into_boxed_str()),
            value,
        }
    }

    /// The knob's name (shows up in decision logs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reads the current value (muscles call this per execution).
    pub fn get(&self) -> usize {
        self.value.load(Ordering::SeqCst)
    }

    /// Sets the value. Public so manual tuning is possible, but normally
    /// driven by [`RewriteAction::SetKnob`] application at a safe point.
    pub fn set(&self, value: usize) {
        self.value.store(value, Ordering::SeqCst);
    }
}

/// What a fired rule wants done at the safe point.
pub enum RewriteAction {
    /// Replace the subtree rooted at `target` with `replacement`
    /// (type agreement asserted by the typed rule constructors).
    Replace {
        /// Node to replace (every occurrence).
        target: NodeId,
        /// The substitute subtree.
        replacement: Arc<Node>,
    },
    /// Set `knob` to `value`.
    SetKnob {
        /// The structural parameter to retune.
        knob: Knob,
        /// Its new value.
        value: usize,
    },
}

impl std::fmt::Debug for RewriteAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteAction::Replace {
                target,
                replacement,
            } => write!(f, "replace {target} with {}", replacement.id),
            RewriteAction::SetKnob { knob, value } => {
                write!(f, "set knob `{}` {} -> {value}", knob.name(), knob.get())
            }
        }
    }
}

/// An event-derived firing condition. A rule holding several triggers
/// fires only when **all** of them hold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// The EWMA duration estimate `t(m)` is at least `min`. Never holds
    /// while the muscle has no estimate.
    DurationAtLeast(MuscleId, TimeNs),
    /// `t(m)` is at most `max`. Never holds without an estimate.
    DurationAtMost(MuscleId, TimeNs),
    /// The EWMA cardinality estimate `|m|` is at least `min`. Never holds
    /// without an estimate — `CardinalityAtLeast(m, 1.0)` therefore doubles
    /// as "the split `m` has executed at least once".
    CardinalityAtLeast(MuscleId, f64),
    /// The EWMA of the session's input-size hints is at least `min`.
    InputSizeAtLeast(f64),
    /// At least `n` consecutive item errors.
    ErrorStreakAtLeast(usize),
}

impl Trigger {
    /// Does the condition hold under `ctx`?
    pub fn holds(&self, ctx: &RuleCtx<'_>) -> bool {
        match *self {
            Trigger::DurationAtLeast(m, min) => ctx.estimates.duration(m).is_some_and(|d| d >= min),
            Trigger::DurationAtMost(m, max) => ctx.estimates.duration(m).is_some_and(|d| d <= max),
            Trigger::CardinalityAtLeast(m, min) => {
                ctx.estimates.cardinality(m).is_some_and(|c| c >= min)
            }
            Trigger::InputSizeAtLeast(min) => ctx.input_size.is_some_and(|s| s >= min),
            Trigger::ErrorStreakAtLeast(n) => ctx.errors.consecutive >= n,
        }
    }

    /// Renders the condition with its observed value, for decision logs.
    pub fn describe(&self, ctx: &RuleCtx<'_>) -> String {
        match *self {
            Trigger::DurationAtLeast(m, min) => format!(
                "t({m})={:?} >= {min}",
                ctx.estimates.duration(m).unwrap_or(TimeNs::ZERO)
            ),
            Trigger::DurationAtMost(m, max) => format!(
                "t({m})={:?} <= {max}",
                ctx.estimates.duration(m).unwrap_or(TimeNs::ZERO)
            ),
            Trigger::CardinalityAtLeast(m, min) => format!(
                "|{m}|={:.1} >= {min:.1}",
                ctx.estimates.cardinality(m).unwrap_or(0.0)
            ),
            Trigger::InputSizeAtLeast(min) => {
                format!("input~{:.1} >= {min:.1}", ctx.input_size.unwrap_or(0.0))
            }
            Trigger::ErrorStreakAtLeast(n) => {
                format!("error-streak {} >= {n}", ctx.errors.consecutive)
            }
        }
    }
}

/// A self-configuration rule: evaluated once per safe point, may request
/// one rewrite. Implementations must be deterministic functions of the
/// [`RuleCtx`] so adaptation replays identically on the simulator.
pub trait Rule: Send + Sync {
    /// Name used in decision logs and `Reconfigured` reporting.
    fn name(&self) -> &str;

    /// `true` for rules that must fire at most once per session (subtree
    /// replacements); the trigger engine retires them after they fire.
    fn once(&self) -> bool {
        false
    }

    /// Evaluates the rule. `Some((action, why))` requests a rewrite; `why`
    /// records the observed statistics that justified it.
    ///
    /// Rules that request a [`RewriteAction::Replace`] should gate on
    /// their target still occurring in `ctx.root`
    /// (`ctx.root.find(target).is_some()`, as the built-ins do): an
    /// earlier rewrite in the same session may have replaced the subtree
    /// the rule was written against, and a rule that keeps firing on a
    /// vanished target is re-armed and skipped at every safe point.
    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<(RewriteAction, String)>;
}

fn describe_all(triggers: &[Trigger], ctx: &RuleCtx<'_>) -> String {
    triggers
        .iter()
        .map(|t| t.describe(ctx))
        .collect::<Vec<_>>()
        .join(" && ")
}

/// Promotes a subtree to a structurally different (typically data-parallel)
/// implementation when its triggers hold — the seq → map/farm promotion of
/// behavioural-skeleton work. Fires at most once.
pub struct Promote {
    name: String,
    target: NodeId,
    replacement: Arc<Node>,
    triggers: Vec<Trigger>,
}

impl Promote {
    /// A promotion of `target` into `replacement`. Both are typed
    /// `Skel<P, R>`, so the swap cannot change the subtree's signature.
    /// Add firing conditions with [`Promote::when`]; a promotion with no
    /// trigger never fires.
    pub fn new<P, R>(target: &Skel<P, R>, replacement: &Skel<P, R>) -> Self
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        Promote {
            name: "promote".to_string(),
            target: target.id(),
            replacement: Arc::clone(replacement.node()),
            triggers: Vec::new(),
        }
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Adds a firing condition (all conditions must hold).
    pub fn when(mut self, trigger: Trigger) -> Self {
        self.triggers.push(trigger);
        self
    }
}

impl Rule for Promote {
    fn name(&self) -> &str {
        &self.name
    }

    fn once(&self) -> bool {
        true
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<(RewriteAction, String)> {
        if self.triggers.is_empty() || !self.triggers.iter().all(|t| t.holds(ctx)) {
            return None;
        }
        // The target may have been rewritten away by an earlier rule.
        ctx.root.find(self.target)?;
        Some((
            RewriteAction::Replace {
                target: self.target,
                replacement: Arc::clone(&self.replacement),
            },
            describe_all(&self.triggers, ctx),
        ))
    }
}

/// Swaps a subtree for a fallback implementation after `after_errors`
/// consecutive item errors — structural fault recovery. Fires at most once.
pub struct FallbackSwap {
    name: String,
    target: NodeId,
    fallback: Arc<Node>,
    after_errors: usize,
}

impl FallbackSwap {
    /// Swap `target` for `fallback` once `after_errors` consecutive items
    /// have failed (`after_errors` is clamped to ≥ 1).
    pub fn new<P, R>(target: &Skel<P, R>, fallback: &Skel<P, R>, after_errors: usize) -> Self
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        FallbackSwap {
            name: "fallback-swap".to_string(),
            target: target.id(),
            fallback: Arc::clone(fallback.node()),
            after_errors: after_errors.max(1),
        }
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl Rule for FallbackSwap {
    fn name(&self) -> &str {
        &self.name
    }

    fn once(&self) -> bool {
        true
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<(RewriteAction, String)> {
        let trigger = Trigger::ErrorStreakAtLeast(self.after_errors);
        if !trigger.holds(ctx) {
            return None;
        }
        // The target may have been rewritten away by an earlier rule.
        ctx.root.find(self.target)?;
        Some((
            RewriteAction::Replace {
                target: self.target,
                replacement: Arc::clone(&self.fallback),
            },
            trigger.describe(ctx),
        ))
    }
}

/// Retunes a farm/map width knob to `lp × tasks_per_worker` (clamped to
/// `[min, max]`), so the split keeps every worker busy as the LP changes.
/// Optional gating triggers (e.g. "the split has run at least once") keep
/// it quiet until the knob's owner is actually in the live skeleton.
pub struct RetuneWidth {
    name: String,
    knob: Knob,
    tasks_per_worker: usize,
    min: usize,
    max: usize,
    triggers: Vec<Trigger>,
}

impl RetuneWidth {
    /// A width rule over `knob` targeting `tasks_per_worker` split chunks
    /// per pool worker (clamped to ≥ 1), with default bounds `[1, 1024]`.
    pub fn new(knob: Knob, tasks_per_worker: usize) -> Self {
        RetuneWidth {
            name: "width-retune".to_string(),
            knob,
            tasks_per_worker: tasks_per_worker.max(1),
            min: 1,
            max: 1024,
            triggers: Vec::new(),
        }
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Clamps the computed width to `[min, max]`.
    pub fn bounds(mut self, min: usize, max: usize) -> Self {
        self.min = min.max(1);
        self.max = max.max(self.min);
        self
    }

    /// Adds a gating condition (all must hold before the rule may fire).
    pub fn when(mut self, trigger: Trigger) -> Self {
        self.triggers.push(trigger);
        self
    }
}

impl Rule for RetuneWidth {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<(RewriteAction, String)> {
        if !self.triggers.iter().all(|t| t.holds(ctx)) {
            return None;
        }
        let want = (ctx.lp * self.tasks_per_worker).clamp(self.min, self.max);
        let current = self.knob.get();
        if want == current {
            return None;
        }
        let why = if self.triggers.is_empty() {
            format!("lp={} wants width {want}, knob at {current}", ctx.lp)
        } else {
            format!(
                "lp={} wants width {want}, knob at {current} ({})",
                ctx.lp,
                describe_all(&self.triggers, ctx)
            )
        };
        Some((
            RewriteAction::SetKnob {
                knob: self.knob.clone(),
                value: want,
            },
            why,
        ))
    }
}

/// Adapts a divide-and-conquer grain threshold so the base-case leaf lands
/// inside a target duration band: halves the grain (divides further) when
/// the leaf's EWMA duration exceeds `2 × target`, doubles it (divides
/// less) below `target / 2`, clamped to `[min, max]`.
pub struct RetuneGrain {
    name: String,
    knob: Knob,
    leaf: MuscleId,
    target: TimeNs,
    min: usize,
    max: usize,
}

impl RetuneGrain {
    /// A grain rule over `knob`, watching the EWMA duration of `leaf`
    /// (typically the d&C base-case execute muscle) against `target`,
    /// with default bounds `[1, 1 << 20]`.
    pub fn new(knob: Knob, leaf: MuscleId, target: TimeNs) -> Self {
        RetuneGrain {
            name: "grain-retune".to_string(),
            knob,
            leaf,
            target,
            min: 1,
            max: 1 << 20,
        }
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Clamps the grain to `[min, max]`.
    pub fn bounds(mut self, min: usize, max: usize) -> Self {
        self.min = min.max(1);
        self.max = max.max(self.min);
        self
    }
}

impl Rule for RetuneGrain {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<(RewriteAction, String)> {
        let t = ctx.estimates.duration(self.leaf)?;
        let grain = self.knob.get();
        let (want, direction) = if t.0 > self.target.0.saturating_mul(2) {
            ((grain / 2).max(self.min), "halve")
        } else if t.0.saturating_mul(2) < self.target.0 {
            (grain.saturating_mul(2).min(self.max), "double")
        } else {
            return None;
        };
        if want == grain {
            return None;
        }
        Some((
            RewriteAction::SetKnob {
                knob: self.knob.clone(),
                value: want,
            },
            format!(
                "t({})={t:?} vs target {:?}: {direction} grain {grain} -> {want}",
                self.leaf, self.target
            ),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::{seq, MuscleRole};

    fn ctx_with<'a>(
        estimates: &'a EstimatorTable,
        errors: &'a ErrorStats,
        root: &'a Arc<Node>,
        lp: usize,
        input_size: Option<f64>,
    ) -> RuleCtx<'a> {
        RuleCtx {
            estimates,
            errors,
            input_size,
            root,
            version: 0,
            lp,
        }
    }

    #[test]
    fn knob_clones_share_value() {
        let k = Knob::new("width", 4);
        let k2 = k.clone();
        k.set(9);
        assert_eq!(k2.get(), 9);
        assert_eq!(k2.name(), "width");
    }

    #[test]
    fn promote_requires_all_triggers() {
        let target = seq(|x: i64| x);
        let replacement = seq(|x: i64| x);
        let rule = Promote::new(&target, &replacement)
            .when(Trigger::InputSizeAtLeast(100.0))
            .when(Trigger::ErrorStreakAtLeast(0));
        let est = EstimatorTable::new(0.5);
        let errors = ErrorStats::default();
        let root = Arc::clone(target.node());
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, Some(50.0)))
            .is_none());
        let (action, why) = rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, Some(150.0)))
            .expect("both triggers hold");
        match action {
            RewriteAction::Replace {
                target: t,
                replacement: r,
            } => {
                assert_eq!(t, target.id());
                assert_eq!(r.id, replacement.id());
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert!(why.contains("input~150.0"), "{why}");
        assert!(rule.once());
    }

    #[test]
    fn promotion_without_triggers_never_fires() {
        let target = seq(|x: i64| x);
        let rule = Promote::new(&target, &target);
        let est = EstimatorTable::new(0.5);
        let errors = ErrorStats::default();
        let root = Arc::clone(target.node());
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, Some(1e12)))
            .is_none());
    }

    #[test]
    fn fallback_fires_on_streak() {
        let target = seq(|x: i64| x);
        let fallback = seq(|x: i64| x);
        let rule = FallbackSwap::new(&target, &fallback, 2);
        let est = EstimatorTable::new(0.5);
        let root = Arc::clone(target.node());
        let one = ErrorStats {
            items: 3,
            total: 1,
            consecutive: 1,
        };
        assert!(rule
            .evaluate(&ctx_with(&est, &one, &root, 1, None))
            .is_none());
        let two = ErrorStats {
            items: 4,
            total: 2,
            consecutive: 2,
        };
        let (_, why) = rule
            .evaluate(&ctx_with(&est, &two, &root, 1, None))
            .expect("streak reached");
        assert!(why.contains("error-streak 2 >= 2"), "{why}");
    }

    #[test]
    fn width_tracks_lp_and_respects_gates() {
        let knob = Knob::new("width", 4);
        let probe = seq(|x: i64| x);
        let split = MuscleId::new(probe.id(), MuscleRole::Split);
        let rule = RetuneWidth::new(knob.clone(), 3)
            .bounds(2, 64)
            .when(Trigger::CardinalityAtLeast(split, 1.0));
        let mut est = EstimatorTable::new(0.5);
        let errors = ErrorStats::default();
        let root = Arc::clone(probe.node());
        // Gate closed: no cardinality estimate yet.
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .is_none());
        est.observe_cardinality(split, 4.0);
        let (action, _) = rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .expect("gate open, 2×3=6 != 4");
        match action {
            RewriteAction::SetKnob { value, .. } => assert_eq!(value, 6),
            other => panic!("unexpected action {other:?}"),
        }
        knob.set(6);
        assert!(
            rule.evaluate(&ctx_with(&est, &errors, &root, 2, None))
                .is_none(),
            "already at the wanted width"
        );
        assert!(!rule.once());
    }

    #[test]
    fn grain_halves_doubles_and_clamps() {
        let probe = seq(|x: i64| x);
        let leaf = MuscleId::new(probe.id(), MuscleRole::Execute);
        let root = Arc::clone(probe.node());
        let errors = ErrorStats::default();
        let knob = Knob::new("grain", 64);
        let rule = RetuneGrain::new(knob.clone(), leaf, TimeNs::from_millis(10)).bounds(16, 256);

        let mut est = EstimatorTable::new(0.5);
        assert!(
            rule.evaluate(&ctx_with(&est, &errors, &root, 2, None))
                .is_none(),
            "no estimate, no decision"
        );
        // Way above the band: halve.
        est.init_duration(leaf, TimeNs::from_millis(50));
        match rule.evaluate(&ctx_with(&est, &errors, &root, 2, None)) {
            Some((RewriteAction::SetKnob { value, .. }, _)) => assert_eq!(value, 32),
            other => panic!("expected halve, got {other:?}"),
        }
        // Inside the band: quiet.
        est.init_duration(leaf, TimeNs::from_millis(10));
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .is_none());
        // Below the band: double; clamp at max.
        est.init_duration(leaf, TimeNs::from_millis(1));
        knob.set(256);
        assert!(
            rule.evaluate(&ctx_with(&est, &errors, &root, 2, None))
                .is_none(),
            "clamped at max"
        );
        knob.set(128);
        match rule.evaluate(&ctx_with(&est, &errors, &root, 2, None)) {
            Some((RewriteAction::SetKnob { value, .. }, _)) => assert_eq!(value, 256),
            other => panic!("expected double, got {other:?}"),
        }
    }
}
