//! Rewrite rules: *when* to change a skeleton's structure, and *into what*.
//!
//! A [`Rule`] is evaluated at stream safe points against the statistics the
//! [`TriggerEngine`](crate::TriggerEngine) derived from the event stream
//! (EWMA muscle durations and cardinalities, observed input sizes, error
//! streaks) and may produce one [`RewriteAction`]. Rules never apply
//! anything themselves — application happens at the safe point, by the
//! [`Reconfigurator`](crate::Reconfigurator), so a rewrite can never be
//! observed mid-item.
//!
//! Six built-in rules cover the paper-adjacent adaptation repertoire:
//!
//! | rule | concern | fires when | action |
//! |------|---------|-----------|--------|
//! | [`Promote`] | Performance | its [`Trigger`]s all hold (e.g. input cardinality high) | replace a subtree (seq → map/farm) |
//! | [`FallbackSwap`] | Reliability | `n` consecutive item errors | replace a subtree with a fallback |
//! | [`RetuneWidth`] | Performance | desired width ≠ current knob value | set a split-width [`Knob`] |
//! | [`RetuneGrain`] | Performance | leaf duration outside its target band | halve/double a d&C grain [`Knob`] |
//! | [`Offload`] | Performance | cluster busy-share skew crosses its water marks | re-place a subtree onto another node |
//! | [`CostGuard`] | Cost | accumulated node-time exceeds its budget | shrink a knob to its economy value, or veto growth |
//!
//! Every rule carries a [`Concern`] and a priority; when several rules
//! fire on the same resource at one safe point, the
//! [`Reconfigurator`](crate::Reconfigurator) arbitrates
//! (see [`crate::arbitration`]) instead of applying whichever registered
//! first.
//!
//! The typed constructors ([`Promote::new`], [`FallbackSwap::new`]) take
//! both sides as `Skel<P, R>`, so a replacement can never disagree with the
//! subtree it replaces on input/output types.
//!
//! Beyond the event-derived triggers, rules can be coupled to the WCT
//! controller's *forecasts* ([`Promote::forecast_gated`],
//! [`RetuneWidth::forecast_gated`]: fire only when the LP-predicted WCT
//! under the rewritten skeleton beats the current forecast by a margin),
//! damped against oscillating load ([`Hysteresis`] on the knob rules),
//! and made cluster-aware ([`Offload`]: move a subtree's placement onto
//! an underloaded worker node).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use askel_core::EstimatorTable;
use askel_dist::ClusterTelemetry;
use askel_skeletons::{MuscleId, Node, NodeId, Skel, TimeNs};

use crate::forecast::{predicted_wct, Forecast};

/// The non-functional concern a rule optimizes for. Multi-concern
/// autonomic work (Aldinucci/Danelutto/Kilpatrick) runs one manager per
/// concern over a single skeleton and coordinates them explicitly; here
/// each [`Rule`] declares its concern and the
/// [`Reconfigurator`](crate::Reconfigurator) arbitrates conflicting
/// firings (see [`crate::arbitration`]).
///
/// The derived order ranks concerns for tie-breaking (equal priorities):
/// `Reliability > Cost > Performance` — keep it correct, then cheap,
/// then fast.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Concern {
    /// Throughput / WCT: promotions, retunes, offloads.
    Performance,
    /// Resource spend: node-hours, capacity growth.
    Cost,
    /// Correct completion under faults: fallback swaps.
    Reliability,
}

impl std::fmt::Display for Concern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Concern::Performance => write!(f, "performance"),
            Concern::Cost => write!(f, "cost"),
            Concern::Reliability => write!(f, "reliability"),
        }
    }
}

/// Error statistics over the stream items observed so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ErrorStats {
    /// Items whose outcome was recorded (ok or error).
    pub items: usize,
    /// Total errored items.
    pub total: usize,
    /// Current run of consecutive errors (reset by any success).
    pub consecutive: usize,
}

/// Everything a rule may consult when deciding. Borrowed from the
/// [`TriggerEngine`](crate::TriggerEngine) for the duration of one safe
/// point.
pub struct RuleCtx<'a> {
    /// Event-derived EWMA estimates (durations, cardinalities).
    pub estimates: &'a EstimatorTable,
    /// Item error statistics.
    pub errors: &'a ErrorStats,
    /// EWMA of the input-size hints recorded by the session, if any.
    pub input_size: Option<f64>,
    /// Root of the skeleton version currently in use.
    pub root: &'a Arc<Node>,
    /// Current skeleton version (0 = as constructed).
    pub version: u64,
    /// The engine's current level of parallelism.
    pub lp: usize,
    /// Which safe point this is (1 for the first plan of the session) —
    /// the clock the [`Hysteresis`] cooldowns count in.
    pub safe_point: usize,
}

impl RuleCtx<'_> {
    /// Forecasts the WCT of one submission of `root` at the current LP,
    /// from this context's estimator table (`None` while the table does
    /// not cover `root`'s muscles — see [`crate::forecast`]).
    pub fn forecast_wct(&self, root: &Arc<Node>) -> Option<TimeNs> {
        predicted_wct(self.estimates, root, self.lp)
    }

    /// Like [`forecast_wct`](Self::forecast_wct), with the estimator
    /// table tweaked first (e.g. a split cardinality overridden to a
    /// candidate knob value). The tweak is applied to a private clone;
    /// the live table is untouched.
    pub fn forecast_wct_with(
        &self,
        root: &Arc<Node>,
        tweak: impl FnOnce(&mut EstimatorTable),
    ) -> Option<TimeNs> {
        let mut table = self.estimates.clone();
        tweak(&mut table);
        predicted_wct(&table, root, self.lp)
    }
}

/// A shared structural parameter read by a muscle and retuned by a rule —
/// e.g. the chunk count of a map split or the grain threshold of a d&C
/// condition. Cheap to clone; clones share the value.
///
/// **Visibility contract.** A knob value is never torn (a single atomic
/// word), but — unlike a subtree replacement — a knob set at a safe point
/// is visible *immediately*, including to items already in flight, and a
/// muscle that reads the same knob several times within one item (a d&C
/// condition, once per recursion level) may observe two different values.
/// Knob-driven muscles must therefore treat **every** value in the knob's
/// range as producing correct results — width and grain knobs qualify by
/// construction (splitting/recursing more or less never changes the
/// merged result); a knob that changes *semantics* (a sampling rate, a
/// precision) does not belong in one. Sessions that must not expose
/// in-flight items to a retune can bound `max_in_flight(1)` (feed/collect
/// lock-step), which makes safe points quiescent.
#[derive(Clone, Debug)]
pub struct Knob {
    name: Arc<str>,
    value: Arc<AtomicUsize>,
}

impl Knob {
    /// A named knob starting at `initial`.
    pub fn new(name: impl Into<String>, initial: usize) -> Self {
        Knob {
            name: Arc::from(name.into().into_boxed_str()),
            value: Arc::new(AtomicUsize::new(initial)),
        }
    }

    /// Wraps an existing shared counter (e.g. one a workload crate already
    /// threads through its split muscle) as a knob.
    pub fn from_shared(name: impl Into<String>, value: Arc<AtomicUsize>) -> Self {
        Knob {
            name: Arc::from(name.into().into_boxed_str()),
            value,
        }
    }

    /// The knob's name (shows up in decision logs).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reads the current value (muscles call this per execution).
    pub fn get(&self) -> usize {
        self.value.load(Ordering::SeqCst)
    }

    /// Sets the value. Public so manual tuning is possible, but normally
    /// driven by [`RewriteAction::SetKnob`] application at a safe point.
    pub fn set(&self, value: usize) {
        self.value.store(value, Ordering::SeqCst);
    }

    /// `true` when both knobs wrap the **same** shared counter — the
    /// conflict test the arbitration layer uses: two `SetKnob` actions
    /// contend exactly when their knobs share state, regardless of the
    /// names they were wrapped under.
    pub fn shares_state(&self, other: &Knob) -> bool {
        Arc::ptr_eq(&self.value, &other.value)
    }
}

/// What a fired rule wants done at the safe point.
#[derive(Clone)]
pub enum RewriteAction {
    /// Replace the subtree rooted at `target` with `replacement`
    /// (type agreement asserted by the typed rule constructors).
    Replace {
        /// Node to replace (every occurrence).
        target: NodeId,
        /// The substitute subtree.
        replacement: Arc<Node>,
    },
    /// Set `knob` to `value`.
    SetKnob {
        /// The structural parameter to retune.
        knob: Knob,
        /// Its new value.
        value: usize,
    },
    /// Re-place the subtree rooted at `target` onto the worker node
    /// called `node` (placement annotation applied deeply,
    /// `Skel::placed_at`). Results are invariant under placement by
    /// construction; only where the subtree's tasks run changes.
    Place {
        /// Root of the subtree to move.
        target: NodeId,
        /// Destination worker node name.
        node: String,
    },
}

impl std::fmt::Debug for RewriteAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteAction::Replace {
                target,
                replacement,
            } => write!(f, "replace {target} with {}", replacement.id),
            RewriteAction::SetKnob { knob, value } => {
                write!(f, "set knob `{}` {} -> {value}", knob.name(), knob.get())
            }
            RewriteAction::Place { target, node } => {
                write!(f, "place {target} on `{node}`")
            }
        }
    }
}

/// One rule firing: the requested change, the observed statistics that
/// justified it, and — for forecast-gated rules — the WCT forecast the
/// gate compared ([`Forecast::realized`] is filled in later by the
/// [`TriggerEngine`](crate::TriggerEngine)).
pub struct RuleFire {
    /// The requested change — or, for a veto, the contested resource.
    pub action: RewriteAction,
    /// The observed statistics that justified it.
    pub why: String,
    /// The forecast a gated rule fired on (`None` for ungated rules).
    pub forecast: Option<Forecast>,
    /// A **veto** firing opposes rather than requests: its `action` is
    /// never applied, it only identifies the resource (knob, subtree)
    /// the rule wants held still. A veto that conflicts with nothing is
    /// dropped silently; one that does conflict suppresses the group per
    /// the configured [`ConflictPolicy`](crate::ConflictPolicy).
    pub veto: bool,
}

impl RuleFire {
    /// An ungated firing.
    pub fn new(action: RewriteAction, why: impl Into<String>) -> Self {
        RuleFire {
            action,
            why: why.into(),
            forecast: None,
            veto: false,
        }
    }

    /// A veto: opposes any conflicting action on `action`'s resource
    /// instead of requesting a change (see [`RuleFire::veto`]).
    pub fn veto(action: RewriteAction, why: impl Into<String>) -> Self {
        RuleFire {
            action,
            why: why.into(),
            forecast: None,
            veto: true,
        }
    }
}

/// An event-derived firing condition. A rule holding several triggers
/// fires only when **all** of them hold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// The EWMA duration estimate `t(m)` is at least `min`. Never holds
    /// while the muscle has no estimate.
    DurationAtLeast(MuscleId, TimeNs),
    /// `t(m)` is at most `max`. Never holds without an estimate.
    DurationAtMost(MuscleId, TimeNs),
    /// The EWMA cardinality estimate `|m|` is at least `min`. Never holds
    /// without an estimate — `CardinalityAtLeast(m, 1.0)` therefore doubles
    /// as "the split `m` has executed at least once".
    CardinalityAtLeast(MuscleId, f64),
    /// The EWMA of the session's input-size hints is at least `min`.
    InputSizeAtLeast(f64),
    /// At least `n` consecutive item errors.
    ErrorStreakAtLeast(usize),
}

impl Trigger {
    /// Does the condition hold under `ctx`?
    pub fn holds(&self, ctx: &RuleCtx<'_>) -> bool {
        match *self {
            Trigger::DurationAtLeast(m, min) => ctx.estimates.duration(m).is_some_and(|d| d >= min),
            Trigger::DurationAtMost(m, max) => ctx.estimates.duration(m).is_some_and(|d| d <= max),
            Trigger::CardinalityAtLeast(m, min) => {
                ctx.estimates.cardinality(m).is_some_and(|c| c >= min)
            }
            Trigger::InputSizeAtLeast(min) => ctx.input_size.is_some_and(|s| s >= min),
            Trigger::ErrorStreakAtLeast(n) => ctx.errors.consecutive >= n,
        }
    }

    /// Renders the condition with its observed value, for decision logs.
    pub fn describe(&self, ctx: &RuleCtx<'_>) -> String {
        match *self {
            Trigger::DurationAtLeast(m, min) => format!(
                "t({m})={:?} >= {min}",
                ctx.estimates.duration(m).unwrap_or(TimeNs::ZERO)
            ),
            Trigger::DurationAtMost(m, max) => format!(
                "t({m})={:?} <= {max}",
                ctx.estimates.duration(m).unwrap_or(TimeNs::ZERO)
            ),
            Trigger::CardinalityAtLeast(m, min) => format!(
                "|{m}|={:.1} >= {min:.1}",
                ctx.estimates.cardinality(m).unwrap_or(0.0)
            ),
            Trigger::InputSizeAtLeast(min) => {
                format!("input~{:.1} >= {min:.1}", ctx.input_size.unwrap_or(0.0))
            }
            Trigger::ErrorStreakAtLeast(n) => {
                format!("error-streak {} >= {n}", ctx.errors.consecutive)
            }
        }
    }
}

/// A self-configuration rule: evaluated once per safe point, may request
/// one rewrite. Implementations must be deterministic functions of the
/// [`RuleCtx`] so adaptation replays identically on the simulator.
pub trait Rule: Send + Sync {
    /// Name used in decision logs and `Reconfigured` reporting.
    fn name(&self) -> &str;

    /// `true` for rules that must fire at most once per session (subtree
    /// replacements); the trigger engine retires them after they fire.
    fn once(&self) -> bool {
        false
    }

    /// The non-functional concern this rule optimizes for. Used by the
    /// arbitration step to rank and weight conflicting firings.
    fn concern(&self) -> Concern {
        Concern::Performance
    }

    /// Arbitration priority (higher wins under the priority-wins
    /// policy; ties fall back to concern rank, then rule name).
    fn priority(&self) -> i32 {
        0
    }

    /// Notification that an applied rewrite replaced the subtree
    /// `target` with `replacement`. Rules that track a `NodeId` may
    /// retarget — [`Offload`] follows its subtree through replacements,
    /// so a [`FallbackSwap`] that undoes a placement re-arms the offload
    /// against the fallback instead of leaving it dead. Default: ignore.
    fn on_replaced(&self, target: NodeId, replacement: &Arc<Node>) {
        let _ = (target, replacement);
    }

    /// Evaluates the rule. `Some(fire)` requests a rewrite; `fire.why`
    /// records the observed statistics that justified it and
    /// `fire.forecast` the prediction a forecast gate compared.
    ///
    /// Rules that request a [`RewriteAction::Replace`] (or `Place`)
    /// should gate on their target still occurring in `ctx.root`
    /// (`ctx.root.find(target).is_some()`, as the built-ins do): an
    /// earlier rewrite in the same session may have replaced the subtree
    /// the rule was written against, and a rule that keeps firing on a
    /// vanished target is re-armed and skipped at every safe point.
    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<RuleFire>;
}

fn describe_all(triggers: &[Trigger], ctx: &RuleCtx<'_>) -> String {
    triggers
        .iter()
        .map(|t| t.describe(ctx))
        .collect::<Vec<_>>()
        .join(" && ")
}

/// Cooldown + dead-band damping for the knob rules
/// ([`RetuneWidth::hysteresis`], [`RetuneGrain::hysteresis`]), so
/// oscillating load cannot flap a knob.
///
/// Same-direction moves are never restricted — a knob may keep growing
/// (or keep shrinking) as fast as its rule asks. A **reversal** (the
/// wanted value is on the other side of the current value than the last
/// applied move) is suppressed until both
///
/// * `cooldown_items` safe points have elapsed since the rule last
///   fired, **and**
/// * the wanted value has left the dead band: it differs from the
///   current knob value by more than `dead_band` (a fraction of the
///   current value).
///
/// The rule *arms, fires, then refuses to reverse* — so under a load
/// trace that oscillates faster than the cooldown the knob moves at most
/// once per window instead of flapping A→B→A (property-tested in
/// `crates/adapt/tests/adapt_props.rs`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hysteresis {
    /// Safe points that must elapse after a fire before the knob may
    /// move back in the opposite direction.
    pub cooldown_items: usize,
    /// Relative dead band (fraction of the current knob value) a
    /// reversal must clear; `0.1` = the wanted value must differ from
    /// the current one by more than 10%.
    pub dead_band: f64,
}

impl Hysteresis {
    /// A policy with the given cooldown and a dead band clamped to ≥ 0.
    pub fn new(cooldown_items: usize, dead_band: f64) -> Self {
        Hysteresis {
            cooldown_items,
            dead_band: dead_band.max(0.0),
        }
    }
}

/// Per-rule hysteresis memory (interior-mutable: rules are evaluated
/// through `&self`).
#[derive(Default)]
struct HystState {
    /// Safe point of the last applied move.
    last_fire: Option<usize>,
    /// Direction of the last applied move: +1 grew the knob, −1 shrank
    /// it.
    last_dir: i8,
}

/// Shared damping logic for the knob rules. Returns `true` when the move
/// `current → want` may fire at `safe_point`; records it as the new last
/// move when it may.
fn hysteresis_allows(
    policy: Option<Hysteresis>,
    state: &Mutex<HystState>,
    safe_point: usize,
    current: usize,
    want: usize,
) -> bool {
    let dir: i8 = if want > current { 1 } else { -1 };
    let mut st = state.lock();
    if let Some(h) = policy {
        if st.last_dir != 0 && dir != st.last_dir {
            // A reversal: both guards must clear.
            let elapsed = st.last_fire.map(|at| safe_point.saturating_sub(at));
            if elapsed.is_some_and(|e| e < h.cooldown_items) {
                return false;
            }
            let band = current as f64 * h.dead_band;
            if ((want as f64) - (current as f64)).abs() <= band {
                return false;
            }
        }
    }
    st.last_fire = Some(safe_point);
    st.last_dir = dir;
    true
}

/// Promotes a subtree to a structurally different (typically data-parallel)
/// implementation when its triggers hold — the seq → map/farm promotion of
/// behavioural-skeleton work. Fires at most once.
///
/// With [`forecast_gated`](Promote::forecast_gated) the promotion is
/// additionally coupled to the controller's prediction machinery: it
/// fires only when the LP-limited WCT forecast under the **rewritten**
/// tree beats the forecast under the current tree by the given margin.
pub struct Promote {
    name: String,
    target: NodeId,
    replacement: Arc<Node>,
    triggers: Vec<Trigger>,
    /// Required relative forecast improvement (`None` = ungated).
    forecast_margin: Option<f64>,
    priority: i32,
}

impl Promote {
    /// A promotion of `target` into `replacement`. Both are typed
    /// `Skel<P, R>`, so the swap cannot change the subtree's signature.
    /// Add firing conditions with [`Promote::when`]; a promotion with no
    /// trigger never fires.
    pub fn new<P, R>(target: &Skel<P, R>, replacement: &Skel<P, R>) -> Self
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        Promote {
            name: "promote".to_string(),
            target: target.id(),
            replacement: Arc::clone(replacement.node()),
            triggers: Vec::new(),
            forecast_margin: None,
            priority: 0,
        }
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the arbitration priority (default 0; higher wins).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Adds a firing condition (all conditions must hold).
    pub fn when(mut self, trigger: Trigger) -> Self {
        self.triggers.push(trigger);
        self
    }

    /// Couples the promotion to the WCT forecast: on top of its
    /// triggers, the rule fires only when the predicted WCT under the
    /// rewritten tree is at least `margin` (a fraction, clamped to
    /// `[0, 1)`) better than under the current tree —
    /// `predicted ≤ (1 − margin) × baseline`.
    ///
    /// The gate stays **closed** while either forecast is unavailable
    /// (the estimator table does not yet cover the tree — notably the
    /// replacement's muscles, which have never run; seed them via
    /// [`TriggerEngine::seed_from`](crate::TriggerEngine::seed_from) or
    /// [`TriggerEngine::with_estimates`](crate::TriggerEngine::with_estimates)).
    /// Gated firings carry a [`Forecast`] into the decision log, where
    /// the realized WCT is later filled in.
    pub fn forecast_gated(mut self, margin: f64) -> Self {
        self.forecast_margin = Some(margin.clamp(0.0, 0.999));
        self
    }
}

impl Rule for Promote {
    fn name(&self) -> &str {
        &self.name
    }

    fn once(&self) -> bool {
        true
    }

    fn priority(&self) -> i32 {
        self.priority
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<RuleFire> {
        if self.triggers.is_empty() || !self.triggers.iter().all(|t| t.holds(ctx)) {
            return None;
        }
        // The target may have been rewritten away by an earlier rule.
        ctx.root.find(self.target)?;
        let mut why = describe_all(&self.triggers, ctx);
        let mut forecast = None;
        if let Some(margin) = self.forecast_margin {
            let baseline = ctx.forecast_wct(ctx.root)?;
            let rewritten = ctx.root.replace_subtree(self.target, &self.replacement)?;
            let predicted = ctx.forecast_wct(&rewritten)?;
            let bound = TimeNs::from_secs_f64(baseline.as_secs_f64() * (1.0 - margin));
            if predicted > bound {
                return None;
            }
            why = format!(
                "{why} && forecast {predicted:?} <= {:.0}% of {baseline:?} at lp={}",
                (1.0 - margin) * 100.0,
                ctx.lp
            );
            forecast = Some(Forecast {
                predicted,
                baseline,
                realized: None,
            });
        }
        Some(RuleFire {
            action: RewriteAction::Replace {
                target: self.target,
                replacement: Arc::clone(&self.replacement),
            },
            why,
            forecast,
            veto: false,
        })
    }
}

/// Swaps a subtree for a fallback implementation after `after_errors`
/// consecutive item errors — structural fault recovery. Fires at most once.
pub struct FallbackSwap {
    name: String,
    target: NodeId,
    fallback: Arc<Node>,
    after_errors: usize,
    priority: i32,
}

impl FallbackSwap {
    /// Swap `target` for `fallback` once `after_errors` consecutive items
    /// have failed (`after_errors` is clamped to ≥ 1).
    pub fn new<P, R>(target: &Skel<P, R>, fallback: &Skel<P, R>, after_errors: usize) -> Self
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        FallbackSwap {
            name: "fallback-swap".to_string(),
            target: target.id(),
            fallback: Arc::clone(fallback.node()),
            after_errors: after_errors.max(1),
            priority: 0,
        }
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the arbitration priority (default 0; higher wins).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }
}

impl Rule for FallbackSwap {
    fn name(&self) -> &str {
        &self.name
    }

    fn once(&self) -> bool {
        true
    }

    fn concern(&self) -> Concern {
        Concern::Reliability
    }

    fn priority(&self) -> i32 {
        self.priority
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<RuleFire> {
        let trigger = Trigger::ErrorStreakAtLeast(self.after_errors);
        if !trigger.holds(ctx) {
            return None;
        }
        // The target may have been rewritten away by an earlier rule.
        ctx.root.find(self.target)?;
        Some(RuleFire::new(
            RewriteAction::Replace {
                target: self.target,
                replacement: Arc::clone(&self.fallback),
            },
            trigger.describe(ctx),
        ))
    }
}

/// Retunes a farm/map width knob to `lp × tasks_per_worker` (clamped to
/// `[min, max]`), so the split keeps every worker busy as the LP changes.
/// Optional gating triggers (e.g. "the split has run at least once") keep
/// it quiet until the knob's owner is actually in the live skeleton.
///
/// Supports [`Hysteresis`] damping (never reverse direction within the
/// cooldown / dead band) and an LP forecast gate
/// ([`forecast_gated`](RetuneWidth::forecast_gated)).
pub struct RetuneWidth {
    name: String,
    knob: Knob,
    tasks_per_worker: usize,
    min: usize,
    max: usize,
    triggers: Vec<Trigger>,
    hysteresis: Option<Hysteresis>,
    hyst_state: Mutex<HystState>,
    /// `(split muscle, leaf muscle, margin)` for the forecast gate.
    forecast: Option<(MuscleId, MuscleId, f64)>,
    priority: i32,
}

impl RetuneWidth {
    /// A width rule over `knob` targeting `tasks_per_worker` split chunks
    /// per pool worker (clamped to ≥ 1), with default bounds `[1, 1024]`.
    pub fn new(knob: Knob, tasks_per_worker: usize) -> Self {
        RetuneWidth {
            name: "width-retune".to_string(),
            knob,
            tasks_per_worker: tasks_per_worker.max(1),
            min: 1,
            max: 1024,
            triggers: Vec::new(),
            hysteresis: None,
            hyst_state: Mutex::new(HystState::default()),
            forecast: None,
            priority: 0,
        }
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the arbitration priority (default 0; higher wins).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Clamps the computed width to `[min, max]`.
    pub fn bounds(mut self, min: usize, max: usize) -> Self {
        self.min = min.max(1);
        self.max = max.max(self.min);
        self
    }

    /// Adds a gating condition (all must hold before the rule may fire).
    pub fn when(mut self, trigger: Trigger) -> Self {
        self.triggers.push(trigger);
        self
    }

    /// Damps the knob against oscillating load: see [`Hysteresis`].
    pub fn hysteresis(mut self, policy: Hysteresis) -> Self {
        self.hysteresis = Some(policy);
        self
    }

    /// Couples the retune to the WCT forecast. The candidate width is
    /// simulated on the estimator table by overriding the `split`
    /// cardinality to the wanted width and scaling the `leaf` (per-chunk
    /// execute) duration by `current/want` — constant total work,
    /// redistributed — then both sides are scheduled at the current LP;
    /// the knob only moves when the candidate forecast is at least
    /// `margin` better (`predicted ≤ (1 − margin) × baseline`). Closed
    /// while the estimates do not cover the tree (seed or alias them).
    pub fn forecast_gated(mut self, split: MuscleId, leaf: MuscleId, margin: f64) -> Self {
        self.forecast = Some((split, leaf, margin.clamp(0.0, 0.999)));
        self
    }
}

impl Rule for RetuneWidth {
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> i32 {
        self.priority
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<RuleFire> {
        if !self.triggers.iter().all(|t| t.holds(ctx)) {
            return None;
        }
        let want = (ctx.lp * self.tasks_per_worker).clamp(self.min, self.max);
        let current = self.knob.get();
        if want == current {
            return None;
        }
        let mut why = if self.triggers.is_empty() {
            format!("lp={} wants width {want}, knob at {current}", ctx.lp)
        } else {
            format!(
                "lp={} wants width {want}, knob at {current} ({})",
                ctx.lp,
                describe_all(&self.triggers, ctx)
            )
        };
        let mut forecast = None;
        if let Some((split, leaf, margin)) = self.forecast {
            let leaf_t = ctx.estimates.duration(leaf)?;
            let baseline = ctx.forecast_wct_with(ctx.root, |est| {
                est.init_cardinality(split, current.max(1) as f64);
            })?;
            // Constant total work: per-chunk duration scales inversely
            // with the chunk count.
            let scaled = TimeNs::from_secs_f64(
                leaf_t.as_secs_f64() * current.max(1) as f64 / want.max(1) as f64,
            );
            let predicted = ctx.forecast_wct_with(ctx.root, |est| {
                est.init_cardinality(split, want as f64);
                est.init_duration(leaf, scaled);
            })?;
            let bound = TimeNs::from_secs_f64(baseline.as_secs_f64() * (1.0 - margin));
            if predicted > bound {
                return None;
            }
            why = format!(
                "{why} && forecast {predicted:?} <= {:.0}% of {baseline:?} at lp={}",
                (1.0 - margin) * 100.0,
                ctx.lp
            );
            forecast = Some(Forecast {
                predicted,
                baseline,
                realized: None,
            });
        }
        if !hysteresis_allows(
            self.hysteresis,
            &self.hyst_state,
            ctx.safe_point,
            current,
            want,
        ) {
            return None;
        }
        Some(RuleFire {
            action: RewriteAction::SetKnob {
                knob: self.knob.clone(),
                value: want,
            },
            why,
            forecast,
            veto: false,
        })
    }
}

/// Adapts a divide-and-conquer grain threshold so the base-case leaf lands
/// inside a target duration band: halves the grain (divides further) when
/// the leaf's EWMA duration exceeds `2 × target`, doubles it (divides
/// less) below `target / 2`, clamped to `[min, max]`.
pub struct RetuneGrain {
    name: String,
    knob: Knob,
    leaf: MuscleId,
    target: TimeNs,
    min: usize,
    max: usize,
    hysteresis: Option<Hysteresis>,
    hyst_state: Mutex<HystState>,
    priority: i32,
}

impl RetuneGrain {
    /// A grain rule over `knob`, watching the EWMA duration of `leaf`
    /// (typically the d&C base-case execute muscle) against `target`,
    /// with default bounds `[1, 1 << 20]`.
    pub fn new(knob: Knob, leaf: MuscleId, target: TimeNs) -> Self {
        RetuneGrain {
            name: "grain-retune".to_string(),
            knob,
            leaf,
            target,
            min: 1,
            max: 1 << 20,
            hysteresis: None,
            hyst_state: Mutex::new(HystState::default()),
            priority: 0,
        }
    }

    /// Damps the knob against oscillating load: see [`Hysteresis`].
    pub fn hysteresis(mut self, policy: Hysteresis) -> Self {
        self.hysteresis = Some(policy);
        self
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the arbitration priority (default 0; higher wins).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Clamps the grain to `[min, max]`.
    pub fn bounds(mut self, min: usize, max: usize) -> Self {
        self.min = min.max(1);
        self.max = max.max(self.min);
        self
    }
}

impl Rule for RetuneGrain {
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> i32 {
        self.priority
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<RuleFire> {
        let t = ctx.estimates.duration(self.leaf)?;
        let grain = self.knob.get();
        let (want, direction) = if t.0 > self.target.0.saturating_mul(2) {
            ((grain / 2).max(self.min), "halve")
        } else if t.0.saturating_mul(2) < self.target.0 {
            (grain.saturating_mul(2).min(self.max), "double")
        } else {
            return None;
        };
        if want == grain {
            return None;
        }
        if !hysteresis_allows(
            self.hysteresis,
            &self.hyst_state,
            ctx.safe_point,
            grain,
            want,
        ) {
            return None;
        }
        Some(RuleFire::new(
            RewriteAction::SetKnob {
                knob: self.knob.clone(),
                value: want,
            },
            format!(
                "t({})={t:?} vs target {:?}: {direction} grain {grain} -> {want}",
                self.leaf, self.target
            ),
        ))
    }
}

/// Moves a subtree's **placement** onto an underloaded worker node — the
/// cluster-aware rule: when the busiest *other* node's share of the
/// cluster's busy time crosses the high-water mark while the destination
/// node sits at or under the low-water mark, the subtree (typically a
/// map/d&C fan-out) is re-placed onto the destination
/// ([`RewriteAction::Place`] → `Skel::placed_at`, a deep placement
/// annotation flowing through `SimEngine::with_workers`). Placement
/// never changes results (property-tested).
///
/// The rule is **self-gating rather than once-firing**: while its
/// subtree already sits on the destination it stays quiet, and when a
/// later rewrite undoes the placement (e.g. a [`FallbackSwap`] replacing
/// the placed subtree with an unplaced fallback) it re-arms
/// automatically — the rule follows its subtree through applied
/// replacements ([`Rule::on_replaced`] retargets it at the
/// replacement), so an offload-back does not leave the cluster
/// permanently unbalanced with a dead rule.
///
/// Reads the same [`ClusterTelemetry`] view that drives
/// `askel_dist::ProvisioningPolicy`, so offloading and node provisioning
/// decide from one picture of the cluster. The destination need not be
/// enabled yet: a placement naming an offline node falls back to running
/// anywhere until provisioning brings the node online.
pub struct Offload {
    name: String,
    /// Interior-mutable: retargeted by [`Rule::on_replaced`] when an
    /// applied rewrite replaces the watched subtree.
    target: Mutex<NodeId>,
    to_node: String,
    telemetry: ClusterTelemetry,
    high_water: f64,
    low_water: f64,
    triggers: Vec<Trigger>,
    priority: i32,
}

impl Offload {
    /// An offload of the subtree `target` onto the cluster node
    /// `to_node`, judged from `telemetry`'s busy shares, with default
    /// water marks `high = 0.75`, `low = 0.25`.
    pub fn new<P, R>(
        target: &Skel<P, R>,
        to_node: impl Into<String>,
        telemetry: ClusterTelemetry,
    ) -> Self
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        Offload {
            name: "offload".to_string(),
            target: Mutex::new(target.id()),
            to_node: to_node.into(),
            telemetry,
            high_water: 0.75,
            low_water: 0.25,
            triggers: Vec::new(),
            priority: 0,
        }
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the arbitration priority (default 0; higher wins).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the busy-share water marks (clamped to `[0, 1]`,
    /// `low ≤ high`).
    pub fn water_marks(mut self, high: f64, low: f64) -> Self {
        self.high_water = high.clamp(0.0, 1.0);
        self.low_water = low.clamp(0.0, self.high_water);
        self
    }

    /// Adds a gating condition (all must hold before the rule may fire).
    pub fn when(mut self, trigger: Trigger) -> Self {
        self.triggers.push(trigger);
        self
    }
}

impl Rule for Offload {
    fn name(&self) -> &str {
        &self.name
    }

    fn priority(&self) -> i32 {
        self.priority
    }

    fn on_replaced(&self, target: NodeId, replacement: &Arc<Node>) {
        let mut t = self.target.lock();
        if *t == target {
            // Follow the subtree: the offload concern is positional, so
            // whatever now stands where the watched subtree stood
            // inherits the watch. If the replacement arrives unplaced
            // (a fallback undoing the offload), the placement gate
            // re-opens and the rule is live again.
            *t = replacement.id;
        }
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<RuleFire> {
        if !self.triggers.iter().all(|t| t.holds(ctx)) {
            return None;
        }
        let target = *self.target.lock();
        // The target may have been rewritten away — or already placed.
        let subtree = ctx.root.find(target)?;
        if subtree.placement.as_deref() == Some(self.to_node.as_str()) {
            return None;
        }
        let dest = self.telemetry.node_index(&self.to_node)?;
        let shares = self.telemetry.busy_share();
        let dest_share = *shares.get(dest)?;
        let (hot, hot_share) = shares
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| *i != dest)
            .max_by(|a, b| a.1.total_cmp(&b.1))?;
        if hot_share < self.high_water || dest_share > self.low_water {
            return None;
        }
        let names = self.telemetry.names();
        let mut why = format!(
            "`{}` at {:.0}% of cluster busy time >= {:.0}% high water, `{}` at {:.0}% <= {:.0}% low water",
            names[hot],
            hot_share * 100.0,
            self.high_water * 100.0,
            self.to_node,
            dest_share * 100.0,
            self.low_water * 100.0,
        );
        if !self.triggers.is_empty() {
            why = format!("{why} ({})", describe_all(&self.triggers, ctx));
        }
        Some(RuleFire::new(
            RewriteAction::Place {
                target,
                node: self.to_node.clone(),
            },
            why,
        ))
    }
}

/// The resource a [`CostGuard`] protects.
enum CostScope {
    /// A structural knob: shrink to `economy` when over budget, veto
    /// growth past it.
    Knob { knob: Knob, economy: usize },
    /// A subtree: veto re-placements (offloads) of it while over budget.
    Subtree(NodeId),
}

/// The **cost** concern as a rule: watches accumulated node-time (from
/// `askel_dist::NodeHoursMeter`, fed by a metered
/// `askel_dist::ProvisioningPolicy`) and, once spend crosses its budget,
/// opposes the performance rules' grow/offload decisions.
///
/// Over a knob ([`CostGuard::knob`]) the guard fires a real
/// [`RewriteAction::SetKnob`] down to the economy value while the knob
/// sits above it, and a **veto** on the knob once it is there — so a
/// width rule wanting to grow the same knob at the same safe point
/// conflicts with the guard and the configured
/// [`ConflictPolicy`](crate::ConflictPolicy) decides. Over a subtree
/// ([`CostGuard::subtree`]) it vetoes placements of that subtree
/// (opposing [`Offload`]). Under budget the guard is silent; idle vetoes
/// (nothing to oppose at that safe point) are dropped without a log
/// entry.
pub struct CostGuard {
    name: String,
    meter: askel_dist::NodeHoursMeter,
    budget: TimeNs,
    scope: CostScope,
    priority: i32,
}

impl CostGuard {
    /// Guards `knob`: once `meter`'s accumulated node-time reaches
    /// `budget`, shrink the knob to `economy` (if above) and veto growth
    /// (if at or below).
    pub fn knob(
        meter: askel_dist::NodeHoursMeter,
        budget: TimeNs,
        knob: Knob,
        economy: usize,
    ) -> Self {
        CostGuard {
            name: "cost-guard".to_string(),
            meter,
            budget,
            scope: CostScope::Knob { knob, economy },
            priority: 0,
        }
    }

    /// Guards the subtree `target`: once over budget, veto placements of
    /// it (e.g. an [`Offload`] onto a paid node).
    pub fn subtree<P, R>(
        meter: askel_dist::NodeHoursMeter,
        budget: TimeNs,
        target: &Skel<P, R>,
    ) -> Self
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        CostGuard {
            name: "cost-guard".to_string(),
            meter,
            budget,
            scope: CostScope::Subtree(target.id()),
            priority: 0,
        }
    }

    /// Renames the rule (decision logs).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the arbitration priority (default 0; higher wins).
    pub fn priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }
}

impl Rule for CostGuard {
    fn name(&self) -> &str {
        &self.name
    }

    fn concern(&self) -> Concern {
        Concern::Cost
    }

    fn priority(&self) -> i32 {
        self.priority
    }

    fn evaluate(&self, ctx: &RuleCtx<'_>) -> Option<RuleFire> {
        let spent = self.meter.node_time();
        if spent < self.budget {
            return None;
        }
        let why = format!(
            "node-time spent {spent:?} >= budget {:?} ({:.2} node-hours)",
            self.budget,
            self.meter.node_hours()
        );
        match &self.scope {
            CostScope::Knob { knob, economy } => {
                let current = knob.get();
                if current > *economy {
                    Some(RuleFire::new(
                        RewriteAction::SetKnob {
                            knob: knob.clone(),
                            value: *economy,
                        },
                        format!("{why}: shrink `{}` {current} -> {economy}", knob.name()),
                    ))
                } else {
                    Some(RuleFire::veto(
                        RewriteAction::SetKnob {
                            knob: knob.clone(),
                            value: current,
                        },
                        format!("{why}: hold `{}` at {current}", knob.name()),
                    ))
                }
            }
            CostScope::Subtree(target) => {
                ctx.root.find(*target)?;
                Some(RuleFire::veto(
                    RewriteAction::Place {
                        target: *target,
                        node: "*".to_string(),
                    },
                    format!("{why}: hold placement of {target}"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::{seq, MuscleRole};

    fn ctx_with<'a>(
        estimates: &'a EstimatorTable,
        errors: &'a ErrorStats,
        root: &'a Arc<Node>,
        lp: usize,
        input_size: Option<f64>,
    ) -> RuleCtx<'a> {
        ctx_at(estimates, errors, root, lp, input_size, 1)
    }

    fn ctx_at<'a>(
        estimates: &'a EstimatorTable,
        errors: &'a ErrorStats,
        root: &'a Arc<Node>,
        lp: usize,
        input_size: Option<f64>,
        safe_point: usize,
    ) -> RuleCtx<'a> {
        RuleCtx {
            estimates,
            errors,
            input_size,
            root,
            version: 0,
            lp,
            safe_point,
        }
    }

    #[test]
    fn knob_clones_share_value() {
        let k = Knob::new("width", 4);
        let k2 = k.clone();
        k.set(9);
        assert_eq!(k2.get(), 9);
        assert_eq!(k2.name(), "width");
    }

    #[test]
    fn promote_requires_all_triggers() {
        let target = seq(|x: i64| x);
        let replacement = seq(|x: i64| x);
        let rule = Promote::new(&target, &replacement)
            .when(Trigger::InputSizeAtLeast(100.0))
            .when(Trigger::ErrorStreakAtLeast(0));
        let est = EstimatorTable::new(0.5);
        let errors = ErrorStats::default();
        let root = Arc::clone(target.node());
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, Some(50.0)))
            .is_none());
        let fire = rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, Some(150.0)))
            .expect("both triggers hold");
        match &fire.action {
            RewriteAction::Replace {
                target: t,
                replacement: r,
            } => {
                assert_eq!(*t, target.id());
                assert_eq!(r.id, replacement.id());
            }
            other => panic!("unexpected action {other:?}"),
        }
        assert!(fire.why.contains("input~150.0"), "{}", fire.why);
        assert!(fire.forecast.is_none(), "ungated rules carry no forecast");
        assert!(rule.once());
    }

    #[test]
    fn promotion_without_triggers_never_fires() {
        let target = seq(|x: i64| x);
        let rule = Promote::new(&target, &target);
        let est = EstimatorTable::new(0.5);
        let errors = ErrorStats::default();
        let root = Arc::clone(target.node());
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, Some(1e12)))
            .is_none());
    }

    #[test]
    fn fallback_fires_on_streak() {
        let target = seq(|x: i64| x);
        let fallback = seq(|x: i64| x);
        let rule = FallbackSwap::new(&target, &fallback, 2);
        let est = EstimatorTable::new(0.5);
        let root = Arc::clone(target.node());
        let one = ErrorStats {
            items: 3,
            total: 1,
            consecutive: 1,
        };
        assert!(rule
            .evaluate(&ctx_with(&est, &one, &root, 1, None))
            .is_none());
        let two = ErrorStats {
            items: 4,
            total: 2,
            consecutive: 2,
        };
        let fire = rule
            .evaluate(&ctx_with(&est, &two, &root, 1, None))
            .expect("streak reached");
        assert!(fire.why.contains("error-streak 2 >= 2"), "{}", fire.why);
    }

    #[test]
    fn width_tracks_lp_and_respects_gates() {
        let knob = Knob::new("width", 4);
        let probe = seq(|x: i64| x);
        let split = MuscleId::new(probe.id(), MuscleRole::Split);
        let rule = RetuneWidth::new(knob.clone(), 3)
            .bounds(2, 64)
            .when(Trigger::CardinalityAtLeast(split, 1.0));
        let mut est = EstimatorTable::new(0.5);
        let errors = ErrorStats::default();
        let root = Arc::clone(probe.node());
        // Gate closed: no cardinality estimate yet.
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .is_none());
        est.observe_cardinality(split, 4.0);
        let fire = rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .expect("gate open, 2×3=6 != 4");
        match fire.action {
            RewriteAction::SetKnob { value, .. } => assert_eq!(value, 6),
            other => panic!("unexpected action {other:?}"),
        }
        knob.set(6);
        assert!(
            rule.evaluate(&ctx_with(&est, &errors, &root, 2, None))
                .is_none(),
            "already at the wanted width"
        );
        assert!(!rule.once());
    }

    #[test]
    fn grain_halves_doubles_and_clamps() {
        let probe = seq(|x: i64| x);
        let leaf = MuscleId::new(probe.id(), MuscleRole::Execute);
        let root = Arc::clone(probe.node());
        let errors = ErrorStats::default();
        let knob = Knob::new("grain", 64);
        let rule = RetuneGrain::new(knob.clone(), leaf, TimeNs::from_millis(10)).bounds(16, 256);

        let mut est = EstimatorTable::new(0.5);
        assert!(
            rule.evaluate(&ctx_with(&est, &errors, &root, 2, None))
                .is_none(),
            "no estimate, no decision"
        );
        // Way above the band: halve.
        est.init_duration(leaf, TimeNs::from_millis(50));
        match rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .map(|f| f.action)
        {
            Some(RewriteAction::SetKnob { value, .. }) => assert_eq!(value, 32),
            other => panic!("expected halve, got {other:?}"),
        }
        // Inside the band: quiet.
        est.init_duration(leaf, TimeNs::from_millis(10));
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .is_none());
        // Below the band: double; clamp at max.
        est.init_duration(leaf, TimeNs::from_millis(1));
        knob.set(256);
        assert!(
            rule.evaluate(&ctx_with(&est, &errors, &root, 2, None))
                .is_none(),
            "clamped at max"
        );
        knob.set(128);
        match rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .map(|f| f.action)
        {
            Some(RewriteAction::SetKnob { value, .. }) => assert_eq!(value, 256),
            other => panic!("expected double, got {other:?}"),
        }
    }

    #[test]
    fn hysteresis_blocks_reversals_until_cooldown_and_dead_band() {
        let probe = seq(|x: i64| x);
        let leaf = MuscleId::new(probe.id(), MuscleRole::Execute);
        let root = Arc::clone(probe.node());
        let errors = ErrorStats::default();
        let knob = Knob::new("grain", 64);
        let rule = RetuneGrain::new(knob.clone(), leaf, TimeNs::from_millis(10))
            .bounds(1, 1024)
            .hysteresis(Hysteresis::new(4, 0.1));
        let mut est = EstimatorTable::new(0.5);

        // Safe point 1: leaf far too slow → halve fires (first move).
        est.init_duration(leaf, TimeNs::from_millis(50));
        let fire = rule
            .evaluate(&ctx_at(&est, &errors, &root, 2, None, 1))
            .expect("first move is unrestricted");
        match fire.action {
            RewriteAction::SetKnob { value, .. } => {
                assert_eq!(value, 32);
                knob.set(value);
            }
            other => panic!("{other:?}"),
        }

        // Safe point 2: load flipped → doubling is a reversal inside the
        // cooldown: suppressed.
        est.init_duration(leaf, TimeNs::from_millis(1));
        assert!(rule
            .evaluate(&ctx_at(&est, &errors, &root, 2, None, 2))
            .is_none());
        // Still suppressed at safe point 4 (cooldown is 4: 4-1 < 4).
        assert!(rule
            .evaluate(&ctx_at(&est, &errors, &root, 2, None, 4))
            .is_none());
        // Safe point 5: cooldown elapsed, and 64 vs 32 clears the 10%
        // dead band → the reversal may fire.
        let fire = rule
            .evaluate(&ctx_at(&est, &errors, &root, 2, None, 5))
            .expect("cooldown elapsed");
        match fire.action {
            RewriteAction::SetKnob { value, .. } => assert_eq!(value, 64),
            other => panic!("{other:?}"),
        }

        // Same direction is never restricted: another double right away.
        knob.set(64);
        assert!(
            rule.evaluate(&ctx_at(&est, &errors, &root, 2, None, 6))
                .is_some(),
            "same-direction moves ride free"
        );
    }

    #[test]
    fn hysteresis_dead_band_suppresses_small_reversals() {
        let knob = Knob::new("width", 10);
        let probe = seq(|x: i64| x);
        let root = Arc::clone(probe.node());
        let errors = ErrorStats::default();
        let est = EstimatorTable::new(0.5);
        // tasks_per_worker 1, so want = lp. Dead band 50%, no cooldown.
        let rule = RetuneWidth::new(knob.clone(), 1)
            .bounds(1, 1024)
            .hysteresis(Hysteresis::new(0, 0.5));
        // First move: shrink 10 → 8.
        assert!(rule
            .evaluate(&ctx_at(&est, &errors, &root, 8, None, 1))
            .is_some());
        knob.set(8);
        // Reversal to 11: |11-8| = 3 <= 0.5×8 → inside the dead band.
        assert!(rule
            .evaluate(&ctx_at(&est, &errors, &root, 11, None, 2))
            .is_none());
        // Reversal to 16: |16-8| = 8 > 4 → clears the band.
        assert!(rule
            .evaluate(&ctx_at(&est, &errors, &root, 16, None, 3))
            .is_some());
    }

    #[test]
    fn forecast_gate_blocks_unprofitable_promotions() {
        use askel_skeletons::map;
        // Current: a seq leaf. Candidate: a map fanning out over 4
        // chunks. Forecasts are seeded so the promotion wins at lp 4 and
        // loses at lp 1.
        let leaf: Skel<Vec<i64>, i64> = seq(|v: Vec<i64>| v.iter().sum::<i64>());
        let promoted: Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| v.chunks(4).map(|c| c.to_vec()).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v.iter().sum::<i64>()),
            |p: Vec<i64>| p.into_iter().sum::<i64>(),
        );
        let mut est = EstimatorTable::new(0.5);
        est.init_duration(
            MuscleId::new(leaf.id(), MuscleRole::Execute),
            TimeNs::from_millis(400),
        );
        for m in promoted.node().collect_muscles() {
            let d = match m.id.role {
                MuscleRole::Execute => TimeNs::from_millis(100),
                _ => TimeNs::from_millis(1),
            };
            est.init_duration(m.id, d);
            if m.id.role == MuscleRole::Split {
                est.init_cardinality(m.id, 4.0);
            }
        }
        let errors = ErrorStats::default();
        let root = Arc::clone(leaf.node());
        let rule = Promote::new(&leaf, &promoted)
            .when(Trigger::InputSizeAtLeast(1.0))
            .forecast_gated(0.2);
        // lp 1: the fan-out buys nothing (402ms vs 400ms) → gate closed.
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 1, Some(10.0)))
            .is_none());
        // lp 4: 100ms×4 runs in parallel → forecast wins by > 20%.
        let fire = rule
            .evaluate(&ctx_with(&est, &errors, &root, 4, Some(10.0)))
            .expect("forecast improvement at lp 4");
        let forecast = fire.forecast.expect("gated fire carries its forecast");
        assert!(forecast.predicted < forecast.baseline);
        assert_eq!(forecast.realized, None);
        assert!(fire.why.contains("forecast"), "{}", fire.why);
        // Without estimates the gate never opens.
        let empty = EstimatorTable::new(0.5);
        assert!(rule
            .evaluate(&ctx_with(&empty, &errors, &root, 4, Some(10.0)))
            .is_none());
    }

    #[test]
    fn forecast_gate_on_width_retune_models_constant_work() {
        use askel_skeletons::map;
        let knob = Knob::new("width", 1);
        let program: Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| vec![v],
            seq(|v: Vec<i64>| v.iter().sum::<i64>()),
            |p: Vec<i64>| p.into_iter().sum::<i64>(),
        );
        let split = MuscleId::new(program.id(), MuscleRole::Split);
        let leaf = MuscleId::new(program.node().children()[0].id, MuscleRole::Execute);
        let mut est = EstimatorTable::new(0.5);
        for m in program.node().collect_muscles() {
            est.init_duration(
                m.id,
                if m.id == leaf {
                    TimeNs::from_millis(800)
                } else {
                    TimeNs::from_millis(1)
                },
            );
        }
        est.init_cardinality(split, 1.0);
        let errors = ErrorStats::default();
        let root = Arc::clone(program.node());
        let rule = RetuneWidth::new(knob.clone(), 1)
            .bounds(1, 64)
            .forecast_gated(split, leaf, 0.2);
        // lp 4 wants width 4; splitting 800ms of work 4 ways at lp 4
        // forecasts ~200ms vs 800ms → fires, with the forecast attached.
        let fire = rule
            .evaluate(&ctx_with(&est, &errors, &root, 4, None))
            .expect("profitable widening");
        let f = fire.forecast.unwrap();
        assert!(
            f.predicted.as_secs_f64() < f.baseline.as_secs_f64() * 0.5,
            "{f:?}"
        );
        // lp 1: want == current == 1 → quiet regardless of the gate.
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 1, None))
            .is_none());
    }

    #[test]
    fn offload_fires_on_skew_and_respects_placement() {
        use askel_dist::{Cluster, NodeSpec};
        let target: Skel<Vec<i64>, Vec<i64>> = seq(|v: Vec<i64>| v);
        let cluster = Cluster::new(vec![
            NodeSpec::local("edge", 1),
            NodeSpec::remote("hub", 4, TimeNs::ZERO),
        ]);
        let telemetry = cluster.telemetry();
        let rule = Offload::new(&target, "hub", telemetry.clone()).water_marks(0.8, 0.2);
        let est = EstimatorTable::new(0.5);
        let errors = ErrorStats::default();
        let root = Arc::clone(target.node());

        // Balanced (nothing observed): quiet.
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .is_none());
        // Skewed: everything on the edge → fires.
        let mut c = cluster;
        use askel_sim::workers::WorkerModel;
        c.note_busy(0, TimeNs::from_secs(9));
        let fire = rule
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .expect("skew crossed the water marks");
        match &fire.action {
            RewriteAction::Place { target: t, node } => {
                assert_eq!(*t, target.id());
                assert_eq!(node, "hub");
            }
            other => panic!("{other:?}"),
        }
        assert!(fire.why.contains("high water"), "{}", fire.why);
        assert!(!rule.once(), "offload self-gates instead of retiring");
        // Already placed on the destination: quiet even under skew.
        let placed = target.placed_at(target.id(), "hub").unwrap();
        let placed_root = Arc::clone(placed.node());
        assert!(rule
            .evaluate(&ctx_with(&est, &errors, &placed_root, 2, None))
            .is_none());
        // Unknown destination node: quiet.
        let unknown = Offload::new(&target, "nope", telemetry).water_marks(0.8, 0.2);
        assert!(unknown
            .evaluate(&ctx_with(&est, &errors, &root, 2, None))
            .is_none());
    }
}
