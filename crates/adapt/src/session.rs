//! Safe-point application: the *Plan/Execute* half of self-configuration.
//!
//! [`Reconfigurator`] turns the rewrites a [`TriggerEngine`] planned into an
//! actual new skeleton version: it rewrites the tree (sharing untouched
//! subtrees), bumps the version, emits a `(After, Reconfigured)` event
//! through the listener registry and appends an [`AdaptRecord`] to the
//! decision log. It is engine-agnostic — the same type drives the threaded
//! engine and the discrete-event simulator, which is what makes rewrite
//! decisions reproducible in tests and benches.
//!
//! [`AdaptiveSession`] wires it into a stream: a `StreamSession` whose
//! skeleton is re-planned **between items** (the safe points). Items
//! already in flight always finish on the *tree* they were submitted
//! with; a subtree swap is only visible to subsequent feeds. Knob
//! retunes are live immediately (see [`crate::Knob`] for the
//! result-invariance contract that makes that safe).

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use askel_core::AutonomicController;
use askel_engine::{Engine, EngineError, StreamSession};
use askel_events::{Event, EventInfo, ListenerRegistry, Payload, Trace, When, Where};
use askel_skeletons::{Clock, InstanceId, NodeId, Skel};

use crate::arbitration::{arbitrate, ConflictPolicy};
use crate::rules::RewriteAction;
use crate::trigger::{AdaptRecord, TriggerEngine};

/// Input-size probe recorded per fed item. `Send` so a session can move
/// across threads (the serving layer shards sessions over workers).
type SizeProbe<P> = Box<dyn Fn(&P) -> usize + Send>;

/// A skeleton plus its rewrite version: 0 as constructed, +1 per applied
/// rewrite. In-flight executions keep the `Arc`'d version they started
/// with, so versions never tear mid-item.
#[derive(Clone)]
pub struct VersionedSkel<P, R> {
    skel: Skel<P, R>,
    version: u64,
}

impl<P, R> VersionedSkel<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// Version 0 of `skel`.
    pub fn new(skel: &Skel<P, R>) -> Self {
        VersionedSkel {
            skel: skel.clone(),
            version: 0,
        }
    }

    /// The current skeleton.
    pub fn skel(&self) -> &Skel<P, R> {
        &self.skel
    }

    /// The current version (number of rewrites applied).
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Applies planned rewrites at safe points; see the module docs.
pub struct Reconfigurator {
    registry: Arc<ListenerRegistry>,
    clock: Arc<dyn Clock>,
    trigger: Arc<TriggerEngine>,
    lp: Box<dyn Fn() -> usize + Send + Sync>,
    policy: ConflictPolicy,
    /// A WCT controller whose estimator history is invalidated alongside
    /// the trigger's on every applied subtree replacement.
    controller: Option<Arc<AutonomicController>>,
}

impl Reconfigurator {
    /// A reconfigurator emitting through `registry` with timestamps from
    /// `clock`. The LP source defaults to 1; see
    /// [`lp_source`](Reconfigurator::lp_source).
    pub fn new(
        registry: Arc<ListenerRegistry>,
        clock: Arc<dyn Clock>,
        trigger: Arc<TriggerEngine>,
    ) -> Self {
        Reconfigurator {
            registry,
            clock,
            trigger,
            lp: Box::new(|| 1),
            policy: ConflictPolicy::default(),
            controller: None,
        }
    }

    /// Convenience wiring for a threaded engine: its registry, its clock,
    /// and its live LP as the width rules' input.
    pub fn for_engine(engine: &Engine, trigger: Arc<TriggerEngine>) -> Self {
        let pool = engine.pool().clone();
        trigger.attach_metrics(engine.metrics_hub());
        Reconfigurator::new(Arc::clone(engine.registry()), engine.clock(), trigger)
            .lp_source(move || pool.target_workers())
    }

    /// Sets where the current level of parallelism is read from (rules
    /// like `RetuneWidth` scale structure to it).
    pub fn lp_source(mut self, f: impl Fn() -> usize + Send + Sync + 'static) -> Self {
        self.lp = Box::new(f);
        self
    }

    /// Sets how conflicting rule fires are resolved at each safe point
    /// (default [`ConflictPolicy::PriorityWins`]); see
    /// [`crate::arbitration`].
    pub fn conflict_policy(mut self, policy: ConflictPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Keeps a WCT controller's estimator table consistent with the
    /// rewritten tree: on every applied subtree replacement, the
    /// replaced nodes' history is invalidated in `controller` as well as
    /// in the trigger engine
    /// ([`AutonomicController::invalidate_estimates_for`]) — the
    /// controller↔trigger feedback loop, so post-rewrite forecasts on
    /// either side are computed from the live tree.
    pub fn sync_controller(mut self, controller: Arc<AutonomicController>) -> Self {
        self.controller = Some(controller);
        self
    }

    /// The trigger engine this reconfigurator plans with.
    pub fn trigger(&self) -> &Arc<TriggerEngine> {
        &self.trigger
    }

    /// One safe point: plans against the current statistics,
    /// **arbitrates** the collected fires (see [`crate::arbitration`])
    /// and applies the winning set to `vskel`, emitting one
    /// `(After, Reconfigured)` event and one decision-log record per
    /// applied rewrite. Returns how many rewrites were applied.
    ///
    /// Bookkeeping around the winners:
    ///
    /// * **Suppressed losers** — fires that conflicted with a winner (or
    ///   were blocked by a veto) are logged as `suppressed by \`rule\``
    ///   records (no version bump) and their rules re-armed
    ///   ([`TriggerEngine::rearm`], so a once-rule is not lost); idle
    ///   vetoes are re-armed but not logged.
    /// * **Skipped plans** — a `Replace`/`Place` whose target no longer
    ///   occurs (an earlier rewrite *in the same safe point* removed it)
    ///   is not applied: the rule is re-armed and a `skipped` entry
    ///   lands in the log. At the next safe point the rule re-evaluates
    ///   against the new tree (the built-in replacement rules gate on
    ///   their target being present).
    /// * **Estimator invalidation** — every applied `Replace` drops the
    ///   replaced nodes' estimator history from the trigger engine (and
    ///   from a [`sync_controller`](Reconfigurator::sync_controller)'d
    ///   WCT controller), so the next forecast cannot cite a tree that
    ///   no longer exists, and notifies rules via
    ///   [`Rule::on_replaced`](crate::Rule::on_replaced).
    pub fn apply<P, R>(&self, vskel: &mut VersionedSkel<P, R>) -> usize
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        let now = self.clock.now();
        let plans = self
            .trigger
            .plan(vskel.skel.node(), vskel.version, (self.lp)(), now);
        let outcome = arbitrate(plans, &self.policy, vskel.skel.node());
        for veto in &outcome.idle_vetoes {
            self.trigger.rearm(veto.rule_index);
        }
        let mut applied = 0;
        for plan in outcome.winners {
            let forecast = plan.forecast;
            let (record, event_node) = match plan.action {
                RewriteAction::Replace {
                    target,
                    replacement,
                } => {
                    // Snapshot the replaced subtree's node ids before the
                    // rewrite; whatever does not survive into the new
                    // tree has its estimator history invalidated below.
                    let old_nodes: Vec<NodeId> = vskel
                        .skel
                        .node()
                        .find(target)
                        .map(|sub| sub.collect_nodes().iter().map(|n| n.id).collect())
                        .unwrap_or_default();
                    let Some(new_skel) = vskel.skel.rewritten(target, &replacement) else {
                        self.trigger.rearm(plan.rule_index);
                        self.trigger.record(AdaptRecord {
                            at: now,
                            version: vskel.version,
                            rule: plan.rule,
                            target: Some(target),
                            action: format!("skipped: target {target} no longer in the skeleton"),
                            why: plan.why,
                            forecast: None,
                        });
                        continue;
                    };
                    vskel.skel = new_skel;
                    vskel.version += 1;
                    let kept: HashSet<NodeId> = vskel
                        .skel
                        .node()
                        .collect_nodes()
                        .iter()
                        .map(|n| n.id)
                        .collect();
                    let removed: Vec<NodeId> = old_nodes
                        .into_iter()
                        .collect::<HashSet<_>>()
                        .into_iter()
                        .filter(|id| !kept.contains(id))
                        .collect();
                    let dropped = self.trigger.invalidate_estimates_for(&removed);
                    if let Some(controller) = &self.controller {
                        controller.invalidate_estimates_for(&removed);
                    }
                    self.trigger.note_replaced(target, &replacement);
                    let mut action = format!("replace {target} with {}", replacement.id);
                    if dropped > 0 {
                        action.push_str(&format!("; dropped {dropped} stale estimator entries"));
                    }
                    (
                        AdaptRecord {
                            at: now,
                            version: vskel.version,
                            rule: plan.rule,
                            target: Some(target),
                            action,
                            why: plan.why,
                            forecast,
                        },
                        Arc::clone(&replacement),
                    )
                }
                RewriteAction::SetKnob { knob, value } => {
                    let old = knob.get();
                    if old == value {
                        continue;
                    }
                    knob.set(value);
                    vskel.version += 1;
                    (
                        AdaptRecord {
                            at: now,
                            version: vskel.version,
                            rule: plan.rule,
                            target: None,
                            action: format!("set knob `{}` {old} -> {value}", knob.name()),
                            why: plan.why,
                            forecast,
                        },
                        Arc::clone(vskel.skel.node()),
                    )
                }
                RewriteAction::Place { target, node } => {
                    // Both failure shapes — the target vanished before
                    // `placed_at`, or (defensively) the placed tree does
                    // not contain it afterwards — skip with an audit
                    // record instead of panicking the session.
                    let placed = vskel.skel.placed_at(target, &node).and_then(|new_skel| {
                        let placed_root = new_skel.node().find(target)?;
                        Some((new_skel, placed_root))
                    });
                    let Some((new_skel, placed_root)) = placed else {
                        self.trigger.rearm(plan.rule_index);
                        self.trigger.record(AdaptRecord {
                            at: now,
                            version: vskel.version,
                            rule: plan.rule,
                            target: Some(target),
                            action: format!("skipped: target {target} no longer in the skeleton"),
                            why: plan.why,
                            forecast: None,
                        });
                        continue;
                    };
                    vskel.skel = new_skel;
                    vskel.version += 1;
                    (
                        AdaptRecord {
                            at: now,
                            version: vskel.version,
                            rule: plan.rule,
                            target: Some(target),
                            action: format!("place {target} on `{node}`"),
                            why: plan.why,
                            forecast,
                        },
                        placed_root,
                    )
                }
            };
            let event = Event {
                node: event_node.id,
                kind: event_node.tag(),
                when: When::After,
                wher: Where::Reconfigured,
                index: InstanceId(vskel.version),
                trace: Trace::root(event_node.id, InstanceId(vskel.version), event_node.tag()),
                timestamp: now,
                info: EventInfo::Reconfigured {
                    version: vskel.version,
                },
            };
            self.registry.emit(&mut Payload::None, &event);
            self.trigger.record(record);
            applied += 1;
        }
        // Losers after winners, so the log reads "what happened, then
        // what was overruled" — each suppressed fire is audited (no
        // version bump) and its rule re-armed for the next safe point.
        for s in outcome.suppressed {
            self.trigger.rearm(s.plan.rule_index);
            let target = match &s.plan.action {
                RewriteAction::Replace { target, .. } | RewriteAction::Place { target, .. } => {
                    Some(*target)
                }
                RewriteAction::SetKnob { .. } => None,
            };
            self.trigger.record(AdaptRecord {
                at: now,
                version: vskel.version,
                rule: s.plan.rule,
                target,
                action: format!("suppressed by `{}`: {:?}", s.by, s.plan.action),
                why: s.plan.why,
                forecast: None,
            });
        }
        applied
    }
}

/// An ordered stream whose skeleton reshapes itself between items.
///
/// Wraps [`StreamSession`]: identical feeding/collection semantics (and —
/// with no rules registered, or the trigger disabled — identical results,
/// property-tested), plus a safe point before every submission where the
/// [`TriggerEngine`]'s rules may rewrite the skeleton for subsequent
/// items. Item outcomes are reported back to the trigger engine as results
/// are collected, which is what drives fallback-swap rules.
///
/// ```
/// use std::sync::Arc;
/// use askel_adapt::{AdaptiveSession, FallbackSwap, TriggerEngine};
/// use askel_engine::Engine;
/// use askel_skeletons::seq;
///
/// let engine = Engine::new(2);
/// let fragile = seq(|x: i64| {
///     if x < 0 {
///         panic!("negative input");
///     }
///     x * 2
/// });
/// let robust = seq(|x: i64| x.abs() * 2);
/// let trigger = TriggerEngine::new(0.5);
/// trigger.add_rule(FallbackSwap::new(&fragile, &robust, 2));
/// let mut stream = AdaptiveSession::new(&engine, &fragile, trigger);
/// for x in [1, -2, -3, -4, 5] {
///     stream.feed(x);
///     let _ = stream.next_result();
/// }
/// // Two consecutive errors swapped in the robust version: -4 succeeded.
/// assert_eq!(stream.version(), 1);
/// engine.shutdown();
/// ```
pub struct AdaptiveSession<P, R> {
    stream: StreamSession<P, R>,
    reconf: Reconfigurator,
    vskel: VersionedSkel<P, R>,
    /// Results already collected from the inner stream (in submission
    /// order, older than anything the stream still holds).
    out: VecDeque<Result<R, EngineError>>,
    max_in_flight: usize,
    size_of: Option<SizeProbe<P>>,
}

impl<P, R> AdaptiveSession<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// A session feeding `skel` on `engine`, adapted by `trigger`'s rules,
    /// with unbounded in-flight items by default. The session owns a
    /// non-owning engine clone, so it may outlive the borrow and move
    /// across threads — many sessions can share one engine.
    ///
    /// Registering `trigger` as a listener on `engine.registry()` is the
    /// caller's choice: with it, rules see event-derived estimates; without
    /// it, only outcome- and input-size-triggered rules can fire (and the
    /// per-event overhead is avoided).
    pub fn new(engine: &Engine, skel: &Skel<P, R>, trigger: Arc<TriggerEngine>) -> Self {
        AdaptiveSession {
            stream: StreamSession::new(engine, skel),
            reconf: Reconfigurator::for_engine(engine, trigger),
            vskel: VersionedSkel::new(skel),
            out: VecDeque::new(),
            max_in_flight: usize::MAX,
            size_of: None,
        }
    }

    /// Bounds how many items may be in flight (backpressure), like
    /// [`StreamSession::max_in_flight`].
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// Records `f(input)` as an input-size hint per feed; promotion rules
    /// gate on the EWMA of these (`Trigger::InputSizeAtLeast`).
    pub fn input_size(mut self, f: impl Fn(&P) -> usize + Send + 'static) -> Self {
        self.size_of = Some(Box::new(f));
        self
    }

    /// Forwards to [`Reconfigurator::conflict_policy`]: how conflicting
    /// rule fires at one safe point are arbitrated.
    pub fn conflict_policy(mut self, policy: ConflictPolicy) -> Self {
        self.reconf = self.reconf.conflict_policy(policy);
        self
    }

    /// Forwards to [`Reconfigurator::sync_controller`]: a WCT controller
    /// whose estimator history is invalidated alongside the trigger
    /// engine's whenever a subtree is replaced.
    pub fn sync_controller(mut self, controller: Arc<AutonomicController>) -> Self {
        self.reconf = self.reconf.sync_controller(controller);
        self
    }

    fn observe(&self, result: &Result<R, EngineError>) {
        self.reconf.trigger().record_outcome(result.is_ok());
    }

    /// Collects the oldest outstanding result from the inner stream,
    /// records its outcome, and buffers it for the consumer — the one
    /// place the "every collected result is observed" invariant lives.
    fn collect_one(&mut self) {
        let r = self.stream.next_result().expect("checked by caller");
        self.observe(&r);
        self.out.push_back(r);
    }

    /// Collects every already-finished leading item without blocking,
    /// reporting outcomes to the trigger engine.
    fn harvest(&mut self) {
        let ready = self.stream.poll_ready();
        for _ in 0..ready {
            self.collect_one();
        }
    }

    /// Submits one input. Before the submission: finished items are
    /// harvested (outcomes recorded), backpressure is applied, and the
    /// safe point runs — rules may swap in a new skeleton version, which
    /// this and all subsequent feeds then use.
    pub fn feed(&mut self, input: P) {
        self.harvest();
        while self.stream.in_flight() >= self.max_in_flight {
            self.collect_one();
        }
        if let Some(size_of) = &self.size_of {
            self.reconf.trigger().observe_input_size(size_of(&input));
        }
        if self.reconf.apply(&mut self.vskel) > 0 {
            self.stream.swap_skel(self.vskel.skel());
        }
        self.stream.feed(input);
    }

    /// Submits a batch of inputs with **one safe point for the whole
    /// batch**, then hands the items to the engine through the batched
    /// submission path ([`StreamSession::feed_batch`] →
    /// `Engine::submit_batch`): one pool transaction per bound-sized
    /// chunk instead of one per item. Input-size hints are recorded for
    /// every item before the safe point runs, so size-gated rules see
    /// the batch; every batched item then runs on the same skeleton
    /// version. Results still collect in submission order.
    pub fn feed_batch(&mut self, inputs: Vec<P>) {
        if inputs.is_empty() {
            return;
        }
        self.harvest();
        if let Some(size_of) = &self.size_of {
            for input in &inputs {
                self.reconf.trigger().observe_input_size(size_of(input));
            }
        }
        if self.reconf.apply(&mut self.vskel) > 0 {
            self.stream.swap_skel(self.vskel.skel());
        }
        // The in-flight bound holds across the batch: submit bound-sized
        // chunks, collecting (and outcome-recording) the oldest items
        // between chunks. No safe point runs between chunks — the whole
        // batch executes on the version chosen above.
        let mut inputs = inputs;
        while !inputs.is_empty() {
            while self.stream.in_flight() >= self.max_in_flight {
                self.collect_one();
            }
            let room = self.max_in_flight - self.stream.in_flight();
            let rest = if inputs.len() > room {
                inputs.split_off(room)
            } else {
                Vec::new()
            };
            self.stream.feed_batch(inputs);
            inputs = rest;
        }
    }

    /// The next result in submission order, blocking until it is ready;
    /// `None` once every fed item has been collected.
    pub fn next_result(&mut self) -> Option<Result<R, EngineError>> {
        if let Some(r) = self.out.pop_front() {
            return Some(r);
        }
        let r = self.stream.next_result()?;
        self.observe(&r);
        Some(r)
    }

    /// Blocks for every outstanding result, in submission order.
    pub fn drain(mut self) -> impl Iterator<Item = Result<R, EngineError>> {
        let mut results = Vec::new();
        while let Some(r) = self.next_result() {
            results.push(r);
        }
        results.into_iter()
    }

    /// Non-blocking, non-consuming harvest: collects every
    /// already-finished leading item (outcomes recorded with the trigger
    /// engine, exactly as blocking collection would) and returns them in
    /// submission order, leaving the session alive for further feeds.
    ///
    /// This is the interleaving primitive a multi-tenant registry needs:
    /// unlike [`drain`](AdaptiveSession::drain), which consumes the
    /// session and blocks to the end, `drain_ready` lets a driver visit
    /// many sessions round-robin, taking from each only what is ready.
    pub fn drain_ready(&mut self) -> Vec<Result<R, EngineError>> {
        self.harvest();
        self.out.drain(..).collect()
    }

    /// The current skeleton version (rewrites applied so far).
    pub fn version(&self) -> u64 {
        self.vskel.version()
    }

    /// The skeleton the next feed will use.
    pub fn skeleton(&self) -> &Skel<P, R> {
        self.vskel.skel()
    }

    /// The trigger engine (decision log, statistics).
    pub fn trigger(&self) -> &Arc<TriggerEngine> {
        self.reconf.trigger()
    }

    /// Items fed so far.
    pub fn fed(&self) -> usize {
        self.stream.fed()
    }

    /// Items currently in flight.
    pub fn in_flight(&self) -> usize {
        self.stream.in_flight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{FallbackSwap, Knob, Promote, RetuneWidth, Trigger};
    use askel_engine::Engine;
    use askel_skeletons::{map, pipe, seq};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn doubler() -> Skel<i64, i64> {
        seq(|x: i64| x * 2)
    }

    #[test]
    fn no_rules_behaves_like_a_stream_session() {
        let engine = Engine::new(2);
        let program = doubler();
        let trigger = TriggerEngine::new(0.5);
        let mut adaptive = AdaptiveSession::new(&engine, &program, trigger).max_in_flight(3);
        let mut plain = StreamSession::new(&engine, &program).max_in_flight(3);
        for x in 0..32 {
            adaptive.feed(x);
            plain.feed(x);
        }
        let a: Vec<i64> = adaptive.drain().map(|r| r.unwrap()).collect();
        let p: Vec<i64> = plain.drain().map(|r| r.unwrap()).collect();
        assert_eq!(a, p);
        engine.shutdown();
    }

    #[test]
    fn feed_batch_matches_item_feeds_and_runs_one_safe_point() {
        let engine = Engine::new(2);
        let program = doubler();
        let trigger = TriggerEngine::new(0.5);
        let mut batched = AdaptiveSession::new(&engine, &program, trigger.clone()).max_in_flight(3);
        batched.feed_batch((0..32).collect());
        let safe_points_after_batch = trigger.safe_points();
        assert_eq!(safe_points_after_batch, 1, "one safe point per batch");
        let b: Vec<i64> = batched.drain().map(|r| r.unwrap()).collect();
        assert_eq!(b, (0..32).map(|x| x * 2).collect::<Vec<_>>());
        engine.shutdown();
    }

    #[test]
    fn drain_ready_interleaves_without_consuming_the_session() {
        let engine = Engine::new(2);
        let program = doubler();
        let trigger = TriggerEngine::new(0.5);
        let mut session = AdaptiveSession::new(&engine, &program, trigger.clone());
        session.feed_batch(vec![1, 2]);
        engine.pool().wait_idle();
        let first = session.drain_ready();
        assert_eq!(
            first.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            vec![2, 4]
        );
        // The session is still usable — and outcomes were recorded.
        assert_eq!(trigger.error_stats().items, 2);
        session.feed(3);
        engine.pool().wait_idle();
        let second = session.drain_ready();
        assert_eq!(
            second.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            vec![6]
        );
        assert!(session.next_result().is_none());
        engine.shutdown();
    }

    #[test]
    fn promotion_swaps_for_subsequent_items_only() {
        let engine = Engine::new(2);
        let v1 = seq(|x: i64| x + 1);
        let v2 = seq(|x: i64| x + 100);
        let trigger = TriggerEngine::new(1.0); // ρ=1: EWMA = last hint
        trigger.add_rule(
            Promote::new(&v1, &v2)
                .named("test-promote")
                .when(Trigger::InputSizeAtLeast(50.0)),
        );
        let mut stream =
            AdaptiveSession::new(&engine, &v1, trigger).input_size(|x: &i64| *x as usize);
        stream.feed(1); // hint 1: below threshold, v1
        stream.feed(60); // hint 60: fires at this safe point, so 60 runs on v2
        stream.feed(2); // still v2
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![2, 160, 102]);
        engine.shutdown();
    }

    #[test]
    fn fallback_swap_recovers_the_stream() {
        let engine = Engine::new(1);
        let fragile = seq(|x: i64| {
            if x < 0 {
                panic!("fragile muscle rejects {x}");
            }
            x
        });
        let robust = seq(|x: i64| x.abs());
        let trigger = TriggerEngine::new(0.5);
        trigger.add_rule(FallbackSwap::new(&fragile, &robust, 2));
        let mut stream = AdaptiveSession::new(&engine, &fragile, trigger.clone());
        let mut results = Vec::new();
        for x in [1, -2, -3, -4, 5] {
            stream.feed(x);
            results.push(stream.next_result().expect("one in flight"));
        }
        assert!(stream.next_result().is_none());
        assert_eq!(results[0].as_ref().unwrap(), &1);
        assert!(results[1].is_err() && results[2].is_err());
        assert_eq!(results[3].as_ref().unwrap(), &4, "swapped before item -4");
        assert_eq!(results[4].as_ref().unwrap(), &5);
        assert_eq!(stream.version(), 1);
        let log = trigger.decision_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].rule, "fallback-swap");
        assert_eq!(log[0].target, Some(fragile.id()));
        engine.shutdown();
    }

    #[test]
    fn conflicting_replacements_in_one_safe_point_rearm_instead_of_losing_the_rule() {
        // Two once-rules fire at the same safe point, both targeting the
        // same node: arbitration picks one winner (equal priority and
        // concern, so the rule-name tie-break: "first" < "second"); the
        // loser must be suppressed *with* an audit record and re-armed —
        // and its presence gate then keeps it quiescent, not firing
        // forever.
        let engine = Engine::new(1);
        let target = seq(|x: i64| x);
        let winner = seq(|x: i64| x + 10);
        let loser = seq(|x: i64| x + 100);
        let trigger = TriggerEngine::new(1.0);
        trigger.add_rule(
            Promote::new(&target, &winner)
                .named("first")
                .when(Trigger::InputSizeAtLeast(1.0)),
        );
        trigger.add_rule(
            Promote::new(&target, &loser)
                .named("second")
                .when(Trigger::InputSizeAtLeast(1.0)),
        );
        let mut stream =
            AdaptiveSession::new(&engine, &target, trigger.clone()).input_size(|_: &i64| 5);
        for x in 0..3 {
            stream.feed(x);
            let _ = stream.next_result();
        }
        assert_eq!(stream.version(), 1, "only the first replacement applied");
        let log = trigger.decision_log();
        assert_eq!(log.len(), 2, "{log:?}");
        assert_eq!(log[0].rule, "first");
        assert_eq!(log[1].rule, "second");
        assert!(
            log[1].action.contains("suppressed by `first`"),
            "{:?}",
            log[1]
        );
        assert_eq!(log[1].version, 1, "suppressions do not bump the version");
        // The re-armed rule re-evaluated at later safe points but its
        // presence gate held it silent — no further log entries.
        assert!(trigger.evaluations() > 2);
        engine.shutdown();
    }

    #[test]
    fn place_on_a_vanished_target_skips_with_a_record_instead_of_panicking() {
        // A rule may fire `Place` against a target that is not (or no
        // longer) in the tree — e.g. its retained NodeId went stale
        // across someone else's rewrite. The session must skip with an
        // audit record and re-arm, never panic.
        struct PlaceBogus {
            target: NodeId,
            fired: std::sync::atomic::AtomicBool,
        }
        impl crate::rules::Rule for PlaceBogus {
            fn name(&self) -> &str {
                "place-bogus"
            }
            fn evaluate(&self, _ctx: &crate::rules::RuleCtx<'_>) -> Option<crate::rules::RuleFire> {
                if self.fired.swap(true, Ordering::Relaxed) {
                    return None;
                }
                Some(crate::rules::RuleFire::new(
                    RewriteAction::Place {
                        target: self.target,
                        node: "edge-1".to_string(),
                    },
                    "test: place on a node the tree does not contain".to_string(),
                ))
            }
        }
        let engine = Engine::new(1);
        let program = doubler();
        let elsewhere = doubler(); // a distinct tree: its id never occurs in `program`
        let trigger = TriggerEngine::new(1.0);
        trigger.add_rule(PlaceBogus {
            target: elsewhere.id(),
            fired: std::sync::atomic::AtomicBool::new(false),
        });
        let mut stream = AdaptiveSession::new(&engine, &program, trigger.clone());
        let mut got = Vec::new();
        for x in 0..3 {
            stream.feed(x);
            got.push(stream.next_result().expect("lock-step").unwrap());
        }
        assert_eq!(got, vec![0, 2, 4], "stream unaffected by the bad placement");
        assert_eq!(stream.version(), 0, "nothing applied");
        let log = trigger.decision_log();
        assert_eq!(log.len(), 1, "{log:?}");
        assert_eq!(log[0].rule, "place-bogus");
        assert!(log[0].action.contains("skipped"), "{:?}", log[0]);
        assert_eq!(log[0].target, Some(elsewhere.id()));
        engine.shutdown();
    }

    #[test]
    fn rewriting_the_root_swaps_the_whole_program_mid_stream() {
        // The PR 4 suite only replaced nested subtrees; replacing the
        // *root* exercises `Skel::rewritten`'s identity case (the new
        // tree IS the replacement, fresh root id) through a live session.
        let engine = Engine::new(1);
        let v1: Skel<i64, i64> = seq(|x: i64| x + 1);
        let v2: Skel<i64, i64> = map(
            |x: i64| vec![x, x],
            seq(|x: i64| x * 10),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        let trigger = TriggerEngine::new(1.0);
        trigger.add_rule(
            Promote::new(&v1, &v2)
                .named("root-promote")
                .when(Trigger::InputSizeAtLeast(100.0)),
        );
        let mut stream =
            AdaptiveSession::new(&engine, &v1, trigger.clone()).input_size(|x: &i64| *x as usize);
        stream.feed(1); // v1: 2
        stream.feed(200); // fires at this safe point: v2: 200×10×2
        stream.feed(3); // still v2: 60
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![2, 4000, 60]);
        let log = trigger.decision_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].target, Some(v1.id()));
        assert!(log[0].action.contains(&format!("{}", v2.id())), "{log:?}");
        engine.shutdown();
    }

    #[test]
    fn outer_and_inner_rewrites_at_one_safe_point_rearm_the_inner() {
        // Two once-rules fire at the same safe point: one replaces an
        // *outer* subtree, which contains the second rule's *nested*
        // target — arbitration detects the overlap and the
        // higher-priority outer rule wins. The inner rule must be
        // suppressed with an audit record and re-armed — and since its
        // target never comes back, its presence gate keeps it silent
        // (without the re-arm it would be silently lost; without the
        // gate it would fire on a vanished target forever).
        let engine = Engine::new(1);
        let inner = seq(|x: i64| x + 1);
        let outer = pipe(inner.clone(), seq(|x: i64| x * 2));
        let outer_replacement = seq(|x: i64| (x + 10) * 2);
        let inner_replacement = seq(|x: i64| x + 100);
        let trigger = TriggerEngine::new(1.0);
        trigger.add_rule(
            Promote::new(&outer, &outer_replacement)
                .named("outer")
                .priority(1)
                .when(Trigger::InputSizeAtLeast(1.0)),
        );
        trigger.add_rule(
            Promote::new(&inner, &inner_replacement)
                .named("inner")
                .when(Trigger::InputSizeAtLeast(1.0)),
        );
        let mut stream =
            AdaptiveSession::new(&engine, &outer, trigger.clone()).input_size(|_: &i64| 5);
        let mut got = Vec::new();
        for x in 0..4 {
            stream.feed(x);
            got.push(stream.next_result().expect("lock-step").unwrap());
        }
        // The size hint lands before the first safe point, so the outer
        // promotion applies before item 0: every item runs on (x+10)×2.
        assert_eq!(got, vec![20, 22, 24, 26]);
        assert_eq!(stream.version(), 1, "only the outer replacement applied");
        let log = trigger.decision_log();
        assert_eq!(log.len(), 2, "{log:?}");
        assert_eq!(log[0].rule, "outer");
        assert_eq!(log[1].rule, "inner");
        assert!(
            log[1].action.contains("suppressed by `outer`"),
            "{:?}",
            log[1]
        );
        assert_eq!(log[1].target, Some(inner.id()));
        // The re-armed inner rule kept re-evaluating (presence-gated
        // silent), so evaluations exceed the two pre-fire ones.
        assert!(trigger.evaluations() > 4, "{}", trigger.evaluations());
        engine.shutdown();
    }

    #[test]
    fn knob_retune_bumps_version_and_emits() {
        let engine = Engine::new(2);
        let width = Knob::new("width", 1);
        let w = width.clone();
        let program = map(
            move |v: Vec<i64>| {
                let chunks = w.get().max(1);
                let per = v.len().div_ceil(chunks).max(1);
                v.chunks(per).map(|c| c.to_vec()).collect::<Vec<_>>()
            },
            seq(|v: Vec<i64>| v.into_iter().sum::<i64>()),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        let reconfigured = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&reconfigured);
        engine
            .registry()
            .add_listener(Arc::new(askel_events::FnListener(
                move |_: &mut Payload<'_>, e: &Event| {
                    if e.wher == Where::Reconfigured {
                        assert_eq!(e.info.reconfigured_version(), Some(1));
                        seen.fetch_add(1, Ordering::SeqCst);
                    }
                },
            )));
        let trigger = TriggerEngine::new(0.5);
        trigger.add_rule(RetuneWidth::new(width.clone(), 2).bounds(1, 16));
        let mut stream = AdaptiveSession::new(&engine, &program, trigger);
        stream.feed((0..8).collect());
        stream.feed((0..8).collect());
        let version = stream.version();
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(
            got,
            vec![28, 28],
            "retuning the width never changes results"
        );
        assert_eq!(width.get(), 4, "lp 2 × 2 tasks per worker");
        assert_eq!(version, 1);
        assert_eq!(reconfigured.load(Ordering::SeqCst), 1);
        engine.shutdown();
    }
}
