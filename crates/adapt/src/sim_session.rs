//! The adaptive loop over the discrete-event simulator: safe-point
//! evaluation driven off scheduler ticks.
//!
//! [`AdaptiveSimSession`] is [`AdaptiveSession`](crate::AdaptiveSession)'s
//! simulated twin: it streams items through one **persistent** simulated
//! machine ([`SimEngine::run_stream`]) and runs the
//! [`Reconfigurator`] safe point before each submission — same feed
//! order as the threaded session (harvest outcomes → input-size hint →
//! arbitrated rewrite → feed), but in virtual time, so every decision
//! (timestamps included) replays deterministically. Combined with
//! [`OrderingPolicy::SeededRandom`](askel_sim::OrderingPolicy), it is the
//! harness the fuzz suite uses to shake scheduling-order assumptions out
//! of the adapt/offload/arbitration stack.
//!
//! Long-lived actors that review on virtual time — most importantly
//! `askel_dist::ProvisioningReview` — ride along as scheduler
//! [`Component`]s, actuating capacity through the same LP channel an
//! external controller would use.

use std::sync::Arc;

use askel_core::AutonomicController;
use askel_sim::components::Component;
use askel_sim::{SimEngine, SimError, StreamReport};
use askel_skeletons::{Clock, Skel};

use crate::arbitration::ConflictPolicy;
use crate::session::{Reconfigurator, VersionedSkel};
use crate::trigger::TriggerEngine;

/// The per-item input-size probe (see
/// [`input_size`](AdaptiveSimSession::input_size)).
type SizeProbe<P> = Box<dyn Fn(&P) -> usize>;

/// An adaptive stream over the discrete-event simulator; see the module
/// docs. Construction wires a [`Reconfigurator`] to the simulator's
/// registry and virtual clock; registering the trigger as an event
/// listener on `sim.registry()` stays the caller's choice, exactly as
/// with the threaded session.
pub struct AdaptiveSimSession<P, R> {
    sim: SimEngine,
    reconf: Reconfigurator,
    vskel: VersionedSkel<P, R>,
    size_of: Option<SizeProbe<P>>,
    window: usize,
    last_report: Option<StreamReport>,
}

impl<P, R> AdaptiveSimSession<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// A session streaming `skel` through `sim`, adapted by `trigger`'s
    /// rules at the safe point before each submission. Lock-step
    /// (`window == 1`) by default — the strongest safe-point guarantee;
    /// see [`window`](AdaptiveSimSession::window).
    pub fn new(sim: SimEngine, skel: &Skel<P, R>, trigger: Arc<TriggerEngine>) -> Self {
        let clock: Arc<dyn Clock> = Arc::clone(sim.clock()) as Arc<dyn Clock>;
        let reconf = Reconfigurator::new(Arc::clone(sim.registry()), clock, trigger);
        AdaptiveSimSession {
            sim,
            reconf,
            vskel: VersionedSkel::new(skel),
            size_of: None,
            window: 1,
            last_report: None,
        }
    }

    /// Items in flight at once (≥ 1). Above 1, safe points still run
    /// before each submission but items already in flight finish on the
    /// tree they were submitted with.
    pub fn window(mut self, n: usize) -> Self {
        self.window = n.max(1);
        self
    }

    /// Forwards to [`Reconfigurator::lp_source`]: where width rules read
    /// the current level of parallelism.
    pub fn lp_source(mut self, f: impl Fn() -> usize + Send + Sync + 'static) -> Self {
        self.reconf = self.reconf.lp_source(f);
        self
    }

    /// Forwards to [`Reconfigurator::conflict_policy`].
    pub fn conflict_policy(mut self, policy: ConflictPolicy) -> Self {
        self.reconf = self.reconf.conflict_policy(policy);
        self
    }

    /// Forwards to [`Reconfigurator::sync_controller`].
    pub fn sync_controller(mut self, controller: Arc<AutonomicController>) -> Self {
        self.reconf = self.reconf.sync_controller(controller);
        self
    }

    /// Records `f(input)` as an input-size hint per submission
    /// (`Trigger::InputSizeAtLeast` rules gate on the EWMA of these).
    pub fn input_size(mut self, f: impl Fn(&P) -> usize + 'static) -> Self {
        self.size_of = Some(Box::new(f));
        self
    }

    /// Streams `items` to completion, returning their outcomes in item
    /// order. `components` tick on virtual time while work is in flight
    /// (pass `&mut []` for none).
    pub fn run_stream(
        &mut self,
        items: impl IntoIterator<Item = P>,
        components: &mut [Box<dyn Component>],
    ) -> Vec<Result<R, SimError>> {
        let mut iter = items.into_iter();
        let AdaptiveSimSession {
            sim,
            reconf,
            vskel,
            size_of,
            window,
            last_report,
        } = self;
        let trigger = Arc::clone(reconf.trigger());
        let feed_trigger = Arc::clone(&trigger);
        let mut indexed: Vec<(usize, Result<R, SimError>)> = Vec::new();
        let report = sim.run_stream(
            *window,
            |_index| {
                let input = iter.next()?;
                // The threaded session's feed order, replayed in virtual
                // time: outcomes were recorded by the sink as results
                // completed; hint the input size, run the safe point,
                // submit on the (possibly rewritten) current tree.
                if let Some(size_of) = size_of {
                    feed_trigger.observe_input_size(size_of(&input));
                }
                reconf.apply(vskel);
                Some((vskel.skel().clone(), input))
            },
            |index, outcome| {
                trigger.record_outcome(outcome.is_ok());
                indexed.push((index, outcome));
            },
            components,
        );
        *last_report = Some(report);
        indexed.sort_by_key(|(index, _)| *index);
        indexed.into_iter().map(|(_, outcome)| outcome).collect()
    }

    /// Scheduler totals for the most recent
    /// [`run_stream`](AdaptiveSimSession::run_stream) call.
    pub fn report(&self) -> Option<StreamReport> {
        self.last_report
    }

    /// The current skeleton version (rewrites applied so far).
    pub fn version(&self) -> u64 {
        self.vskel.version()
    }

    /// The skeleton the next submission will use.
    pub fn skeleton(&self) -> &Skel<P, R> {
        self.vskel.skel()
    }

    /// The trigger engine (decision log, statistics).
    pub fn trigger(&self) -> &Arc<TriggerEngine> {
        self.reconf.trigger()
    }

    /// The underlying simulator (registry, clock, telemetry).
    pub fn sim(&self) -> &SimEngine {
        &self.sim
    }

    /// Mutable access to the simulator (e.g. `set_lp` between streams).
    pub fn sim_mut(&mut self) -> &mut SimEngine {
        &mut self.sim
    }
}
