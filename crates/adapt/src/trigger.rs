//! The trigger engine: the *Monitor/Analyze* half of self-configuration.
//!
//! [`TriggerEngine`] is an ordinary [`Listener`]: registered on an engine's
//! (or simulator's) `ListenerRegistry`, it replays every event through the
//! same per-kind state machines the WCT controller uses
//! ([`askel_core::SmTracker`]), maintaining EWMA duration and cardinality
//! estimates per muscle. On top of the event stream it tracks two
//! session-level statistics the events cannot carry: per-item outcomes
//! (error streaks, fed by the adaptive session) and input-size hints.
//!
//! Rules ([`crate::rules`]) are evaluated **only** at safe points, via
//! [`TriggerEngine::plan`] — never from inside `on_event` — so a rewrite
//! can fire at most once per safe point and never mid-item. Every applied
//! rewrite is recorded in an auditable decision log ([`AdaptRecord`]),
//! symmetric to the controller's `AnalysisRecord`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use askel_core::{AutonomicController, EstimatorTable, Ewma, SmTracker};
use askel_events::{Event, Listener, Payload, When, Where};
use askel_skeletons::{InstanceId, Node, NodeId, TimeNs};

use crate::forecast::Forecast;
use crate::metrics::AdaptMetrics;
use crate::rules::{Concern, ErrorStats, RewriteAction, Rule, RuleCtx};

/// One audited structural rewrite — the self-configuration counterpart of
/// `askel_core::AnalysisRecord`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdaptRecord {
    /// When the rewrite was applied (engine or virtual time).
    pub at: TimeNs,
    /// The skeleton version the rewrite produced.
    pub version: u64,
    /// Name of the rule that fired.
    pub rule: String,
    /// The replaced node, for subtree rewrites.
    pub target: Option<NodeId>,
    /// What was done, e.g. `replace n3 with n17` or `set knob width 4 -> 6`.
    pub action: String,
    /// The observed statistics that justified the rewrite.
    pub why: String,
    /// For forecast-gated rules: the predicted-vs-baseline WCT the gate
    /// compared. [`Forecast::realized`] is filled in by the
    /// [`TriggerEngine`] with the WCT of the first root submission that
    /// completes after the rewrite — the predicted-vs-realized audit.
    pub forecast: Option<Forecast>,
}

/// A rewrite a rule requested at a safe point, awaiting arbitration and
/// application.
#[derive(Clone)]
pub struct PlannedRewrite {
    /// Name of the rule that fired.
    pub rule: String,
    /// Registration index of that rule — pass it back to
    /// [`TriggerEngine::rearm`] if the plan could not be applied, so a
    /// once-rule retired at fire time is not lost.
    pub rule_index: usize,
    /// The requested change — or, for a veto, the contested resource.
    pub action: RewriteAction,
    /// The statistics that justified it.
    pub why: String,
    /// The forecast a gated rule fired on.
    pub forecast: Option<Forecast>,
    /// The firing rule's concern (see [`Concern`]).
    pub concern: Concern,
    /// The firing rule's arbitration priority.
    pub priority: i32,
    /// `true` for a veto firing: opposes conflicting actions instead of
    /// requesting a change (see [`crate::RuleFire::veto`]).
    pub veto: bool,
}

struct TrigInner {
    tracker: SmTracker,
    errors: ErrorStats,
    input_size: Ewma,
    rules: Vec<Box<dyn Rule>>,
    /// Parallel to `rules`: `true` once a once-rule has fired.
    retired: Vec<bool>,
    enabled: bool,
    log: Vec<AdaptRecord>,
    safe_points: usize,
    evaluations: usize,
    /// Start timestamps of in-flight root submissions, keyed by instance
    /// — closes the forecast audit loop (realized WCT per item).
    item_starts: HashMap<InstanceId, TimeNs>,
    /// Metrics handles once attached to a hub (see [`crate::metrics`]):
    /// rule-fire counters and the forecast-error histogram.
    metrics: Option<AdaptMetrics>,
}

/// Event-driven rule host; see the module docs.
pub struct TriggerEngine {
    inner: Mutex<TrigInner>,
}

impl TriggerEngine {
    /// A trigger engine whose EWMA estimators use weight `rho` (the
    /// paper's ρ, 0.5 by convention).
    pub fn new(rho: f64) -> Arc<Self> {
        Arc::new(TriggerEngine {
            inner: Mutex::new(TrigInner {
                tracker: SmTracker::new(rho),
                errors: ErrorStats::default(),
                input_size: Ewma::new(rho.clamp(0.0, 1.0)),
                rules: Vec::new(),
                retired: Vec::new(),
                enabled: true,
                log: Vec::new(),
                safe_points: 0,
                evaluations: 0,
                item_starts: HashMap::new(),
                metrics: None,
            }),
        })
    }

    /// Attaches this trigger engine to a metrics hub: rule fires are
    /// counted as `adapt_rule_fires_total` (plus one labelled series per
    /// rule), and every closed [`Forecast`] audit records its
    /// |realized − predicted| error into `adapt_forecast_error_ns`.
    /// Idempotent per hub; [`crate::AdaptiveSession::new`] and
    /// [`crate::Reconfigurator::for_engine`] call this with the engine's
    /// hub automatically.
    pub fn attach_metrics(&self, hub: &Arc<askel_obs::MetricsHub>) {
        self.inner.lock().metrics = Some(AdaptMetrics::register(hub));
    }

    /// Registers a rule. At each safe point every live rule is evaluated
    /// and the resulting fires are **arbitrated** (see
    /// [`crate::arbitration`]) before any are applied — which rule wins a
    /// conflict is decided by priority, concern and the configured
    /// [`ConflictPolicy`](crate::ConflictPolicy), never by the order the
    /// rules were registered in.
    pub fn add_rule(&self, rule: impl Rule + 'static) {
        let mut inner = self.inner.lock();
        inner.rules.push(Box::new(rule));
        inner.retired.push(false);
    }

    /// Number of registered rules (retired once-rules included).
    pub fn rules(&self) -> usize {
        self.inner.lock().rules.len()
    }

    /// Enables/disables every rule at once. A disabled trigger engine
    /// still tracks statistics but [`plan`](TriggerEngine::plan) returns
    /// nothing — the session behaves exactly like a plain `StreamSession`.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.lock().enabled = enabled;
    }

    /// Whether rules may fire.
    pub fn enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Records one stream item's outcome (the adaptive session calls this
    /// as results are collected). Errors extend the consecutive streak;
    /// any success resets it.
    pub fn record_outcome(&self, ok: bool) {
        let mut inner = self.inner.lock();
        inner.errors.items += 1;
        if ok {
            inner.errors.consecutive = 0;
        } else {
            inner.errors.total += 1;
            inner.errors.consecutive += 1;
        }
    }

    /// Records an input-size hint for the item about to be fed; rules gate
    /// on the EWMA of these via `Trigger::InputSizeAtLeast`.
    pub fn observe_input_size(&self, size: usize) {
        self.inner.lock().input_size.observe(size as f64);
    }

    /// Current error statistics.
    pub fn error_stats(&self) -> ErrorStats {
        self.inner.lock().errors
    }

    /// Read access to the event-derived estimator table.
    pub fn read_estimates<T>(&self, f: impl FnOnce(&EstimatorTable) -> T) -> T {
        let inner = self.inner.lock();
        f(inner.tracker.estimates())
    }

    /// Seeds the trigger estimators from a WCT controller's live table —
    /// the two autonomic layers (self-optimization in `askel-core`,
    /// self-configuration here) then decide from one shared view of the
    /// world, instead of each warming up separately.
    pub fn seed_from(&self, controller: &AutonomicController) {
        let table = controller.read_estimates(|t| t.clone());
        *self.inner.lock().tracker.estimates_mut() = table;
    }

    /// Programmatic estimator initialization (tests, benches).
    pub fn with_estimates(&self, f: impl FnOnce(&mut EstimatorTable)) {
        f(self.inner.lock().tracker.estimates_mut());
    }

    /// One safe point: evaluates every live rule once against the current
    /// statistics and returns the rewrites that fired (at most one per
    /// rule). Once-rules that fire are retired. Returns nothing while
    /// disabled. The caller (normally a
    /// [`Reconfigurator`](crate::Reconfigurator)) applies the plans and
    /// records them with [`TriggerEngine::record`].
    pub fn plan(
        &self,
        root: &Arc<Node>,
        version: u64,
        lp: usize,
        _now: TimeNs,
    ) -> Vec<PlannedRewrite> {
        let mut inner = self.inner.lock();
        inner.safe_points += 1;
        if !inner.enabled {
            return Vec::new();
        }
        let TrigInner {
            tracker,
            errors,
            input_size,
            rules,
            retired,
            evaluations,
            safe_points,
            metrics,
            ..
        } = &mut *inner;
        let ctx = RuleCtx {
            estimates: tracker.estimates(),
            errors,
            input_size: input_size.value(),
            root,
            version,
            lp,
            safe_point: *safe_points,
        };
        let mut plans = Vec::new();
        for (index, (rule, retired)) in rules.iter().zip(retired.iter_mut()).enumerate() {
            if *retired {
                continue;
            }
            *evaluations += 1;
            if let Some(fire) = rule.evaluate(&ctx) {
                if rule.once() {
                    *retired = true;
                }
                if let Some(m) = metrics.as_mut() {
                    m.note_fire(rule.name());
                }
                plans.push(PlannedRewrite {
                    rule: rule.name().to_string(),
                    rule_index: index,
                    action: fire.action,
                    why: fire.why,
                    forecast: fire.forecast,
                    concern: rule.concern(),
                    priority: rule.priority(),
                    veto: fire.veto,
                });
            }
        }
        plans
    }

    /// Un-retires the rule at `index` (as reported in
    /// [`PlannedRewrite::rule_index`]). The
    /// [`Reconfigurator`](crate::Reconfigurator) calls this when a
    /// planned subtree replacement could not be applied — e.g. an earlier rewrite in the
    /// same safe point removed its target — so the rule gets another
    /// chance instead of being silently lost.
    pub fn rearm(&self, index: usize) {
        let mut inner = self.inner.lock();
        if let Some(retired) = inner.retired.get_mut(index) {
            *retired = false;
        }
    }

    /// Appends one applied rewrite to the decision log.
    pub fn record(&self, record: AdaptRecord) {
        self.inner.lock().log.push(record);
    }

    /// Drops every estimator entry (durations, cardinalities, group
    /// fallbacks, aliases) whose muscle belongs to one of `removed` —
    /// the nodes an applied rewrite removed from the tree. Returns the
    /// number of positional entries dropped. The
    /// [`Reconfigurator`](crate::Reconfigurator) calls this after every
    /// applied subtree replacement, so the next forecast is computed
    /// from the live tree instead of being steered by history of a
    /// subtree that no longer exists.
    pub fn invalidate_estimates_for(&self, removed: &[NodeId]) -> usize {
        self.inner
            .lock()
            .tracker
            .estimates_mut()
            .invalidate_nodes(removed)
    }

    /// Tells every registered rule that an applied rewrite replaced the
    /// subtree `target` with `replacement` ([`Rule::on_replaced`]) —
    /// how e.g. [`Offload`](crate::Offload) follows its subtree through
    /// a fallback swap and re-arms.
    pub fn note_replaced(&self, target: NodeId, replacement: &Arc<Node>) {
        let inner = self.inner.lock();
        for rule in &inner.rules {
            rule.on_replaced(target, replacement);
        }
    }

    /// The decision log: every applied rewrite, in order.
    pub fn decision_log(&self) -> Vec<AdaptRecord> {
        self.inner.lock().log.clone()
    }

    /// How many safe points have been evaluated.
    pub fn safe_points(&self) -> usize {
        self.inner.lock().safe_points
    }

    /// How many individual rule evaluations ran across all safe points.
    pub fn evaluations(&self) -> usize {
        self.inner.lock().evaluations
    }
}

/// Renders a decision log onto a Chrome trace: one instant marker per
/// record (named `rule: action`, category `adapt`), carrying the
/// justification, version, and — for closed forecast audits — the
/// predicted/realized WCT as event arguments. Combine with the pool's
/// `telemetry_to_chrome` to see rule fires against thread activity on
/// one timeline.
pub fn decision_log_to_chrome(log: &[AdaptRecord], trace: &mut askel_obs::ChromeTrace) {
    use askel_core::json::Json;
    for r in log {
        let mut args = vec![
            ("why".to_string(), Json::Str(r.why.clone())),
            ("version".to_string(), Json::Num(r.version as f64)),
        ];
        if let Some(f) = &r.forecast {
            args.push(("predicted_ns".to_string(), Json::Num(f.predicted.0 as f64)));
            if let Some(realized) = f.realized {
                args.push(("realized_ns".to_string(), Json::Num(realized.0 as f64)));
            }
        }
        trace.push(askel_obs::TraceEvent {
            name: format!("{}: {}", r.rule, r.action),
            cat: "adapt".to_string(),
            ph: 'i',
            ts: r.at,
            dur: None,
            pid: 1,
            tid: 0,
            args,
        });
    }
}

impl Listener for TriggerEngine {
    fn on_event(&self, _payload: &mut Payload<'_>, event: &Event) {
        let mut inner = self.inner.lock();
        if event.wher == Where::Skeleton && event.trace.depth() == 1 {
            match event.when {
                When::Before => {
                    // A fresh root submission: drop finished instance
                    // records so the tracker's memory stays bounded on
                    // long streams (estimates are kept — they are the
                    // whole point). Track the item's start for the
                    // forecast audit (bounded: items that never complete
                    // — poisoned runs — are swept wholesale at the cap).
                    inner.tracker.prune_finished();
                    if inner.item_starts.len() >= 1024 {
                        inner.item_starts.clear();
                    }
                    inner.item_starts.insert(event.index, event.timestamp);
                }
                When::After => {
                    // A root submission completed: its realized WCT
                    // closes the forecast audit of the skeleton version
                    // the item actually ran under — the last rewrite
                    // applied before it started. Matching on version
                    // (not merely "applied before") keeps back-to-back
                    // rewrites honest: an item submitted under version 2
                    // can never close version 1's audit, even when it
                    // completes first.
                    if let Some(started) = inner.item_starts.remove(&event.index) {
                        let realized = event.timestamp.saturating_sub(started);
                        let ran_under = inner
                            .log
                            .iter()
                            .filter(|r| r.at <= started)
                            .map(|r| r.version)
                            .max();
                        let mut audit_error = None;
                        if let Some(version) = ran_under {
                            if let Some(forecast) = inner
                                .log
                                .iter_mut()
                                .filter(|r| r.version == version && r.at <= started)
                                .filter_map(|r| r.forecast.as_mut())
                                .find(|f| f.realized.is_none())
                            {
                                forecast.realized = Some(realized);
                                audit_error = Some(realized.0.abs_diff(forecast.predicted.0));
                            }
                        }
                        if let (Some(err), Some(m)) = (audit_error, &inner.metrics) {
                            m.note_forecast_error(err);
                        }
                    }
                }
            }
        }
        inner.tracker.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{FallbackSwap, Knob, Promote, RetuneWidth, Trigger};
    use askel_skeletons::seq;

    #[test]
    fn outcomes_track_streaks() {
        let t = TriggerEngine::new(0.5);
        t.record_outcome(false);
        t.record_outcome(false);
        assert_eq!(t.error_stats().consecutive, 2);
        assert_eq!(t.error_stats().total, 2);
        t.record_outcome(true);
        assert_eq!(t.error_stats().consecutive, 0);
        assert_eq!(t.error_stats().total, 2);
        assert_eq!(t.error_stats().items, 3);
    }

    #[test]
    fn once_rules_retire_after_firing() {
        let target = seq(|x: i64| x);
        let fallback = seq(|x: i64| x);
        let t = TriggerEngine::new(0.5);
        t.add_rule(FallbackSwap::new(&target, &fallback, 1));
        t.record_outcome(false);
        let root = Arc::clone(target.node());
        let first = t.plan(&root, 0, 1, TimeNs::ZERO);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].rule, "fallback-swap");
        // The streak still holds, but the once-rule is retired.
        let second = t.plan(&root, 1, 1, TimeNs::ZERO);
        assert!(second.is_empty());
        assert_eq!(t.safe_points(), 2);
        assert_eq!(t.evaluations(), 1, "retired rules are not re-evaluated");
    }

    #[test]
    fn disabled_engine_plans_nothing() {
        let target = seq(|x: i64| x);
        let t = TriggerEngine::new(0.5);
        t.add_rule(FallbackSwap::new(&target, &target, 1));
        t.record_outcome(false);
        t.set_enabled(false);
        let root = Arc::clone(target.node());
        assert!(t.plan(&root, 0, 1, TimeNs::ZERO).is_empty());
        t.set_enabled(true);
        assert_eq!(t.plan(&root, 0, 1, TimeNs::ZERO).len(), 1);
    }

    #[test]
    fn input_size_hint_feeds_promotion() {
        let target = seq(|x: i64| x);
        let replacement = seq(|x: i64| x);
        let t = TriggerEngine::new(0.5);
        t.add_rule(Promote::new(&target, &replacement).when(Trigger::InputSizeAtLeast(100.0)));
        let root = Arc::clone(target.node());
        t.observe_input_size(10);
        assert!(t.plan(&root, 0, 1, TimeNs::ZERO).is_empty());
        t.observe_input_size(1000);
        // EWMA(10, 1000) at ρ=0.5 is 505 ≥ 100.
        assert_eq!(t.plan(&root, 0, 1, TimeNs::ZERO).len(), 1);
    }

    #[test]
    fn at_most_one_plan_per_rule_per_safe_point() {
        let target = seq(|x: i64| x);
        let t = TriggerEngine::new(0.5);
        t.add_rule(RetuneWidth::new(Knob::new("w", 1), 4));
        t.record_outcome(false);
        let root = Arc::clone(target.node());
        let plans = t.plan(&root, 0, 2, TimeNs::ZERO);
        assert_eq!(plans.len(), 1, "one rule, at most one plan");
    }

    #[test]
    fn decision_log_records_applied_rewrites() {
        let t = TriggerEngine::new(0.5);
        t.record(AdaptRecord {
            at: TimeNs::from_millis(5),
            version: 1,
            rule: "promote".into(),
            target: Some(NodeId(3)),
            action: "replace n3 with n9".into(),
            why: "input~500 >= 100".into(),
            forecast: None,
        });
        let log = t.decision_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].version, 1);
        assert_eq!(log[0].rule, "promote");
    }

    #[test]
    fn realized_wct_closes_the_forecast_audit() {
        use crate::forecast::Forecast;
        use askel_skeletons::{InstanceId, KindTag};

        let t = TriggerEngine::new(0.5);
        // An in-flight item that started *before* the rewrite must not
        // close the audit; the first item submitted after it does.
        let node = NodeId(11);
        let root_event = |when, inst: u64, at_ms: u64| Event {
            node,
            kind: KindTag::Seq,
            when,
            wher: Where::Skeleton,
            index: InstanceId(inst),
            trace: askel_events::Trace::root(node, InstanceId(inst), KindTag::Seq),
            timestamp: TimeNs::from_millis(at_ms),
            info: askel_events::EventInfo::None,
        };
        t.on_event(&mut Payload::None, &root_event(When::Before, 1, 0));
        t.record(AdaptRecord {
            at: TimeNs::from_millis(10),
            version: 1,
            rule: "promote".into(),
            target: None,
            action: "replace".into(),
            why: "gated".into(),
            forecast: Some(Forecast {
                predicted: TimeNs::from_millis(40),
                baseline: TimeNs::from_millis(100),
                realized: None,
            }),
        });
        // The pre-rewrite item completes: audit stays open.
        t.on_event(&mut Payload::None, &root_event(When::After, 1, 20));
        assert_eq!(t.decision_log()[0].forecast.unwrap().realized, None);
        // A post-rewrite item completes: realized = its WCT.
        t.on_event(&mut Payload::None, &root_event(When::Before, 2, 25));
        t.on_event(&mut Payload::None, &root_event(When::After, 2, 70));
        assert_eq!(
            t.decision_log()[0].forecast.unwrap().realized,
            Some(TimeNs::from_millis(45))
        );
        // Later completions do not overwrite a closed audit.
        t.on_event(&mut Payload::None, &root_event(When::Before, 3, 80));
        t.on_event(&mut Payload::None, &root_event(When::After, 3, 81));
        assert_eq!(
            t.decision_log()[0].forecast.unwrap().realized,
            Some(TimeNs::from_millis(45))
        );
    }

    #[test]
    fn back_to_back_rewrites_attribute_realized_to_their_own_version() {
        use crate::forecast::Forecast;
        use askel_skeletons::{InstanceId, KindTag};

        let t = TriggerEngine::new(0.5);
        let node = NodeId(11);
        let root_event = |when, inst: u64, at_ms: u64| Event {
            node,
            kind: KindTag::Seq,
            when,
            wher: Where::Skeleton,
            index: InstanceId(inst),
            trace: askel_events::Trace::root(node, InstanceId(inst), KindTag::Seq),
            timestamp: TimeNs::from_millis(at_ms),
            info: askel_events::EventInfo::None,
        };
        let gated_record = |at_ms: u64, version: u64, predicted_ms: u64| AdaptRecord {
            at: TimeNs::from_millis(at_ms),
            version,
            rule: format!("promote-v{version}"),
            target: None,
            action: "replace".into(),
            why: "gated".into(),
            forecast: Some(Forecast {
                predicted: TimeNs::from_millis(predicted_ms),
                baseline: TimeNs::from_millis(100),
                realized: None,
            }),
        };
        // Two rewrites on consecutive safe points: v1 at 10ms, v2 at
        // 30ms. Item A (inst 1) starts at 20ms under v1; item B (inst 2)
        // starts at 35ms under v2 — and completes FIRST.
        t.record(gated_record(10, 1, 40));
        t.on_event(&mut Payload::None, &root_event(When::Before, 1, 20));
        t.record(gated_record(30, 2, 25));
        t.on_event(&mut Payload::None, &root_event(When::Before, 2, 35));
        // B completes first: it ran under v2, so it must close v2's
        // audit — not v1's, which is still waiting on A.
        t.on_event(&mut Payload::None, &root_event(When::After, 2, 50));
        let log = t.decision_log();
        assert_eq!(log[0].forecast.unwrap().realized, None, "v1 still open");
        assert_eq!(
            log[1].forecast.unwrap().realized,
            Some(TimeNs::from_millis(15)),
            "v2 closed by its own item"
        );
        // A completes: closes v1's audit with A's WCT.
        t.on_event(&mut Payload::None, &root_event(When::After, 1, 60));
        let log = t.decision_log();
        assert_eq!(
            log[0].forecast.unwrap().realized,
            Some(TimeNs::from_millis(40)),
            "v1 closed by the item that ran under it"
        );
        assert_eq!(
            log[1].forecast.unwrap().realized,
            Some(TimeNs::from_millis(15)),
            "v2's closed audit is not overwritten"
        );
    }
}
