//! Self-configuration metrics: rule-fire counters and the
//! predicted-vs-realized forecast-error histogram, plus the decision-log
//! Chrome-trace adapter.

use std::sync::Arc;

use askel_adapt::{decision_log_to_chrome, AdaptRecord, FallbackSwap, Forecast, TriggerEngine};
use askel_core::json::Json;
use askel_events::{Event, EventInfo, Listener, Payload, Trace, When, Where};
use askel_obs::{ChromeTrace, MetricsHub};
use askel_skeletons::{seq, InstanceId, KindTag, NodeId, TimeNs};

fn root_event(node: NodeId, when: When, inst: u64, at_ms: u64) -> Event {
    Event {
        node,
        kind: KindTag::Seq,
        when,
        wher: Where::Skeleton,
        index: InstanceId(inst),
        trace: Trace::root(node, InstanceId(inst), KindTag::Seq),
        timestamp: TimeNs::from_millis(at_ms),
        info: EventInfo::None,
    }
}

#[test]
fn rule_fires_are_counted_per_rule_when_enabled() {
    let hub = MetricsHub::new();
    hub.set_enabled(true);
    let target = seq(|x: i64| x);
    let fallback = seq(|x: i64| x);
    let t = TriggerEngine::new(0.5);
    t.attach_metrics(&hub);
    t.add_rule(FallbackSwap::new(&target, &fallback, 1));
    t.record_outcome(false);
    let root = Arc::clone(target.node());
    assert_eq!(t.plan(&root, 0, 1, TimeNs::ZERO).len(), 1);
    let snap = hub.snapshot();
    assert_eq!(snap.counter("adapt_rule_fires_total"), Some(1));
    assert_eq!(
        snap.counter("adapt_rule_fires_total{rule=\"fallback-swap\"}"),
        Some(1)
    );
}

#[test]
fn closed_forecast_audits_record_their_error() {
    let hub = MetricsHub::new();
    hub.set_enabled(true);
    let t = TriggerEngine::new(0.5);
    t.attach_metrics(&hub);
    let node = NodeId(11);
    t.record(AdaptRecord {
        at: TimeNs::from_millis(10),
        version: 1,
        rule: "promote".into(),
        target: None,
        action: "replace".into(),
        why: "gated".into(),
        forecast: Some(Forecast {
            predicted: TimeNs::from_millis(40),
            baseline: TimeNs::from_millis(100),
            realized: None,
        }),
    });
    // An item submitted after the rewrite runs 45 ms: |45 - 40| = 5 ms.
    t.on_event(&mut Payload::None, &root_event(node, When::Before, 2, 25));
    t.on_event(&mut Payload::None, &root_event(node, When::After, 2, 70));
    let h = hub.snapshot();
    let err = h.histogram("adapt_forecast_error_ns").unwrap().clone();
    assert_eq!(err.count(), 1);
    let five_ms = TimeNs::from_millis(5).0;
    assert!(err.min() >= five_ms && err.max() <= five_ms + five_ms / 32);
}

#[test]
fn disabled_hub_counts_nothing() {
    let hub = MetricsHub::new();
    let target = seq(|x: i64| x);
    let t = TriggerEngine::new(0.5);
    t.attach_metrics(&hub);
    t.add_rule(FallbackSwap::new(&target, &target, 1));
    t.record_outcome(false);
    let root = Arc::clone(target.node());
    assert_eq!(t.plan(&root, 0, 1, TimeNs::ZERO).len(), 1);
    assert_eq!(hub.snapshot().counter("adapt_rule_fires_total"), Some(0));
}

#[test]
fn decision_log_renders_as_chrome_instants() {
    let log = vec![
        AdaptRecord {
            at: TimeNs::from_millis(20),
            version: 2,
            rule: "retune-width".into(),
            target: None,
            action: "set knob `w` 2 -> 4".into(),
            why: "lp grew".into(),
            forecast: None,
        },
        AdaptRecord {
            at: TimeNs::from_millis(10),
            version: 1,
            rule: "promote".into(),
            target: Some(NodeId(3)),
            action: "replace n3 with n9".into(),
            why: "input~500".into(),
            forecast: Some(Forecast {
                predicted: TimeNs::from_millis(40),
                baseline: TimeNs::from_millis(100),
                realized: Some(TimeNs::from_millis(45)),
            }),
        },
    ];
    let mut trace = ChromeTrace::new();
    decision_log_to_chrome(&log, &mut trace);
    assert_eq!(trace.len(), 2);
    let json = Json::parse(&trace.render()).unwrap();
    let events = json.get("traceEvents").unwrap().as_array().unwrap();
    // Sorted by timestamp: the promote record (10 ms) renders first,
    // with its forecast audit in the args.
    assert_eq!(
        events[0].get("name").unwrap().as_str(),
        Some("promote: replace n3 with n9")
    );
    assert_eq!(events[0].get("ph").unwrap().as_str(), Some("i"));
    let args = events[0].get("args").unwrap();
    assert_eq!(
        args.get("realized_ns").unwrap().as_f64(),
        Some(TimeNs::from_millis(45).0 as f64)
    );
    assert_eq!(
        events[1].get("name").unwrap().as_str(),
        Some("retune-width: set knob `w` 2 -> 4")
    );
}
