//! Property tests for the self-configuration runtime:
//!
//! * with every rule disabled (or none registered), an `AdaptiveSession`
//!   is behaviourally identical to a plain `StreamSession`;
//! * over random event interleavings, each rule fires **at most once per
//!   safe point** and once-rules never fire twice;
//! * rewrites are never observed mid-item: every item is processed
//!   entirely by one skeleton version, and the version sequence over the
//!   stream is monotone;
//! * on the discrete-event simulator, the same `(ordering seed, item
//!   trace)` replays the same results and the same decision log (virtual
//!   timestamps included), and *no* seed's schedule can make a rule fire
//!   twice at one safe point or a hysteresis-damped knob reverse inside
//!   its cooldown window.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use askel_adapt::{
    arbitrate, AdaptiveSession, AdaptiveSimSession, Concern, ConflictPolicy, FallbackSwap,
    Hysteresis, Knob, Offload, PlannedRewrite, Promote, RetuneGrain, RewriteAction, Trigger,
    TriggerEngine,
};
use askel_dist::{Cluster, NodeSpec};
use askel_engine::{Engine, StreamSession};
use askel_events::{Event, EventInfo, Listener, Payload, Trace, When, Where};
use askel_sim::cost::{LinearCost, PerMuscleCost, TableCost};
use askel_sim::workers::WorkerModel;
use askel_sim::{OrderingPolicy, SimEngine};
use askel_skeletons::{map, seq, InstanceId, KindTag, MuscleId, MuscleRole, NodeId, Skel, TimeNs};

fn map_program() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * 3),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

/// One synthetic observation a random interleaving can feed the trigger
/// engine between safe points.
#[derive(Clone, Debug)]
enum Obs {
    /// A full seq@b/seq@a pair with the given duration (ns).
    SeqSpan(u64),
    /// One item outcome.
    Outcome(bool),
    /// One input-size hint.
    InputSize(usize),
}

fn obs_strategy() -> impl Strategy<Value = Obs> {
    prop_oneof![
        (1u64..5_000_000).prop_map(Obs::SeqSpan),
        any::<bool>().prop_map(Obs::Outcome),
        (1usize..10_000).prop_map(Obs::InputSize),
    ]
}

fn seq_span_events(node: NodeId, inst: u64, start: TimeNs, dur: u64) -> [Event; 2] {
    let mk = |when, at| Event {
        node,
        kind: KindTag::Seq,
        when,
        wher: Where::Skeleton,
        index: InstanceId(inst),
        trace: Trace::root(node, InstanceId(inst), KindTag::Seq),
        timestamp: at,
        info: EventInfo::None,
    };
    [
        mk(When::Before, start),
        mk(When::After, start + TimeNs(dur)),
    ]
}

/// One synthetic rule fire for arbitration properties: which of a small
/// knob pool it sets, to what, under which concern/priority, veto or not.
#[derive(Clone, Debug)]
struct FireSpec {
    knob: usize,
    value: usize,
    concern: u8,
    priority: i32,
    veto: bool,
}

fn fire_strategy() -> impl Strategy<Value = FireSpec> {
    (0usize..3, 1usize..10, 0u8..3, -2i32..3, any::<bool>()).prop_map(
        |(knob, value, concern, priority, veto)| FireSpec {
            knob,
            value,
            concern,
            priority,
            veto,
        },
    )
}

/// Materializes the specs against a shared knob pool. Rule names are
/// unique per fire (position in the *spec* list, before any shuffle), so
/// the deterministic total order has no ties to hide behind.
fn plans_from(specs: &[FireSpec], knobs: &[Knob]) -> Vec<PlannedRewrite> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| PlannedRewrite {
            rule: format!("rule-{i}"),
            rule_index: i,
            action: RewriteAction::SetKnob {
                knob: knobs[s.knob].clone(),
                value: s.value,
            },
            why: "synthetic".to_string(),
            forecast: None,
            concern: match s.concern {
                0 => Concern::Performance,
                1 => Concern::Cost,
                _ => Concern::Reliability,
            },
            priority: s.priority,
            veto: s.veto,
        })
        .collect()
}

/// `(winners, suppressed as (loser, by), idle vetoes)` by rule name,
/// each sorted — the order-insensitive fingerprint of an outcome.
type OutcomeKey = (Vec<String>, Vec<(String, String)>, Vec<String>);

fn outcome_key(outcome: &askel_adapt::ArbitrationOutcome) -> OutcomeKey {
    let mut winners: Vec<String> = outcome.winners.iter().map(|p| p.rule.clone()).collect();
    let mut suppressed: Vec<(String, String)> = outcome
        .suppressed
        .iter()
        .map(|s| (s.plan.rule.clone(), s.by.clone()))
        .collect();
    let mut idle: Vec<String> = outcome.idle_vetoes.iter().map(|p| p.rule.clone()).collect();
    winners.sort();
    suppressed.sort();
    idle.sort();
    (winners, suppressed, idle)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn arbitration_is_invariant_under_registration_order(
        specs in proptest::collection::vec(fire_strategy(), 1..12),
        seed in any::<u64>(),
        policy_pick in 0usize..3,
    ) {
        // The `add_rule` contract: which fires win, lose, or idle
        // depends on (priority, concern, name, action) — never on the
        // order the rules were registered in, i.e. never on the order
        // the plans arrive in.
        let probe = seq(|x: i64| x);
        let knobs = [Knob::new("a", 1), Knob::new("b", 1), Knob::new("c", 1)];
        let policy = match policy_pick {
            0 => ConflictPolicy::PriorityWins,
            1 => ConflictPolicy::Veto,
            _ => ConflictPolicy::WeightedObjective {
                performance: 1.0,
                cost: 2.0,
                reliability: 3.0,
            },
        };
        let original = plans_from(&specs, &knobs);
        // A seeded Fisher–Yates permutation of the same fires.
        let mut shuffled = original.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let a = arbitrate(original, &policy, probe.node());
        let b = arbitrate(shuffled, &policy, probe.node());
        prop_assert_eq!(outcome_key(&a), outcome_key(&b));
    }

    #[test]
    fn at_most_one_action_wins_per_knob_and_winners_are_never_vetoes(
        specs in proptest::collection::vec(fire_strategy(), 1..12),
        veto_policy in any::<bool>(),
    ) {
        // Under priority-wins *and* veto arbitration, a safe point never
        // applies two actions to one knob, and a veto is never applied.
        let probe = seq(|x: i64| x);
        let knobs = [Knob::new("a", 1), Knob::new("b", 1), Knob::new("c", 1)];
        let policy = if veto_policy {
            ConflictPolicy::Veto
        } else {
            ConflictPolicy::PriorityWins
        };
        let n = specs.len();
        let outcome = arbitrate(plans_from(&specs, &knobs), &policy, probe.node());
        let mut per_knob = [0usize; 3];
        for w in &outcome.winners {
            prop_assert!(!w.veto, "a veto must never be applied: {:?}", w.rule);
            let RewriteAction::SetKnob { knob, .. } = &w.action else {
                panic!("this property only generates knob fires");
            };
            let slot = knobs
                .iter()
                .position(|k| k.shares_state(knob))
                .expect("knob from the pool");
            per_knob[slot] += 1;
        }
        for (slot, hits) in per_knob.iter().enumerate() {
            prop_assert!(
                *hits <= 1,
                "{hits} winning actions on knob {slot} in one safe point"
            );
        }
        // Conservation: every fire is accounted for exactly once.
        prop_assert_eq!(
            outcome.winners.len() + outcome.suppressed.len() + outcome.idle_vetoes.len(),
            n
        );
    }

    #[test]
    fn disabled_rules_are_byte_for_byte_equivalent(
        inputs in proptest::collection::vec(proptest::collection::vec(-50i64..50, 1..6), 1..24),
        bound in 1usize..6,
        disabled_not_empty in any::<bool>(),
    ) {
        let engine = Engine::new(2);
        let program = map_program();
        let trigger = TriggerEngine::new(0.5);
        if disabled_not_empty {
            // Rules present but the whole engine disabled.
            let target = seq(|v: Vec<i64>| v[0]);
            trigger.add_rule(
                Promote::new(&target, &target).when(Trigger::InputSizeAtLeast(0.0)),
            );
            trigger.add_rule(FallbackSwap::new(&target, &target, 1));
            trigger.set_enabled(false);
        }
        let mut adaptive = AdaptiveSession::new(&engine, &program, Arc::clone(&trigger))
            .max_in_flight(bound)
            .input_size(|v: &Vec<i64>| v.len());
        let mut plain = StreamSession::new(&engine, &program).max_in_flight(bound);
        for input in &inputs {
            adaptive.feed(input.clone());
            plain.feed(input.clone());
        }
        let a: Vec<i64> = adaptive.drain().map(|r| r.unwrap()).collect();
        let p: Vec<i64> = plain.drain().map(|r| r.unwrap()).collect();
        engine.shutdown();
        prop_assert_eq!(&a, &p);
        prop_assert!(trigger.decision_log().is_empty(), "nothing may fire");
    }

    #[test]
    fn rules_fire_at_most_once_per_safe_point_over_random_interleavings(
        script in proptest::collection::vec(
            (proptest::collection::vec(obs_strategy(), 0..6), any::<bool>()),
            1..16,
        ),
        duration_threshold_ms in 1u64..3,
        streak in 1usize..3,
    ) {
        // A probe skeleton whose seq node the synthetic events target.
        let probe = seq(|x: i64| x);
        let replacement = seq(|x: i64| x);
        let node = probe.id();
        let fe = askel_skeletons::MuscleId::new(node, askel_skeletons::MuscleRole::Execute);

        let trigger = TriggerEngine::new(0.5);
        trigger.add_rule(
            Promote::new(&probe, &replacement)
                .named("hot-promote")
                .when(Trigger::DurationAtLeast(fe, TimeNs::from_millis(duration_threshold_ms))),
        );
        trigger.add_rule(FallbackSwap::new(&probe, &replacement, streak));

        let root = Arc::clone(probe.node());
        let mut inst = 0u64;
        let mut now = TimeNs::ZERO;
        let mut fired_per_rule = std::collections::HashMap::<String, usize>::new();
        let mut version = 0u64;
        for (observations, do_safe_point) in script {
            for obs in observations {
                match obs {
                    Obs::SeqSpan(dur) => {
                        inst += 1;
                        for e in seq_span_events(node, inst, now, dur) {
                            trigger.on_event(&mut Payload::None, &e);
                        }
                        now += TimeNs(dur);
                    }
                    Obs::Outcome(ok) => trigger.record_outcome(ok),
                    Obs::InputSize(n) => trigger.observe_input_size(n),
                }
            }
            if do_safe_point {
                let plans = trigger.plan(&root, version, 2, now);
                let mut this_point = std::collections::HashMap::<String, usize>::new();
                for p in &plans {
                    *this_point.entry(p.rule.clone()).or_insert(0) += 1;
                    *fired_per_rule.entry(p.rule.clone()).or_insert(0) += 1;
                }
                for (rule, n) in &this_point {
                    prop_assert_eq!(*n, 1usize, "rule {} fired {} times in one safe point", rule, n);
                }
                version += plans.len() as u64;
            }
        }
        // Both are once-rules: across the whole interleaving each fires at most once.
        for (rule, n) in &fired_per_rule {
            prop_assert!(*n <= 1, "once-rule {} fired {} times", rule, n);
        }
    }

    #[test]
    fn hysteresis_knobs_never_reverse_within_the_cooldown(
        durations_ms in proptest::collection::vec(1u64..40, 8..60),
        cooldown in 2usize..6,
        dead_band_pct in 0u32..30,
    ) {
        // An arbitrary load trace drives a grain rule directly (estimator
        // overridden per safe point). Invariants, whatever the trace:
        // consecutive knob moves in opposite directions are separated by
        // at least the cooldown, and the value sequence has bounded
        // variation — no A→B→A flap inside one cooldown window.
        let probe = seq(|x: i64| x);
        let leaf = MuscleId::new(probe.id(), MuscleRole::Execute);
        let knob = Knob::new("grain", 64);
        let trigger = TriggerEngine::new(0.5);
        trigger.add_rule(
            RetuneGrain::new(knob.clone(), leaf, TimeNs::from_millis(10))
                .bounds(1, 1 << 20)
                .hysteresis(Hysteresis::new(cooldown, dead_band_pct as f64 / 100.0)),
        );
        let root = Arc::clone(probe.node());
        // (safe_point, old_value, new_value) per applied move.
        let mut fires: Vec<(usize, usize, usize)> = Vec::new();
        for (i, ms) in durations_ms.iter().enumerate() {
            trigger.with_estimates(|est| est.init_duration(leaf, TimeNs::from_millis(*ms)));
            for plan in trigger.plan(&root, 0, 2, TimeNs::ZERO) {
                let RewriteAction::SetKnob { knob, value } = plan.action else {
                    panic!("a grain rule only sets knobs");
                };
                let old = knob.get();
                knob.set(value);
                fires.push((i + 1, old, value));
            }
        }
        let mut reversals = 0usize;
        for w in fires.windows(2) {
            let (sp1, old1, new1) = w[0];
            let (sp2, old2, new2) = w[1];
            prop_assert!(new1 == old2, "moves chain through the knob value");
            let d1 = (new1 as i64 - old1 as i64).signum();
            let d2 = (new2 as i64 - old2 as i64).signum();
            if d1 != d2 {
                reversals += 1;
                prop_assert!(
                    sp2 - sp1 >= cooldown,
                    "reversal {old2}->{new2} at safe point {sp2} only {} points after \
                     {old1}->{new1} at {sp1} (cooldown {cooldown})",
                    sp2 - sp1
                );
                // No A→B→A flap within the window: returning to the
                // previous value is a reversal, so it obeys the bound.
                if new2 == old1 {
                    prop_assert!(sp2 - sp1 >= cooldown);
                }
            }
        }
        // Bounded variation: at most one direction change per window.
        prop_assert!(
            reversals <= 1 + durations_ms.len() / cooldown,
            "{reversals} reversals over {} safe points with cooldown {cooldown}",
            durations_ms.len()
        );
    }

    #[test]
    fn offload_on_a_balanced_cluster_is_byte_equivalent_to_stream_session(
        inputs in proptest::collection::vec(proptest::collection::vec(-50i64..50, 1..8), 1..20),
        edge_busy_ms in 0u64..100,
        hub_busy_ms in 0u64..100,
        bound in 1usize..4,
    ) {
        // The PR 4 disabled-rules equivalence property, extended to the
        // placement path: with an armed Offload rule over an arbitrary
        // cluster skew, results are byte-for-byte those of the plain
        // StreamSession — whether or not the offload fires, because
        // placement is a pure scheduling hint. And on a balanced cluster
        // (skew inside the water marks) the rule must not fire at all.
        let mut cluster = Cluster::new(vec![
            NodeSpec::local("edge", 1),
            NodeSpec::remote("hub", 2, TimeNs::ZERO),
        ]);
        cluster.note_busy(0, TimeNs::from_millis(edge_busy_ms)); // edge slot
        cluster.note_busy(1, TimeNs::from_millis(hub_busy_ms)); // first hub slot
        let telemetry = cluster.telemetry();

        let program = map_program();
        let trigger = TriggerEngine::new(0.5);
        trigger.add_rule(
            Offload::new(&program, "hub", telemetry.clone()).water_marks(0.75, 0.25),
        );
        let engine = Engine::new(2);
        let mut adaptive = AdaptiveSession::new(&engine, &program, Arc::clone(&trigger))
            .max_in_flight(bound);
        let mut plain = StreamSession::new(&engine, &program).max_in_flight(bound);
        for input in &inputs {
            adaptive.feed(input.clone());
            plain.feed(input.clone());
        }
        let a: Vec<i64> = adaptive.drain().map(|r| r.unwrap()).collect();
        let p: Vec<i64> = plain.drain().map(|r| r.unwrap()).collect();
        engine.shutdown();
        prop_assert_eq!(&a, &p, "placement never changes results");

        let fired = trigger
            .decision_log()
            .iter()
            .any(|d| d.rule == "offload");
        let total = edge_busy_ms + hub_busy_ms;
        if total == 0 {
            prop_assert!(!fired, "no skew observed, nothing may fire");
        } else {
            let edge_share = edge_busy_ms as f64 / total as f64;
            let hub_share = hub_busy_ms as f64 / total as f64;
            // Stay away from the exact water marks (f64 rounding there
            // is the rule's prerogative).
            if edge_share < 0.75 - 1e-6 || hub_share > 0.25 + 1e-6 {
                prop_assert!(!fired, "balanced cluster: {edge_share} / {hub_share}");
            } else if edge_share > 0.75 + 1e-6 && hub_share < 0.25 - 1e-6 {
                prop_assert!(fired, "clear skew must offload: {edge_share} / {hub_share}");
            }
        }
    }

    #[test]
    fn rewrites_are_never_observed_mid_item(
        sizes in proptest::collection::vec(1usize..40, 4..24),
        threshold in 5usize..20,
    ) {
        // v1 tags results with version 1, v2 with version 2; a mixed tag
        // within one item is impossible by construction, but a *stale*
        // version after the swap (or an early version before it) would
        // show up as a non-monotone tag sequence.
        let v1: Skel<Vec<i64>, (u64, i64)> = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| (1u64, v[0])),
            |parts: Vec<(u64, i64)>| {
                let version = parts[0].0;
                assert!(parts.iter().all(|(v, _)| *v == version), "mixed versions in one item");
                (version, parts.into_iter().map(|(_, x)| x).sum::<i64>())
            },
        );
        let v2: Skel<Vec<i64>, (u64, i64)> = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| (2u64, v[0])),
            |parts: Vec<(u64, i64)>| {
                (2u64, parts.into_iter().map(|(_, x)| x).sum::<i64>())
            },
        );
        let engine = Engine::new(2);
        let trigger = TriggerEngine::new(1.0); // EWMA = last hint: deterministic firing
        trigger.add_rule(
            Promote::new(&v1, &v2).when(Trigger::InputSizeAtLeast(threshold as f64)),
        );
        let mut stream = AdaptiveSession::new(&engine, &v1, trigger)
            .input_size(|v: &Vec<i64>| v.len());
        for size in &sizes {
            stream.feed((0..*size as i64).collect());
        }
        let tags: Vec<u64> = stream.drain().map(|r| r.unwrap().0).collect();
        engine.shutdown();
        // Monotone: a (possibly empty) run of v1 items, then v2 forever.
        let first_v2 = tags.iter().position(|t| *t == 2).unwrap_or(tags.len());
        prop_assert!(tags[..first_v2].iter().all(|t| *t == 1), "{:?}", tags);
        prop_assert!(tags[first_v2..].iter().all(|t| *t == 2), "{:?}", tags);
        // The swap fires at the safe point of the first item whose size
        // hint reaches the threshold (ρ=1), so that item runs on v2.
        let expected_first_v2 = sizes.iter().position(|s| *s >= threshold).unwrap_or(sizes.len());
        prop_assert_eq!(first_v2, expected_first_v2);
    }
}

/// Everything one seeded `AdaptiveSimSession` stream observed.
struct SimRun {
    /// `(at, version, rule)` for every `AdaptRecord`, in log order.
    decisions: Vec<(TimeNs, u64, String)>,
    outputs: Vec<i64>,
    /// The grain knob's value at each item's submission safe point.
    knob_trace: Vec<usize>,
    final_version: u64,
}

/// One adaptive stream over the simulator: a two-chunk fan-out whose leaf
/// cost scales with chunk size (so the grain EWMA tracks the item-size
/// trace), a hysteresis-damped grain rule, and a size-gated promotion to
/// a single-chunk variant. Every decision path of the stack is live.
fn sim_session_run(
    policy: OrderingPolicy,
    sizes: &[usize],
    threshold: usize,
    cooldown: usize,
) -> SimRun {
    let halves: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| {
            let mid = (v.len() / 2).max(1).min(v.len());
            let (a, b) = v.split_at(mid);
            vec![a.to_vec(), b.to_vec()]
        },
        seq(|chunk: Vec<i64>| chunk.iter().map(|x| x * 3).sum::<i64>()),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let collapsed: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| vec![v],
        seq(|chunk: Vec<i64>| chunk.iter().map(|x| x * 3).sum::<i64>()),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let leaf = MuscleId::new(halves.node().children()[0].id, MuscleRole::Execute);
    let cost = PerMuscleCost::new(Arc::new(TableCost::new(TimeNs::from_millis(1)))).route(
        leaf,
        Arc::new(
            LinearCost::new(TimeNs::ZERO, TimeNs::from_millis(2))
                .with_probe(|p| p.downcast_ref::<Vec<i64>>().map(Vec::len)),
        ),
    );
    let sim = SimEngine::new(2, Arc::new(cost)).ordering(policy);

    let knob = Knob::new("grain", 16);
    let trigger = TriggerEngine::new(0.5);
    sim.registry().add_listener(trigger.clone());
    trigger.add_rule(
        RetuneGrain::new(knob.clone(), leaf, TimeNs::from_millis(8))
            .bounds(1, 1 << 16)
            .hysteresis(Hysteresis::new(cooldown, 0.1)),
    );
    trigger.add_rule(
        Promote::new(&halves, &collapsed)
            .named("collapse")
            .when(Trigger::InputSizeAtLeast(threshold as f64)),
    );

    // The size probe runs at each item's submission safe point (before
    // the rewrite applies), so consecutive trace entries bracket exactly
    // one safe point — item distance = safe-point distance.
    let knob_trace = Arc::new(Mutex::new(Vec::new()));
    let probe = Arc::clone(&knob_trace);
    let watched = knob.clone();
    let mut session =
        AdaptiveSimSession::new(sim, &halves, trigger.clone()).input_size(move |v: &Vec<i64>| {
            probe.lock().unwrap().push(watched.get());
            v.len()
        });
    let items: Vec<Vec<i64>> = sizes.iter().map(|s| (0..*s as i64).collect()).collect();
    let outputs = session
        .run_stream(items, &mut [])
        .into_iter()
        .map(|r| r.expect("no failure injected"))
        .collect();
    let trace = knob_trace.lock().unwrap().clone();
    SimRun {
        decisions: trigger
            .decision_log()
            .into_iter()
            .map(|d| (d.at, d.version, d.rule))
            .collect(),
        outputs,
        knob_trace: trace,
        final_version: session.version(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    #[test]
    fn sim_session_replays_identically_per_seed(
        seed in any::<u64>(),
        sizes in proptest::collection::vec(1usize..24, 4..16),
        threshold in 4usize..20,
    ) {
        // Same (seed, trace) ⇒ same results AND the same AdaptRecord
        // sequence, virtual timestamps included.
        let policy = OrderingPolicy::SeededRandom(seed);
        let a = sim_session_run(policy, &sizes, threshold, 3);
        let b = sim_session_run(policy, &sizes, threshold, 3);
        prop_assert_eq!(&a.outputs, &b.outputs, "seed {}", seed);
        prop_assert_eq!(&a.decisions, &b.decisions, "seed {}", seed);
        prop_assert_eq!(&a.knob_trace, &b.knob_trace, "seed {}", seed);
        prop_assert_eq!(a.final_version, b.final_version, "seed {}", seed);
        // And whatever the schedule did, results equal the reference.
        for (k, size) in sizes.iter().enumerate() {
            let expected: i64 = (0..*size as i64).map(|x| x * 3).sum();
            prop_assert_eq!(a.outputs[k], expected, "item {} under seed {}", k, seed);
        }
    }

    #[test]
    fn no_seed_breaks_safe_point_or_hysteresis_invariants(
        seed in any::<u64>(),
        sizes in proptest::collection::vec(1usize..32, 8..24),
        cooldown in 2usize..5,
    ) {
        // Threshold above every size: the promotion stays armed (its
        // trigger evaluates each safe point) but the grain rule does the
        // moving — the hysteresis invariant gets a real workout.
        let run = sim_session_run(OrderingPolicy::SeededRandom(seed), &sizes, 64, cooldown);

        // At most one fire per rule per safe point: the decision log
        // grouped by virtual timestamp has no duplicate rule names.
        let mut by_at: Vec<(TimeNs, Vec<&str>)> = Vec::new();
        for (at, _, rule) in &run.decisions {
            match by_at.last_mut() {
                Some((t, rules)) if t == at => rules.push(rule),
                _ => by_at.push((*at, vec![rule])),
            }
        }
        for (at, rules) in &by_at {
            let mut uniq = rules.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(
                uniq.len(),
                rules.len(),
                "rule fired twice at safe point {} under seed {}: {:?}",
                at,
                seed,
                rules
            );
        }

        // The hysteresis-damped knob never reverses direction within the
        // cooldown window (consecutive trace entries bracket exactly one
        // safe point, so trace distance = safe-point distance).
        let mut prev: Option<(usize, i64)> = None;
        for (k, w) in run.knob_trace.windows(2).enumerate() {
            let dir = (w[1] as i64 - w[0] as i64).signum();
            if dir == 0 {
                continue;
            }
            if let Some((last_k, last_dir)) = prev {
                if dir != last_dir {
                    prop_assert!(
                        k - last_k >= cooldown,
                        "knob reversed after {} safe points (cooldown {}) under seed {}: {:?}",
                        k - last_k,
                        cooldown,
                        seed,
                        run.knob_trace
                    );
                }
            }
            prev = Some((k, dir));
        }
    }
}
