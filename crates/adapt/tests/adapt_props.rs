//! Property tests for the self-configuration runtime:
//!
//! * with every rule disabled (or none registered), an `AdaptiveSession`
//!   is behaviourally identical to a plain `StreamSession`;
//! * over random event interleavings, each rule fires **at most once per
//!   safe point** and once-rules never fire twice;
//! * rewrites are never observed mid-item: every item is processed
//!   entirely by one skeleton version, and the version sequence over the
//!   stream is monotone.

use std::sync::Arc;

use proptest::prelude::*;

use askel_adapt::{AdaptiveSession, FallbackSwap, Promote, Trigger, TriggerEngine};
use askel_engine::{Engine, StreamSession};
use askel_events::{Event, EventInfo, Listener, Payload, Trace, When, Where};
use askel_skeletons::{map, seq, InstanceId, KindTag, NodeId, Skel, TimeNs};

fn map_program() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * 3),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

/// One synthetic observation a random interleaving can feed the trigger
/// engine between safe points.
#[derive(Clone, Debug)]
enum Obs {
    /// A full seq@b/seq@a pair with the given duration (ns).
    SeqSpan(u64),
    /// One item outcome.
    Outcome(bool),
    /// One input-size hint.
    InputSize(usize),
}

fn obs_strategy() -> impl Strategy<Value = Obs> {
    prop_oneof![
        (1u64..5_000_000).prop_map(Obs::SeqSpan),
        any::<bool>().prop_map(Obs::Outcome),
        (1usize..10_000).prop_map(Obs::InputSize),
    ]
}

fn seq_span_events(node: NodeId, inst: u64, start: TimeNs, dur: u64) -> [Event; 2] {
    let mk = |when, at| Event {
        node,
        kind: KindTag::Seq,
        when,
        wher: Where::Skeleton,
        index: InstanceId(inst),
        trace: Trace::root(node, InstanceId(inst), KindTag::Seq),
        timestamp: at,
        info: EventInfo::None,
    };
    [
        mk(When::Before, start),
        mk(When::After, start + TimeNs(dur)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn disabled_rules_are_byte_for_byte_equivalent(
        inputs in proptest::collection::vec(proptest::collection::vec(-50i64..50, 1..6), 1..24),
        bound in 1usize..6,
        disabled_not_empty in any::<bool>(),
    ) {
        let engine = Engine::new(2);
        let program = map_program();
        let trigger = TriggerEngine::new(0.5);
        if disabled_not_empty {
            // Rules present but the whole engine disabled.
            let target = seq(|v: Vec<i64>| v[0]);
            trigger.add_rule(
                Promote::new(&target, &target).when(Trigger::InputSizeAtLeast(0.0)),
            );
            trigger.add_rule(FallbackSwap::new(&target, &target, 1));
            trigger.set_enabled(false);
        }
        let mut adaptive = AdaptiveSession::new(&engine, &program, Arc::clone(&trigger))
            .max_in_flight(bound)
            .input_size(|v: &Vec<i64>| v.len());
        let mut plain = StreamSession::new(&engine, &program).max_in_flight(bound);
        for input in &inputs {
            adaptive.feed(input.clone());
            plain.feed(input.clone());
        }
        let a: Vec<i64> = adaptive.drain().map(|r| r.unwrap()).collect();
        let p: Vec<i64> = plain.drain().map(|r| r.unwrap()).collect();
        engine.shutdown();
        prop_assert_eq!(&a, &p);
        prop_assert!(trigger.decision_log().is_empty(), "nothing may fire");
    }

    #[test]
    fn rules_fire_at_most_once_per_safe_point_over_random_interleavings(
        script in proptest::collection::vec(
            (proptest::collection::vec(obs_strategy(), 0..6), any::<bool>()),
            1..16,
        ),
        duration_threshold_ms in 1u64..3,
        streak in 1usize..3,
    ) {
        // A probe skeleton whose seq node the synthetic events target.
        let probe = seq(|x: i64| x);
        let replacement = seq(|x: i64| x);
        let node = probe.id();
        let fe = askel_skeletons::MuscleId::new(node, askel_skeletons::MuscleRole::Execute);

        let trigger = TriggerEngine::new(0.5);
        trigger.add_rule(
            Promote::new(&probe, &replacement)
                .named("hot-promote")
                .when(Trigger::DurationAtLeast(fe, TimeNs::from_millis(duration_threshold_ms))),
        );
        trigger.add_rule(FallbackSwap::new(&probe, &replacement, streak));

        let root = Arc::clone(probe.node());
        let mut inst = 0u64;
        let mut now = TimeNs::ZERO;
        let mut fired_per_rule = std::collections::HashMap::<String, usize>::new();
        let mut version = 0u64;
        for (observations, do_safe_point) in script {
            for obs in observations {
                match obs {
                    Obs::SeqSpan(dur) => {
                        inst += 1;
                        for e in seq_span_events(node, inst, now, dur) {
                            trigger.on_event(&mut Payload::None, &e);
                        }
                        now += TimeNs(dur);
                    }
                    Obs::Outcome(ok) => trigger.record_outcome(ok),
                    Obs::InputSize(n) => trigger.observe_input_size(n),
                }
            }
            if do_safe_point {
                let plans = trigger.plan(&root, version, 2, now);
                let mut this_point = std::collections::HashMap::<String, usize>::new();
                for p in &plans {
                    *this_point.entry(p.rule.clone()).or_insert(0) += 1;
                    *fired_per_rule.entry(p.rule.clone()).or_insert(0) += 1;
                }
                for (rule, n) in &this_point {
                    prop_assert_eq!(*n, 1usize, "rule {} fired {} times in one safe point", rule, n);
                }
                version += plans.len() as u64;
            }
        }
        // Both are once-rules: across the whole interleaving each fires at most once.
        for (rule, n) in &fired_per_rule {
            prop_assert!(*n <= 1, "once-rule {} fired {} times", rule, n);
        }
    }

    #[test]
    fn rewrites_are_never_observed_mid_item(
        sizes in proptest::collection::vec(1usize..40, 4..24),
        threshold in 5usize..20,
    ) {
        // v1 tags results with version 1, v2 with version 2; a mixed tag
        // within one item is impossible by construction, but a *stale*
        // version after the swap (or an early version before it) would
        // show up as a non-monotone tag sequence.
        let v1: Skel<Vec<i64>, (u64, i64)> = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| (1u64, v[0])),
            |parts: Vec<(u64, i64)>| {
                let version = parts[0].0;
                assert!(parts.iter().all(|(v, _)| *v == version), "mixed versions in one item");
                (version, parts.into_iter().map(|(_, x)| x).sum::<i64>())
            },
        );
        let v2: Skel<Vec<i64>, (u64, i64)> = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| (2u64, v[0])),
            |parts: Vec<(u64, i64)>| {
                (2u64, parts.into_iter().map(|(_, x)| x).sum::<i64>())
            },
        );
        let engine = Engine::new(2);
        let trigger = TriggerEngine::new(1.0); // EWMA = last hint: deterministic firing
        trigger.add_rule(
            Promote::new(&v1, &v2).when(Trigger::InputSizeAtLeast(threshold as f64)),
        );
        let mut stream = AdaptiveSession::new(&engine, &v1, trigger)
            .input_size(|v: &Vec<i64>| v.len());
        for size in &sizes {
            stream.feed((0..*size as i64).collect());
        }
        let tags: Vec<u64> = stream.drain().map(|r| r.unwrap().0).collect();
        engine.shutdown();
        // Monotone: a (possibly empty) run of v1 items, then v2 forever.
        let first_v2 = tags.iter().position(|t| *t == 2).unwrap_or(tags.len());
        prop_assert!(tags[..first_v2].iter().all(|t| *t == 1), "{:?}", tags);
        prop_assert!(tags[first_v2..].iter().all(|t| *t == 2), "{:?}", tags);
        // The swap fires at the safe point of the first item whose size
        // hint reaches the threshold (ρ=1), so that item runs on v2.
        let expected_first_v2 = sizes.iter().position(|s| *s >= threshold).unwrap_or(sizes.len());
        prop_assert_eq!(first_v2, expected_first_v2);
    }
}
