//! **Ablation** — the LP decrease policy (paper §4: halving, because the
//! minimal-LP problem is NP-complete; §5 attributes Fig. 6's early finish
//! to the slow decrease).
//!
//! Runs the Fig. 7 scenario (goal 10.5 s — plenty of slack, so decreases
//! matter) under `Halve`, `Never` and `ToMinimal`.

use std::sync::Arc;

use askel_bench::{PaperScenarios, ScenarioParams};
use askel_core::{AutonomicController, ControllerConfig, DecreasePolicy, FnActuator};
use askel_sim::SimEngine;
use askel_skeletons::TimeNs;

fn main() {
    let params = ScenarioParams::default();
    let goal = TimeNs::from_millis(10_500);
    println!("# Ablation: decrease policy (Fig. 7 scenario, goal 10.5s)");
    println!("# policy\twct(s)\tpeak_active\tfinal_lp\tdecreases\tgoal_met");
    for (name, policy) in [
        ("halve", DecreasePolicy::Halve),
        ("never", DecreasePolicy::Never),
        ("to-minimal", DecreasePolicy::ToMinimal),
    ] {
        let scenarios = PaperScenarios::new(params.clone());
        let mut sim = SimEngine::new(params.initial_lp, scenarios.cost_model());
        let lp_control = sim.lp_control();
        let mut config = ControllerConfig::new(goal, params.max_lp)
            .initial_lp(params.initial_lp)
            .decrease(policy)
            .decrease_cooldown(params.decrease_cooldown)
            .raise_headroom(params.raise_headroom)
            .decrease_safety(params.decrease_safety)
            .raise(params.raise_policy);
        for (m, canonical) in scenarios.program.shared_muscle_aliases() {
            config = config.alias(m, canonical);
        }
        let controller = AutonomicController::new(
            scenarios.program.skel.node().clone(),
            config,
            Arc::new(FnActuator(move |lp| lp_control.request(lp))),
        );
        sim.registry().add_listener(controller.clone());
        let out = sim
            .run(&scenarios.program.skel, scenarios.corpus_clone())
            .expect("ablation run failed");
        assert_eq!(&out.result, scenarios.expected_counts());
        let decreases = controller
            .decisions()
            .iter()
            .filter(|d| d.to_lp < d.from_lp)
            .count();
        println!(
            "{name}\t{:.2}\t{}\t{}\t{}\t{}",
            out.wct.as_secs_f64(),
            sim.telemetry().peak_active(),
            sim.lp(),
            decreases,
            out.wct <= goal,
        );
    }
}
