//! **Ablation** — sensitivity to the estimator weight ρ (paper §4: ρ→0
//! follows a stable tendency, ρ→1 chases the last value; default 0.5).
//!
//! Runs the Fig. 5 scenario with several ρ values and reports WCT, peak
//! threads and adaptation latency.

use std::sync::Arc;

use askel_bench::{PaperScenarios, ScenarioParams};
use askel_core::{AutonomicController, ControllerConfig, FnActuator};
use askel_sim::SimEngine;
use askel_skeletons::TimeNs;

fn main() {
    let params = ScenarioParams::default();
    let goal = TimeNs::from_millis(9_500);
    println!("# Ablation: estimator weight ρ (Fig. 5 scenario, goal 9.5s)");
    println!("# rho\twct(s)\tpeak_active\tfirst_decision(s)\tdecisions\tgoal_met");
    for rho in [0.0, 0.1, 0.5, 0.9, 1.0] {
        let scenarios = PaperScenarios::new(params.clone());
        // Rebuild the controller with the custom ρ (the harness default is
        // 0.5, so run manually here).
        let mut sim = SimEngine::new(params.initial_lp, scenario_cost(&scenarios));
        let lp_control = sim.lp_control();
        let mut config = ControllerConfig::new(goal, params.max_lp)
            .initial_lp(params.initial_lp)
            .rho(rho)
            .decrease_cooldown(params.decrease_cooldown)
            .raise_headroom(params.raise_headroom)
            .decrease_safety(params.decrease_safety)
            .raise(params.raise_policy);
        for (m, canonical) in scenarios.program.shared_muscle_aliases() {
            config = config.alias(m, canonical);
        }
        let controller = AutonomicController::new(
            scenarios.program.skel.node().clone(),
            config,
            Arc::new(FnActuator(move |lp| lp_control.request(lp))),
        );
        sim.registry().add_listener(controller.clone());
        let out = sim
            .run(&scenarios.program.skel, scenarios.corpus_clone())
            .expect("ablation run failed");
        let decisions = controller.decisions();
        println!(
            "{rho}\t{:.2}\t{}\t{}\t{}\t{}",
            out.wct.as_secs_f64(),
            sim.telemetry().peak_active(),
            decisions
                .first()
                .map(|d| format!("{:.2}", d.at.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            decisions.len(),
            out.wct <= goal,
        );
    }
}

fn scenario_cost(s: &PaperScenarios) -> Arc<dyn askel_sim::cost::CostModel> {
    s.cost_model()
}
