//! Self-configuration overhead: what does an `AdaptiveSession` cost when
//! **no rule fires**?
//!
//! Three measurements over the `map_512` program (same as
//! `engine_throughput`), one item per iteration, fed/collected lock-step:
//!
//! * `map_512_stream_session` — the plain `StreamSession` baseline, no
//!   listeners (the engine skips the whole event path);
//! * `map_512_stream_session_traced` — `StreamSession` with the
//!   `TriggerEngine` registered as a listener: the cost of *monitoring*
//!   (event emission + state machines), common to any event-driven
//!   autonomic layer;
//! * `map_512_adaptive_session_no_fire` — `AdaptiveSession` with the
//!   trigger listener **plus four armed rules whose thresholds are
//!   unreachable**: monitoring plus per-item safe-point rule evaluation.
//! * `map_512_adaptive_session_arbitrated_no_conflict` — the same four
//!   silent rules **plus a cost guard that fires an uncontested veto at
//!   every safe point**: the arbitration layer (conflict grouping,
//!   ranking, idle-veto re-arm) runs on a live fire each item without
//!   any conflict to resolve, the worst steady state of a guarded
//!   deployment.
//!
//! The tracked figures are `adaptive_no_fire / stream_traced` and
//! `arbitrated_no_conflict / stream_traced`: rule evaluation — and
//! arbitration on top of it — must each add <5% on top of the monitored
//! baseline (recorded in `BENCH_adapt_overhead.json`). The
//! `traced / plain` ratio prices monitoring separately — that cost is
//! shared with the WCT controller and is already bounded by the
//! `overhead_events` bench.

use criterion::{criterion_group, criterion_main, Criterion};

use askel_adapt::{
    AdaptiveSession, CostGuard, FallbackSwap, Knob, Promote, RetuneGrain, RetuneWidth, Trigger,
    TriggerEngine,
};
use askel_dist::NodeHoursMeter;
use askel_engine::{Engine, StreamSession};
use askel_skeletons::{map, seq, MuscleId, MuscleRole, Skel, TimeNs};

fn map_program() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.chunks(16).map(|c| c.to_vec()).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v.iter().sum::<i64>()),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

/// Four armed rules that can never fire on this workload.
fn unreachable_rules(trigger: &TriggerEngine, program: &Skel<Vec<i64>, i64>) {
    let decoy = seq(|v: Vec<i64>| v.into_iter().sum::<i64>());
    let fs = MuscleId::new(program.id(), MuscleRole::Split);
    // The decoy never executes, so its muscle never gains an estimate:
    // the grain rule stays silent (no estimate, no decision).
    let silent = MuscleId::new(decoy.id(), MuscleRole::Execute);
    trigger.add_rule(
        Promote::new(program, program)
            .named("promote-never")
            .when(Trigger::InputSizeAtLeast(f64::MAX)),
    );
    trigger.add_rule(FallbackSwap::new(program, &decoy, usize::MAX).named("swap-never"));
    trigger.add_rule(
        RetuneWidth::new(Knob::new("width-never", 32), 16)
            .when(Trigger::CardinalityAtLeast(fs, f64::MAX)),
    );
    trigger.add_rule(RetuneGrain::new(
        Knob::new("grain-never", 64),
        silent,
        TimeNs::from_millis(1),
    ));
}

fn bench_adapt_overhead(c: &mut Criterion) {
    let input: Vec<i64> = (0..512).collect();

    // Baseline: plain stream session, empty registry.
    {
        let engine = Engine::new(2);
        engine.pool().telemetry().set_recording(false);
        let program = map_program();
        let mut stream = StreamSession::new(&engine, &program);
        c.bench_function("map_512_stream_session", |b| {
            b.iter(|| {
                stream.feed(input.clone());
                stream.next_result().unwrap().unwrap()
            })
        });
        engine.shutdown();
    }

    // Monitored baseline: the trigger engine listens, no rules armed.
    {
        let engine = Engine::new(2);
        engine.pool().telemetry().set_recording(false);
        let program = map_program();
        let trigger = TriggerEngine::new(0.5);
        engine.registry().add_listener(trigger);
        let mut stream = StreamSession::new(&engine, &program);
        c.bench_function("map_512_stream_session_traced", |b| {
            b.iter(|| {
                stream.feed(input.clone());
                stream.next_result().unwrap().unwrap()
            })
        });
        engine.shutdown();
    }

    // Adaptive session: monitoring plus four armed-but-silent rules
    // evaluated at every safe point.
    {
        let engine = Engine::new(2);
        engine.pool().telemetry().set_recording(false);
        let program = map_program();
        let trigger = TriggerEngine::new(0.5);
        engine.registry().add_listener(trigger.clone());
        unreachable_rules(&trigger, &program);
        let mut stream = AdaptiveSession::new(&engine, &program, trigger.clone())
            .input_size(|v: &Vec<i64>| v.len());
        c.bench_function("map_512_adaptive_session_no_fire", |b| {
            b.iter(|| {
                stream.feed(input.clone());
                stream.next_result().unwrap().unwrap()
            })
        });
        assert_eq!(stream.version(), 0, "no rule may fire in this bench");
        assert!(trigger.decision_log().is_empty());
        engine.shutdown();
    }

    // Arbitration steady state: the four silent rules plus a cost guard
    // whose budget is already spent and whose knob already sits at the
    // economy value — it fires an uncontested *veto* at every safe
    // point, so arbitration groups, ranks and drops it (re-arming the
    // rule) without a conflict, a version bump, or a log record.
    {
        let engine = Engine::new(2);
        engine.pool().telemetry().set_recording(false);
        let program = map_program();
        let trigger = TriggerEngine::new(0.5);
        engine.registry().add_listener(trigger.clone());
        unreachable_rules(&trigger, &program);
        trigger.add_rule(CostGuard::knob(
            NodeHoursMeter::new(),
            TimeNs::ZERO,
            Knob::new("width-held", 2),
            2,
        ));
        let mut stream = AdaptiveSession::new(&engine, &program, trigger.clone())
            .input_size(|v: &Vec<i64>| v.len());
        c.bench_function("map_512_adaptive_session_arbitrated_no_conflict", |b| {
            b.iter(|| {
                stream.feed(input.clone());
                stream.next_result().unwrap().unwrap()
            })
        });
        assert_eq!(stream.version(), 0, "vetoes never bump the version");
        assert!(trigger.decision_log().is_empty(), "idle vetoes stay silent");
        engine.shutdown();
    }
}

criterion_group!(benches, bench_adapt_overhead);
criterion_main!(benches);
