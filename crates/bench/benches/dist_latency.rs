//! **Extension bench** — distributed execution (the paper's §4/§6 future
//! work): the same centralised controller scales a heterogeneous cluster.
//! Sweep the remote round-trip latency and watch the controller allocate
//! *more remote workers* to hold the same WCT goal.

use std::sync::Arc;

use askel_core::{AutonomicController, ControllerConfig, FnActuator};
use askel_dist::{Cluster, NodeSpec};
use askel_sim::cost::TableCost;
use askel_sim::SimEngine;
use askel_skeletons::{map, seq, MuscleRole, Skel, TimeNs};

fn fan() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0]),
        |p: Vec<i64>| p.into_iter().sum::<i64>(),
    )
}

fn main() {
    let children = 24usize;
    let fe = TimeNs::from_secs(2);
    let goal = TimeNs::from_secs(10);
    println!(
        "# Distributed scaling: {children} × {fe} tasks, goal {goal}, 2 local + 22 remote slots"
    );
    println!("# round_trip(ms)\twct(s)\tpeak_workers\tgoal_met\tnodes(enabled/provisioned)");
    for rt_ms in [0u64, 200, 500, 1_000] {
        let program = fan();
        let ids = program.node().collect_muscles();
        let mut cost = TableCost::new(TimeNs::from_millis(20));
        for m in &ids {
            if m.id.role == MuscleRole::Execute {
                cost.set(m.id, fe);
            }
        }
        let cluster = Cluster::new(vec![
            NodeSpec::local("master", 2),
            NodeSpec::remote("remote", 22, TimeNs::from_millis(rt_ms)),
        ])
        .with_capacity(1);
        let mut sim = SimEngine::with_workers(Box::new(cluster), Arc::new(cost));
        let lp = sim.lp_control();
        let controller = AutonomicController::new(
            program.node().clone(),
            ControllerConfig::new(goal, 24).initial_lp(1),
            Arc::new(FnActuator(move |n| lp.request(n))),
        );
        controller.with_estimates(|est| {
            for m in &ids {
                let d = if m.id.role == MuscleRole::Execute {
                    fe
                } else {
                    TimeNs::from_millis(20)
                };
                est.init_duration(m.id, d);
                if m.id.role == MuscleRole::Split {
                    est.init_cardinality(m.id, children as f64);
                }
            }
        });
        sim.registry().add_listener(controller.clone());
        let input: Vec<i64> = (1..=children as i64).collect();
        let out = sim.run(&program, input).expect("dist run failed");
        let peak = controller
            .decisions()
            .iter()
            .map(|d| d.to_lp)
            .max()
            .unwrap_or(1);
        println!(
            "{rt_ms}\t{:.2}\t{}\t{}\t-",
            out.wct.as_secs_f64(),
            peak,
            out.wct <= goal,
        );
        assert!(out.wct <= goal, "goal missed at round-trip {rt_ms}ms");
    }
    println!("# higher latency ⇒ the controller provisions more remote workers to hold the goal");
}
