//! Threaded-engine micro-bench: skeleton interpretation overhead versus
//! the sequential reference interpreter, per kind.

use criterion::{criterion_group, criterion_main, Criterion};

use askel_engine::Engine;
use askel_skeletons::{dac, map, seq, sfor, Skel};

fn map_program() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.chunks(16).map(|c| c.to_vec()).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v.iter().sum::<i64>()),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

fn dac_program() -> Skel<Vec<i64>, Vec<i64>> {
    dac(
        |v: &Vec<i64>| v.len() > 64,
        |v: Vec<i64>| {
            let mid = v.len() / 2;
            let (a, b) = v.split_at(mid);
            vec![a.to_vec(), b.to_vec()]
        },
        seq(|mut v: Vec<i64>| {
            v.sort_unstable();
            v
        }),
        |parts: Vec<Vec<i64>>| {
            let mut out: Vec<i64> = parts.into_iter().flatten().collect();
            out.sort_unstable();
            out
        },
    )
}

fn bench_map(c: &mut Criterion) {
    let program = map_program();
    let input: Vec<i64> = (0..512).collect();
    c.bench_function("map_512_sequential_reference", |b| {
        b.iter(|| program.apply(input.clone()))
    });
    let engine = Engine::new(2);
    engine.pool().telemetry().set_recording(false);
    c.bench_function("map_512_threaded_engine_lp2", |b| {
        b.iter(|| engine.submit(&program, input.clone()).get().unwrap())
    });
    engine.shutdown();
}

fn bench_dac(c: &mut Criterion) {
    let program = dac_program();
    let input: Vec<i64> = (0..512).rev().collect();
    c.bench_function("dac_sort_512_sequential_reference", |b| {
        b.iter(|| program.apply(input.clone()))
    });
    let engine = Engine::new(2);
    engine.pool().telemetry().set_recording(false);
    c.bench_function("dac_sort_512_threaded_engine_lp2", |b| {
        b.iter(|| engine.submit(&program, input.clone()).get().unwrap())
    });
    engine.shutdown();
}

fn bench_for_chain(c: &mut Criterion) {
    let program = sfor(64, seq(|x: i64| x + 1));
    let engine = Engine::new(1);
    engine.pool().telemetry().set_recording(false);
    c.bench_function("for_64_iterations_threaded_engine", |b| {
        b.iter(|| engine.submit(&program, 0i64).get().unwrap())
    });
    engine.shutdown();
}

/// The engine's fixed round-trip floor: one trivial muscle, so the
/// number is almost purely submit → dispatch → future-resolution cost.
/// Subtract it from the other engine benches to see interpreter
/// overhead separate from the per-submission overhead.
fn bench_seq_roundtrip(c: &mut Criterion) {
    let program = seq(|x: i64| x + 1);
    let engine = Engine::new(1);
    engine.pool().telemetry().set_recording(false);
    c.bench_function("seq_roundtrip_threaded_engine_lp1", |b| {
        b.iter(|| engine.submit(&program, 1i64).get().unwrap())
    });
    engine.shutdown();
}

criterion_group!(
    benches,
    bench_map,
    bench_dac,
    bench_for_chain,
    bench_seq_roundtrip
);
criterion_main!(benches);
