//! **Figure 1** — the Activity Dependency Graph of the worked example at
//! WCT 70: activity table with actual and estimated intervals under both
//! strategies.
//!
//! Paper values this must reproduce: best-effort WCT **100**, limited-LP(2)
//! WCT **115**, running split estimated to end at **75**, B's merge at
//! [70,75], C's `fe`s at [75,90] (best effort) with the third delayed to
//! [90,105] under LP 2.

use askel_bench::fig1::{sec, Fig1Fixture};
use askel_core::{best_effort, limited_lp, ActState, AdgBuilder};

fn main() {
    let f = Fig1Fixture::new();
    let tracker = f.tracker_at_70();
    let adg = AdgBuilder::new(&tracker).build(f.skel.node());
    let now = sec(70);
    let be = best_effort(&adg, now);
    let ll = limited_lp(&adg, now, 2);

    println!("# Figure 1 — ADG of map(fs, map(fs, seq(fe), fm), fm) at WCT 70, LP 2");
    println!("# t(fs)=10 t(fe)=15 t(fm)=5 |fs|=3");
    println!("#");
    println!("# activity        state      best-effort       limited-LP(2)");
    for (i, a) in adg.activities.iter().enumerate() {
        let state = match a.state {
            ActState::Done { .. } => "done",
            ActState::Running { .. } => "running",
            ActState::Pending => "pending",
        };
        println!(
            "{:>2} {:<12} {:<9} [{:>3.0},{:>3.0}]         [{:>3.0},{:>3.0}]",
            i,
            a.muscle.to_string(),
            state,
            be.spans[i].0.as_secs_f64(),
            be.spans[i].1.as_secs_f64(),
            ll.spans[i].0.as_secs_f64(),
            ll.spans[i].1.as_secs_f64(),
        );
    }
    println!("#");
    println!(
        "best-effort WCT    = {:>3.0}   (paper: 100)",
        be.finish.as_secs_f64()
    );
    println!(
        "limited-LP(2) WCT  = {:>3.0}   (paper: 115)",
        ll.finish.as_secs_f64()
    );
    assert_eq!(be.finish, sec(100), "Fig. 1 best-effort WCT regressed");
    assert_eq!(ll.finish, sec(115), "Fig. 1 limited-LP WCT regressed");
}
