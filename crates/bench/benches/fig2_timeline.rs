//! **Figure 2** — the active-thread timeline of the worked example:
//! limited-LP(2) vs best effort, the optimal LP, and the controller's
//! 2 → 3 decision for a WCT goal of 100.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use askel_bench::fig1::{sec, Fig1Fixture};
use askel_core::{
    best_effort, limited_lp, optimal_lp, AdgBuilder, AutonomicController, ControllerConfig,
    FnActuator,
};
use askel_events::{Listener, Payload};

fn main() {
    let f = Fig1Fixture::new();
    let tracker = f.tracker_at_70();
    let adg = AdgBuilder::new(&tracker).build(f.skel.node());
    let now = sec(70);
    let be = best_effort(&adg, now);
    let ll = limited_lp(&adg, now, 2);

    println!("# Figure 2 — estimated active threads over wall-clock time");
    println!("# time(s)\tlimited-LP(2)\tbest-effort");
    let sample = |sched: &askel_core::Schedule, t| {
        sched
            .timeline()
            .iter()
            .take_while(|p| p.at <= t)
            .last()
            .map(|p| p.active)
            .unwrap_or(0)
    };
    for t in (0..=120).step_by(5) {
        let t = sec(t);
        println!(
            "{:.0}\t{}\t{}",
            t.as_secs_f64(),
            sample(&ll, t),
            sample(&be, t)
        );
    }
    let opt = optimal_lp(&adg, now);
    println!("#");
    println!("optimal LP        = {opt}   (paper: 3, needed during [75,90))");
    println!(
        "limited-LP(2) WCT = {:.0}   (paper: 115)",
        ll.finish.as_secs_f64()
    );
    println!(
        "best-effort WCT   = {:.0}   (paper: 100)",
        be.finish.as_secs_f64()
    );
    assert_eq!(opt, 3);

    // The controller decision the paper derives from this timeline:
    // "If we set the WCT QoS goal to 100, Skandium will autonomically
    // increase LP to 3".
    let requested = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&requested);
    let controller = AutonomicController::new(
        f.skel.node().clone(),
        ControllerConfig::new(sec(100), 24)
            .initial_lp(2)
            .manual_analysis(true),
        Arc::new(FnActuator(move |lp| r.store(lp, Ordering::SeqCst))),
    );
    controller.with_estimates(|est| {
        use askel_skeletons::{MuscleId, MuscleRole};
        for node in [f.outer, f.inner] {
            est.init_duration(MuscleId::new(node, MuscleRole::Split), sec(10));
            est.init_duration(MuscleId::new(node, MuscleRole::Merge), sec(5));
            est.init_cardinality(MuscleId::new(node, MuscleRole::Split), 3.0);
        }
        est.init_duration(MuscleId::new(f.leaf, MuscleRole::Execute), sec(15));
    });
    f.feed_history(|e| controller.on_event(&mut Payload::None, &e));
    controller.force_analyze(sec(70));
    println!(
        "controller (goal 100): LP 2 -> {}   (paper: 3)",
        controller.current_lp()
    );
    assert_eq!(controller.current_lp(), 3);
}
