//! **Figure 5** — "Goal without initialization": autonomic word-count run
//! with a WCT goal of 9.5 s and cold estimators.
//!
//! Paper behaviour to reproduce (shape): no adaptation is possible until
//! the first merge has executed (≈ 7.6 s); the LP then ramps up and the
//! run finishes under the 9.5 s goal (paper: 9.3 s), well below the 12.5 s
//! sequential baseline.

use askel_bench::series::{render_ascii, render_rows};
use askel_bench::{PaperScenarios, ScenarioParams};
use askel_skeletons::TimeNs;

fn main() {
    let scenarios = PaperScenarios::new(ScenarioParams::default());
    let goal = TimeNs::from_millis(9_500);
    let seq = scenarios.sequential_wct();
    let out = scenarios.run(goal, None);

    println!("# Figure 5 — \"Goal without initialization\" (goal 9.5s, cold estimates)");
    println!("# time(ms)\tactive-threads");
    print!("{}", render_rows(&out.active_timeline));
    println!("#");
    println!("{}", render_ascii(&out.active_timeline, out.wct, 72, 10));
    println!(
        "sequential WCT      = {:>6.2}s  (paper: 12.5s)",
        seq.as_secs_f64()
    );
    println!(
        "autonomic WCT       = {:>6.2}s  (paper: 9.3s, goal 9.5s)",
        out.wct.as_secs_f64()
    );
    println!(
        "first adaptation at = {:>6.2}s  (paper: 7.6s, at the first merge)",
        out.first_decision_at
            .map(|t| t.as_secs_f64())
            .unwrap_or(0.0)
    );
    println!("peak active threads = {:>6}   (paper: 17)", out.peak_active);
    println!("decisions:");
    for d in &out.decisions {
        println!(
            "  t={:>6.2}s {:>2} -> {:>2} ({:?}, predicted {:.2}s)",
            d.at.as_secs_f64(),
            d.from_lp,
            d.to_lp,
            d.reason,
            d.predicted_wct.as_secs_f64()
        );
    }
    assert!(out.wct <= goal, "Fig. 5 run must meet its goal");
    assert!(out.wct < seq, "autonomic must beat sequential");
}
