//! **Figure 6** — "Goal with initialization": the same 9.5 s goal, with
//! estimators initialized from the final values of a previous execution.
//!
//! Paper behaviour to reproduce (shape): adaptation happens at the end of
//! the first split (6.4 s — *before* the first merge; during the split the
//! single-threaded file read needs no extra threads), and the run finishes
//! earlier than the cold run of Fig. 5 (paper: 8.4 s vs 9.3 s, ≈ 1 s gap).

use askel_bench::series::{render_ascii, render_rows};
use askel_bench::{PaperScenarios, ScenarioParams};
use askel_skeletons::TimeNs;

fn main() {
    let scenarios = PaperScenarios::new(ScenarioParams::default());
    let goal = TimeNs::from_millis(9_500);

    // The "previous execution" whose final estimates initialize this run.
    let warmup = scenarios.run(goal, None);
    let out = scenarios.run(goal, Some(&warmup.snapshot));

    println!(
        "# Figure 6 — \"Goal with initialization\" (goal 9.5s, estimates from a previous run)"
    );
    println!("# time(ms)\tactive-threads");
    print!("{}", render_rows(&out.active_timeline));
    println!("#");
    println!("{}", render_ascii(&out.active_timeline, out.wct, 72, 10));
    println!(
        "autonomic WCT        = {:>6.2}s  (paper: 8.4s, goal 9.5s)",
        out.wct.as_secs_f64()
    );
    println!(
        "cold run (Fig. 5)    = {:>6.2}s  (paper: 9.3s)",
        warmup.wct.as_secs_f64()
    );
    println!(
        "first adaptation at  = {:>6.2}s  (paper: 6.4s, at the end of the first split)",
        out.first_decision_at
            .map(|t| t.as_secs_f64())
            .unwrap_or(0.0)
    );
    println!(
        "peak active threads  = {:>6}   (paper: 19)",
        out.peak_active
    );
    println!("decisions:");
    for d in &out.decisions {
        println!(
            "  t={:>6.2}s {:>2} -> {:>2} ({:?}, predicted {:.2}s)",
            d.at.as_secs_f64(),
            d.from_lp,
            d.to_lp,
            d.reason,
            d.predicted_wct.as_secs_f64()
        );
    }
    assert!(out.wct <= goal, "Fig. 6 run must meet its goal");
    assert!(
        out.wct < warmup.wct,
        "initialization must beat the cold run (paper: 8.4s < 9.3s)"
    );
    let first = out.first_decision_at.expect("must adapt");
    assert!(
        first < TimeNs::from_millis(7_000),
        "initialized run must adapt at the first split (~6.4s), got {first}"
    );
}
