//! **Figure 7** — "WCT goal of 10.5 s": the looser goal leaves more room,
//! so the controller allocates fewer threads than in Figs. 5–6 and the run
//! finishes near its goal.
//!
//! Paper behaviour to reproduce (shape): max LP clearly below the 9.5 s
//! scenarios' (paper: 10 vs 17/19) and a finish time close to the goal
//! (paper: 10.6 s).

use askel_bench::series::{render_ascii, render_rows};
use askel_bench::{PaperScenarios, ScenarioParams};
use askel_skeletons::TimeNs;

fn main() {
    let scenarios = PaperScenarios::new(ScenarioParams::default());
    let goal95 = TimeNs::from_millis(9_500);
    let goal105 = TimeNs::from_millis(10_500);

    let tight = scenarios.run(goal95, None);
    let out = scenarios.run(goal105, None);

    println!("# Figure 7 — \"WCT goal of 10.5s\" (cold estimates)");
    println!("# time(ms)\tactive-threads");
    print!("{}", render_rows(&out.active_timeline));
    println!("#");
    println!("{}", render_ascii(&out.active_timeline, out.wct, 72, 10));
    println!(
        "autonomic WCT        = {:>6.2}s  (paper: 10.6s, goal 10.5s)",
        out.wct.as_secs_f64()
    );
    println!(
        "peak active threads  = {:>6}   (paper: 10)",
        out.peak_active
    );
    println!(
        "9.5s-goal comparison = wct {:>5.2}s, peak {}   (paper: 9.3s, 17)",
        tight.wct.as_secs_f64(),
        tight.peak_active
    );
    println!("decisions:");
    for d in &out.decisions {
        println!(
            "  t={:>6.2}s {:>2} -> {:>2} ({:?}, predicted {:.2}s)",
            d.at.as_secs_f64(),
            d.from_lp,
            d.to_lp,
            d.reason,
            d.predicted_wct.as_secs_f64()
        );
    }
    assert!(out.wct <= goal105, "Fig. 7 run must meet its goal");
    assert!(
        out.peak_active < tight.peak_active,
        "more goal room must mean fewer threads (paper: 10 < 17)"
    );
    assert!(
        out.wct >= tight.wct,
        "the looser goal should not finish before the tight one"
    );
}
