//! Observability overhead: what does the metrics hub cost the hot path?
//!
//! The instrumentation is compiled in everywhere — engine span probes,
//! pool scheduling counters, serve admission counters — so the question
//! is what a call site pays in each hub state. Two end-to-end
//! measurements over the `map_512` program (same workload and
//! lock-step feed/collect as `adapt_overhead`):
//!
//! * `map_512_stream_traced` — the monitored baseline: a
//!   `TriggerEngine` listener on a `StreamSession`, hub **disabled**
//!   (the default). Every instrumented site still runs its gate — one
//!   relaxed load and a branch, no clock reads.
//! * `map_512_stream_traced_obs_on` — the same session with the hub
//!   **enabled**: span stamps (three clock reads per submission),
//!   histogram records and counter bumps across pool and engine.
//!
//! The tracked figure is `obs_on / traced` — the full-recording tax on
//! a monitored stream, budgeted at ≤ 2% (recorded in
//! `BENCH_obs_overhead.json`). The disabled path is priced directly by
//! the `*_record_disabled` micro benches: one gated record is the
//! entire per-site cost when observability is off, and it must stay at
//! the ~1 ns scale of a predicted branch (≈0% of any real muscle).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use askel_adapt::TriggerEngine;
use askel_engine::{Engine, StreamSession};
use askel_obs::MetricsHub;
use askel_skeletons::{map, seq, Skel};

fn map_program() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.chunks(16).map(|c| c.to_vec()).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v.iter().sum::<i64>()),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

fn bench_obs_overhead(c: &mut Criterion) {
    let input: Vec<i64> = (0..512).collect();

    // Monitored baseline: trigger listener on, hub off (the default).
    {
        let engine = Engine::new(2);
        engine.pool().telemetry().set_recording(false);
        let program = map_program();
        engine.registry().add_listener(TriggerEngine::new(0.5));
        let mut stream = StreamSession::new(&engine, &program);
        c.bench_function("map_512_stream_traced", |b| {
            b.iter(|| {
                stream.feed(input.clone());
                stream.next_result().unwrap().unwrap()
            })
        });
        assert_eq!(
            engine
                .metrics_hub()
                .snapshot()
                .counter("engine_submissions_total"),
            Some(0),
            "a disabled hub must not record"
        );
        engine.shutdown();
    }

    // Same stream with the hub recording everything.
    {
        let engine = Engine::new(2);
        engine.pool().telemetry().set_recording(false);
        engine.metrics_hub().set_enabled(true);
        let program = map_program();
        engine.registry().add_listener(TriggerEngine::new(0.5));
        let mut stream = StreamSession::new(&engine, &program);
        c.bench_function("map_512_stream_traced_obs_on", |b| {
            b.iter(|| {
                stream.feed(input.clone());
                stream.next_result().unwrap().unwrap()
            })
        });
        let snap = engine.metrics_hub().snapshot();
        let spans = snap.counter("engine_submissions_total").unwrap_or(0);
        assert!(spans > 0, "an enabled hub must have recorded every span");
        println!(
            "obs: enabled run recorded {spans} spans, queue-delay p50 {}ns",
            snap.histogram("engine_queue_delay_ns")
                .map(|h| h.percentile(0.5))
                .unwrap_or(0),
        );
        engine.shutdown();
    }

    // The disabled path, priced directly: one gated record per call.
    let hub = MetricsHub::new();
    let counter = hub.counter("bench_total");
    let hist = hub.histogram("bench_ns");
    c.bench_function("counter_record_disabled", |b| {
        b.iter(|| counter.add(black_box(1)))
    });
    c.bench_function("histogram_record_disabled", |b| {
        b.iter(|| hist.record(black_box(42_000)))
    });
    hub.set_enabled(true);
    c.bench_function("counter_record_enabled", |b| {
        b.iter(|| counter.add(black_box(1)))
    });
    c.bench_function("histogram_record_enabled", |b| {
        b.iter(|| hist.record(black_box(42_000)))
    });
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
