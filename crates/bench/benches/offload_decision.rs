//! Cluster-aware rule costs: what does a safe point pay for the new
//! decision machinery when **nothing fires**?
//!
//! Three measurements, all per `TriggerEngine::plan` call (the per-item
//! safe-point cost an `AdaptiveSession` adds):
//!
//! * `offload_eval_no_fire` — one armed [`Offload`] rule over a balanced
//!   two-node cluster: a telemetry read + share comparison per safe
//!   point;
//! * `hysteresis_eval_no_fire` — one armed hysteresis-damped
//!   `RetuneGrain` whose estimate sits inside its target band: the
//!   damping state is consulted only after the band check, so the quiet
//!   path costs one estimator lookup;
//! * `forecast_gate_eval_no_fire` — one armed forecast-gated [`Promote`]
//!   whose gate is open for evaluation but whose margin never passes:
//!   this one *prices the predictive ADG* (two `predictive_wct` calls
//!   per safe point) and is the figure to watch before arming forecast
//!   gates on hot streams.
//!
//! Recorded in `BENCH_offload_decision.json` alongside
//! `BENCH_adapt_overhead.json` (which keeps the end-to-end <5% no-fire
//! budget for the classic rules).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use askel_adapt::{Hysteresis, Knob, Offload, Promote, RetuneGrain, Trigger, TriggerEngine};
use askel_dist::{Cluster, NodeSpec};
use askel_sim::workers::WorkerModel;
use askel_skeletons::{map, seq, MuscleId, MuscleRole, Skel, TimeNs};

fn fan_program() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.chunks(16).map(|c| c.to_vec()).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v.iter().sum::<i64>()),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

fn bench_offload_decision(c: &mut Criterion) {
    // Balanced cluster: the offload rule evaluates but never fires.
    {
        let mut cluster = Cluster::new(vec![
            NodeSpec::local("edge", 2),
            NodeSpec::remote("hub", 2, TimeNs::ZERO),
        ]);
        cluster.note_busy(0, TimeNs::from_secs(1));
        cluster.note_busy(2, TimeNs::from_secs(1));
        let telemetry = cluster.telemetry();
        let program = fan_program();
        let trigger = TriggerEngine::new(0.5);
        trigger.add_rule(Offload::new(&program, "hub", telemetry).water_marks(0.75, 0.25));
        let root = Arc::clone(program.node());
        c.bench_function("offload_eval_no_fire", |b| {
            b.iter(|| {
                let plans = trigger.plan(&root, 0, 2, TimeNs::ZERO);
                assert!(plans.is_empty(), "balanced cluster must not fire");
                plans.len()
            })
        });
    }

    // Hysteresis-damped grain rule, estimate inside the band: quiet.
    {
        let program = fan_program();
        let leaf = MuscleId::new(program.node().children()[0].id, MuscleRole::Execute);
        let trigger = TriggerEngine::new(0.5);
        trigger.with_estimates(|est| est.init_duration(leaf, TimeNs::from_millis(10)));
        trigger.add_rule(
            RetuneGrain::new(Knob::new("grain", 64), leaf, TimeNs::from_millis(10))
                .hysteresis(Hysteresis::new(8, 0.25)),
        );
        let root = Arc::clone(program.node());
        c.bench_function("hysteresis_eval_no_fire", |b| {
            b.iter(|| {
                let plans = trigger.plan(&root, 0, 2, TimeNs::ZERO);
                assert!(plans.is_empty(), "in-band estimate must not fire");
                plans.len()
            })
        });
    }

    // Forecast-gated promotion: the gate computes both predictive ADGs
    // every safe point, then the (impossible) margin rejects the fire.
    {
        let current = fan_program();
        let candidate = fan_program();
        let trigger = TriggerEngine::new(0.5);
        trigger.with_estimates(|est| {
            for program in [&current, &candidate] {
                for m in program.node().collect_muscles() {
                    est.init_duration(m.id, TimeNs::from_millis(1));
                    if m.id.role == MuscleRole::Split {
                        est.init_cardinality(m.id, 32.0);
                    }
                }
            }
        });
        trigger.add_rule(
            Promote::new(&current, &candidate)
                .when(Trigger::InputSizeAtLeast(1.0))
                // Identical trees: no forecast can improve by 50%.
                .forecast_gated(0.5),
        );
        trigger.observe_input_size(100);
        let root = Arc::clone(current.node());
        c.bench_function("forecast_gate_eval_no_fire", |b| {
            b.iter(|| {
                let plans = trigger.plan(&root, 0, 4, TimeNs::ZERO);
                assert!(plans.is_empty(), "identical trees must not pass the margin");
                plans.len()
            })
        });
    }
}

criterion_group!(benches, bench_offload_decision);
criterion_main!(benches);
