//! Micro-bench for the autonomic analysis pipeline: ADG construction and
//! both scheduling strategies at growing problem sizes. Substantiates the
//! paper's claim that runtime estimation (no pre-calculated estimates) is
//! affordable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use askel_core::{best_effort, limited_lp, AdgBuilder, SmTracker};
use askel_skeletons::{map, seq, MuscleId, MuscleRole, Skel, TimeNs};

/// Nested map whose predicted ADG has ≈ `card²` activities.
fn tracker_for(card: usize) -> (SmTracker, Skel<Vec<i64>, i64>) {
    let inner = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0]),
        |p: Vec<i64>| p.into_iter().sum::<i64>(),
    );
    let skel: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| vec![v],
        inner,
        |p: Vec<i64>| p.into_iter().sum::<i64>(),
    );
    let mut tracker = SmTracker::new(0.5);
    let est = tracker.estimates_mut();
    for m in skel.node().collect_muscles() {
        est.init_duration(m.id, TimeNs::from_millis(10));
        if m.id.role == MuscleRole::Split {
            est.init_cardinality(m.id, card as f64);
        }
    }
    let _ = MuscleId::new(skel.id(), MuscleRole::Split);
    (tracker, skel)
}

fn bench_adg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("adg_build_predictive");
    group.sample_size(30);
    for card in [4usize, 16, 32] {
        let (tracker, skel) = tracker_for(card);
        group.bench_with_input(BenchmarkId::new("card", card), &card, |b, _| {
            b.iter(|| AdgBuilder::new(&tracker).build_predictive(skel.node()))
        });
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategies");
    group.sample_size(30);
    for card in [4usize, 16, 32] {
        let (tracker, skel) = tracker_for(card);
        let adg = AdgBuilder::new(&tracker).build_predictive(skel.node());
        group.bench_with_input(
            BenchmarkId::new("best_effort", adg.len()),
            &adg,
            |b, adg| b.iter(|| best_effort(adg, TimeNs::ZERO)),
        );
        group.bench_with_input(
            BenchmarkId::new("limited_lp_8", adg.len()),
            &adg,
            |b, adg| b.iter(|| limited_lp(adg, TimeNs::ZERO, 8)),
        );
        let _ = card;
    }
    group.finish();
}

criterion_group!(benches, bench_adg_build, bench_strategies);
criterion_main!(benches);
