//! Micro-bench substantiating the paper's premise that event-driven
//! monitoring is cheap: skeleton execution on the threaded engine with
//! 0 / 1 / 8 listeners, plus raw registry dispatch cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use askel_engine::Engine;
use askel_events::util::CountingListener;
use askel_skeletons::{map, seq, Skel};

fn wordcountish() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.chunks(8).map(|c| c.to_vec()).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v.iter().map(|x| x * x).sum::<i64>()),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

fn bench_listener_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_event_overhead");
    group.sample_size(20);
    let input: Vec<i64> = (0..256).collect();
    for listeners in [0usize, 1, 8] {
        group.bench_with_input(
            BenchmarkId::new("listeners", listeners),
            &listeners,
            |b, &n| {
                let engine = Engine::new(2);
                engine.pool().telemetry().set_recording(false);
                for _ in 0..n {
                    engine.registry().add_listener(CountingListener::new());
                }
                let program = wordcountish();
                b.iter(|| {
                    engine
                        .submit(&program, input.clone())
                        .get()
                        .expect("run failed")
                });
                engine.shutdown();
            },
        );
    }
    group.finish();
}

fn bench_registry_dispatch(c: &mut Criterion) {
    use askel_events::{Event, EventInfo, ListenerRegistry, Payload, Trace, When, Where};
    use askel_skeletons::{InstanceId, KindTag, NodeId, TimeNs};

    let registry = ListenerRegistry::new();
    registry.add_listener(CountingListener::new());
    let event = Event {
        node: NodeId(1),
        kind: KindTag::Seq,
        when: When::Before,
        wher: Where::Skeleton,
        index: InstanceId(1),
        trace: Trace::root(NodeId(1), InstanceId(1), KindTag::Seq),
        timestamp: TimeNs::ZERO,
        info: EventInfo::None,
    };
    c.bench_function("registry_dispatch_one_listener", |b| {
        b.iter(|| registry.emit(&mut Payload::None, &event))
    });

    let empty = ListenerRegistry::new();
    c.bench_function("registry_dispatch_empty_fastpath", |b| {
        b.iter(|| empty.emit(&mut Payload::None, &event))
    });
}

criterion_group!(benches, bench_listener_counts, bench_registry_dispatch);
criterion_main!(benches);
