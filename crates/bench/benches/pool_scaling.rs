//! Pool substrate micro-bench: task dispatch throughput at several worker
//! counts and the cost of an LP resize.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use askel_pool::ResizablePool;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_dispatch_1k_tasks");
    group.sample_size(15);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let pool = ResizablePool::new(w);
            pool.telemetry().set_recording(false);
            b.iter(|| {
                let done = Arc::new(AtomicUsize::new(0));
                for _ in 0..1000 {
                    let d = Arc::clone(&done);
                    pool.submit(Box::new(move || {
                        d.fetch_add(1, Ordering::Relaxed);
                    }));
                }
                pool.wait_idle();
                assert_eq!(done.load(Ordering::Relaxed), 1000);
            });
            pool.shutdown_and_join();
        });
    }
    group.finish();
}

fn bench_resize(c: &mut Criterion) {
    c.bench_function("pool_grow_shrink_1_to_8", |b| {
        let pool = ResizablePool::new(1);
        pool.telemetry().set_recording(false);
        b.iter(|| {
            pool.set_target_workers(8);
            pool.set_target_workers(1);
        });
        pool.shutdown_and_join();
    });
}

criterion_group!(benches, bench_dispatch, bench_resize);
criterion_main!(benches);
