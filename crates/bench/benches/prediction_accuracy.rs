//! **Extension bench** — how good are the controller's completion
//! estimates? The paper claims events "greatly improve the estimation of
//! the remaining computation time"; this bench quantifies it: for every
//! analysis during the Fig. 5/6 runs, compare the predicted completion
//! time (at the then-current LP) against the run's actual finish.
//!
//! Reading the table: early cold-run predictions are poor (estimates are
//! one sample old); initialized-run predictions start accurate — which is
//! exactly why Fig. 6 adapts 1.3 s earlier.

use askel_bench::{PaperScenarios, ScenarioParams};
use askel_skeletons::TimeNs;

fn report(name: &str, out: &askel_bench::ScenarioOutcome) {
    println!("## {name}: actual finish {:.2}s", out.wct.as_secs_f64());
    println!("# t(s)\tlp\tpredicted(s)\tbest_effort(s)\terror(%)");
    for rec in &out.analysis_log {
        // Predictions are absolute completion times; so is `wct` (the run
        // started at virtual 0 for the first run of each engine).
        let predicted = rec.predicted_finish.as_secs_f64();
        let actual = out.wct.as_secs_f64();
        let err = 100.0 * (predicted - actual) / actual;
        println!(
            "{:.2}\t{}\t{:.2}\t{:.2}\t{:+.1}",
            rec.at.as_secs_f64(),
            rec.lp,
            predicted,
            rec.best_effort_finish.as_secs_f64(),
            err
        );
    }
    let last = out.analysis_log.last().expect("at least one analysis");
    let final_err =
        (last.predicted_finish.as_secs_f64() - out.wct.as_secs_f64()).abs() / out.wct.as_secs_f64();
    println!(
        "# final-analysis error: {:.1}%  (analyses: {})",
        100.0 * final_err,
        out.analysis_log.len()
    );
    assert!(
        final_err < 0.25,
        "the last prediction should be within 25% of the actual finish"
    );
}

fn main() {
    let scenarios = PaperScenarios::new(ScenarioParams::default());
    let goal = TimeNs::from_millis(9_500);
    let cold = scenarios.run(goal, None);
    report("cold run (Fig. 5)", &cold);
    let warm = scenarios.run(goal, Some(&cold.snapshot));
    report("initialized run (Fig. 6)", &warm);

    // The headline claim: with initialization, the *first* prediction is
    // already meaningful.
    let first_cold = cold.analysis_log.first().unwrap();
    let first_warm = warm.analysis_log.first().unwrap();
    println!(
        "first analysis: cold at {:.2}s vs initialized at {:.2}s",
        first_cold.at.as_secs_f64(),
        first_warm.at.as_secs_f64()
    );
    assert!(first_warm.at < first_cold.at);
}
