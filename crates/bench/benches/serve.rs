//! Serve-layer scale: ≥ 10 000 concurrent sessions over one shared pool,
//! and the batched-ingestion amortization of the per-submit floor.
//!
//! Three measurements:
//!
//! * `serve_10k_tenants_drive` — the acceptance run: 10 000 registered
//!   tenants each feed a 4-item batch onto one shared 2-worker pool
//!   (40 000 in-flight items at peak), then round-robin drain cycles run
//!   everything down. Prints throughput and p50/p95/p99 **sojourn
//!   latency** (feed → muscle execution, measured inside the muscle).
//! * `serve_feed_item_4k` / `serve_feed_batch_4k` — the same 4 096 items
//!   into one tenant, item-at-a-time (one pool transaction per item, the
//!   ~2 µs submit→future floor pinned by `seq_roundtrip_lp1`) versus one
//!   `feed_batch` call (one safe point, one pool transaction). The
//!   per-item gap is the amortization the batched path buys.
//! * `serve_sharded_drive` — the multi-threaded ingress curve: the same
//!   tenant population over a [`ShardedServe`] with `threads` ∈ {1, 2, 4}
//!   shard drivers and as many concurrent ingress threads, all on one
//!   shared pool. On real multi-core hardware the 4-thread point should
//!   clear ≥ 2× the 1-thread point; on a single-core container the curve
//!   is recorded but **provisional** (every thread timeshares one core).
//!
//! Recorded in `BENCH_serve.json`. Smoke: `CRITERION_MEASUREMENT_TIME_MS=0`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};

use askel_engine::Engine;
use askel_obs::{ChromeTrace, HistogramSnapshot, Json, MetricsSnapshot};
use askel_pool::telemetry_to_chrome;
use askel_serve::{AdmissionPolicy, ServeRegistry, ShardedServe, TenantId};
use askel_skeletons::{seq, Skel};

const TENANTS: usize = 10_000;
const ITEMS_PER_TENANT: usize = 4;
const COMPARE_ITEMS: usize = 4096;

/// The serving workload: each item carries its feed timestamp; the
/// muscle reports the sojourn so far (queue + dispatch latency).
fn probe() -> Skel<Instant, Duration> {
    seq(|fed_at: Instant| fed_at.elapsed())
}

/// One completed drive: the timing, the muscle-measured sojourns, and
/// the registry itself (kept alive so the acceptance run can check the
/// hub exporters against it).
struct Driven {
    wall: f64,
    latencies: Vec<Duration>,
    registry: ServeRegistry<Instant, Duration>,
    tenants: Vec<TenantId>,
}

/// Registers `n` tenants, feeds each a batch, and drains everything.
fn drive(engine: &Engine, n: usize, per_tenant: usize) -> Driven {
    let program = probe();
    let policy = AdmissionPolicy::default().max_in_flight(per_tenant);
    let mut registry: ServeRegistry<Instant, Duration> =
        ServeRegistry::new(engine).with_policy(policy);
    let tenants: Vec<TenantId> = (0..n).map(|_| registry.register(&program)).collect();
    let started = Instant::now();
    for &t in &tenants {
        let batch: Vec<Instant> = (0..per_tenant).map(|_| Instant::now()).collect();
        registry.feed_batch(t, batch);
    }
    registry.quiesce();
    let wall = started.elapsed().as_secs_f64();
    let mut latencies = Vec::with_capacity(n * per_tenant);
    for &t in &tenants {
        for r in registry.take_ready(t) {
            latencies.push(r.expect("no failures in the probe workload"));
        }
    }
    assert_eq!(latencies.len(), n * per_tenant, "every item completed");
    Driven {
        wall,
        latencies,
        registry,
        tenants,
    }
}

/// Feeds `items` into one tenant item-at-a-time; returns wall seconds.
fn drive_items(engine: &Engine, items: usize) -> f64 {
    let mut registry: ServeRegistry<Instant, Duration> =
        ServeRegistry::new(engine).with_policy(AdmissionPolicy::default().max_in_flight(items));
    let t = registry.register(&probe());
    let started = Instant::now();
    for _ in 0..items {
        registry.feed(t, Instant::now());
    }
    registry.quiesce();
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(registry.take_ready(t).len(), items);
    wall
}

/// Feeds `items` into one tenant as a single batch; returns wall seconds.
fn drive_batch(engine: &Engine, items: usize) -> f64 {
    let mut registry: ServeRegistry<Instant, Duration> =
        ServeRegistry::new(engine).with_policy(AdmissionPolicy::default().max_in_flight(items));
    let t = registry.register(&probe());
    let started = Instant::now();
    registry.feed_batch(t, (0..items).map(|_| Instant::now()).collect());
    registry.quiesce();
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(registry.take_ready(t).len(), items);
    wall
}

/// The multi-threaded ingress drive: `threads` shard drivers and
/// `threads` concurrent ingress threads feed `n` tenants (one batch
/// each) through a [`ShardedServe`] over the shared engine; the shard
/// drivers do all dispatching. Returns wall seconds for the whole run
/// (ingress through quiesce).
fn drive_sharded(engine: &Engine, threads: usize, n: usize, per_tenant: usize) -> f64 {
    let program = probe();
    let policy = AdmissionPolicy::default().max_in_flight(per_tenant);
    let serve: ShardedServe<Instant, Duration> = ShardedServe::new(engine, threads, policy);
    let tenants: Vec<TenantId> = (0..n).map(|_| serve.register(&program)).collect();
    let started = Instant::now();
    std::thread::scope(|s| {
        for lane in 0..threads {
            let serve = &serve;
            let tenants = &tenants;
            s.spawn(move || {
                for &t in tenants.iter().skip(lane).step_by(threads) {
                    let batch: Vec<Instant> = (0..per_tenant).map(|_| Instant::now()).collect();
                    serve.feed_batch(t, batch);
                }
            });
        }
    });
    serve.quiesce();
    let wall = started.elapsed().as_secs_f64();
    let harvested: usize = tenants.iter().map(|&t| serve.take_ready(t).len()).sum();
    assert_eq!(harvested, n * per_tenant, "every item completed");
    serve.join();
    wall
}

/// Round-trips the 10k-tenant run through all three exporters:
/// Prometheus text must scrape back the per-tenant sojourn p99 the
/// registry computed, JSON must parse back equal, and the Chrome trace
/// must load with monotonic timestamps.
fn export_roundtrip(engine: &Engine, out: &Driven) {
    let snap = out.registry.export_snapshot();
    let t = out.tenants[0];
    let tenant_hist = out
        .registry
        .tenant_sojourn(t)
        .expect("hub was on: per-tenant sojourns recorded");

    let text = snap.to_prometheus();
    let series = format!("serve_sojourn_ns{{tenant=\"{t}\",quantile=\"0.99\"}}");
    let scraped = MetricsSnapshot::scrape(&text, &series).expect("p99 series exported");
    assert_eq!(
        scraped,
        tenant_hist.percentile(0.99) as f64,
        "prometheus text must carry the registry's own p99"
    );

    let back = MetricsSnapshot::from_json(&snap.to_json()).expect("json parses back");
    assert_eq!(
        back.histogram(&format!("serve_sojourn_ns{{tenant=\"{t}\"}}")),
        Some(tenant_hist),
        "json round-trip must preserve the tenant histogram exactly"
    );
    assert_eq!(
        back.counter("serve_admit_submitted_total"),
        snap.counter("serve_admit_submitted_total"),
    );

    let mut trace = ChromeTrace::new();
    telemetry_to_chrome(&engine.pool().telemetry().samples(), &mut trace);
    let loaded = Json::parse(&trace.render()).expect("trace loads as json");
    let events = loaded
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "the run left a timeline");
    let ts: Vec<f64> = events
        .iter()
        .map(|e| e.get("ts").and_then(|t| t.as_f64()).expect("ts field"))
        .collect();
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "trace timestamps must be monotonic"
    );
    println!(
        "serve: exporters round-tripped the 10k-tenant run \
         ({} prometheus lines, {} trace events, tenant {t} p99 {:.1}us)",
        text.lines().count(),
        events.len(),
        scraped / 1e3,
    );
}

fn bench_serve(c: &mut Criterion) {
    let engine = Engine::new(2);

    // Criterion-repeatable measurements (small enough to iterate).
    c.bench_function("serve_1k_tenants_drive", |b| {
        b.iter(|| drive(&engine, 1000, ITEMS_PER_TENANT).wall)
    });
    c.bench_function("serve_feed_item_4k", |b| {
        b.iter(|| drive_items(&engine, COMPARE_ITEMS))
    });
    c.bench_function("serve_feed_batch_4k", |b| {
        b.iter(|| drive_batch(&engine, COMPARE_ITEMS))
    });
    c.bench_function("serve_sharded_drive_t4", |b| {
        b.iter(|| drive_sharded(&engine, 4, 1000, ITEMS_PER_TENANT))
    });

    // The acceptance run, printed for BENCH_serve.json — with the hub
    // on, so the exporters can be checked against a full 10k-tenant run.
    engine.metrics_hub().set_enabled(true);
    let out = drive(&engine, TENANTS, ITEMS_PER_TENANT);
    engine.metrics_hub().set_enabled(false);
    let wall = out.wall;
    let total = TENANTS * ITEMS_PER_TENANT;
    println!(
        "serve: {TENANTS} tenants x {ITEMS_PER_TENANT} items on one shared pool: \
         {total} items in {wall:.3}s = {:.0} items/sec",
        total as f64 / wall
    );
    // The percentile math is the shared obs histogram (bounded relative
    // error ≤ 1/32), not a private sort — the same shape every exporter
    // reports.
    let mut sojourn = HistogramSnapshot::new();
    for d in &out.latencies {
        sojourn.record(d.as_nanos() as u64);
    }
    println!(
        "serve: sojourn latency p50 {:.1}us p95 {:.1}us p99 {:.1}us max {:.1}us",
        sojourn.percentile(0.50) as f64 / 1e3,
        sojourn.percentile(0.95) as f64 / 1e3,
        sojourn.percentile(0.99) as f64 / 1e3,
        sojourn.max() as f64 / 1e3,
    );
    export_roundtrip(&engine, &out);
    let item_wall = drive_items(&engine, COMPARE_ITEMS);
    let batch_wall = drive_batch(&engine, COMPARE_ITEMS);
    println!(
        "serve: {COMPARE_ITEMS} items one tenant: item-at-a-time {:.2}us/item, \
         feed_batch {:.2}us/item ({:.2}x)",
        item_wall / COMPARE_ITEMS as f64 * 1e6,
        batch_wall / COMPARE_ITEMS as f64 * 1e6,
        item_wall / batch_wall,
    );

    // The sharded ingress scaling curve: the same 10k-tenant population
    // through 1, 2, and 4 shard drivers + ingress threads. Meaningful
    // only on multi-core hardware; single-core results are provisional.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t1 = drive_sharded(&engine, 1, TENANTS, ITEMS_PER_TENANT);
    let t2 = drive_sharded(&engine, 2, TENANTS, ITEMS_PER_TENANT);
    let t4 = drive_sharded(&engine, 4, TENANTS, ITEMS_PER_TENANT);
    println!(
        "serve: sharded ingress {total} items, threads 1/2/4: \
         {:.0}/{:.0}/{:.0} items/sec (t4 {:.2}x t1, {cores} core(s){})",
        total as f64 / t1,
        total as f64 / t2,
        total as f64 / t4,
        t1 / t4,
        if cores < 4 { ", provisional" } else { "" },
    );
    engine.shutdown();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
