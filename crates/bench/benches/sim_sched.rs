//! Discrete-event scheduler throughput: how fast does the event-queue
//! core drain a large cluster-scale stream?
//!
//! The acceptance figure for the scheduler rebuild: a **1 000-node**
//! (4 000-slot) cluster streaming **1 000 000** one-task items completes
//! in seconds of real time — idle nodes cost nothing, the ready/free-slot
//! structures are logarithmic, and virtual time leaps from completion to
//! completion instead of ticking.
//!
//! Two measurements, both on the same cluster:
//!
//! * `sim_sched_100k_items_1k_nodes` — the repeatable criterion
//!   measurement (100 k items per iteration);
//! * `sim_sched_1m_items_1k_nodes` — the full acceptance run (1 M items);
//!   run with `CRITERION_MEASUREMENT_TIME_MS=0` for a single iteration.
//!
//! Each run prints an `events/sec` line (scheduler events: task
//! executions + component ticks, the unit `StreamReport.events` counts).
//! Recorded in `BENCH_sim_sched.json`.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use askel_dist::{Cluster, NodeSpec};
use askel_sim::cost::TableCost;
use askel_sim::SimEngine;
use askel_skeletons::{seq, Skel, TimeNs};

const NODES: usize = 1000;
const SLOTS_PER_NODE: usize = 4;
const WINDOW: usize = NODES * SLOTS_PER_NODE;

fn thousand_node_sim() -> SimEngine {
    let nodes = (0..NODES)
        .map(|k| NodeSpec::local(format!("n{k}"), SLOTS_PER_NODE))
        .collect();
    SimEngine::with_workers(
        Box::new(Cluster::new(nodes)),
        Arc::new(TableCost::new(TimeNs::from_millis(1))),
    )
}

/// Streams `items` one-muscle tasks through the 1k-node cluster and
/// returns `(scheduler events, wall seconds)`.
fn drain(items: usize) -> (u64, f64) {
    let program: Skel<u64, u64> = seq(|x: u64| x + 1);
    let mut sim = thousand_node_sim();
    let started = Instant::now();
    let mut produced = 0usize;
    let mut finished = 0usize;
    let report = sim.run_stream(
        WINDOW,
        |_| {
            if produced == items {
                return None;
            }
            produced += 1;
            Some((program.clone(), produced as u64))
        },
        |_, r| {
            r.expect("no failures in the throughput stream");
            finished += 1;
        },
        &mut [],
    );
    let wall = started.elapsed().as_secs_f64();
    assert_eq!(finished, items, "every item must complete");
    assert_eq!(report.items, items);
    (report.events, wall)
}

fn bench_sim_sched(c: &mut Criterion) {
    c.bench_function("sim_sched_100k_items_1k_nodes", |b| {
        b.iter(|| drain(100_000).0)
    });
    c.bench_function("sim_sched_1m_items_1k_nodes", |b| {
        b.iter(|| drain(1_000_000).0)
    });

    // The acceptance figure, printed for BENCH_sim_sched.json.
    for items in [100_000usize, 1_000_000] {
        let (events, wall) = drain(items);
        println!(
            "sim_sched: {items} items / {NODES} nodes ({WINDOW} slots): \
             {events} events in {wall:.3}s = {:.0} events/sec",
            events as f64 / wall
        );
    }
}

criterion_group!(benches, bench_sim_sched);
criterion_main!(benches);
