//! Calibration probe: runs the three §5 scenarios and prints the headline
//! numbers next to the paper's, for eyeballing during development.

use askel_bench::{PaperScenarios, ScenarioParams};
use askel_skeletons::TimeNs;

fn main() {
    let scenarios = PaperScenarios::new(ScenarioParams::default());
    let seq = scenarios.sequential_wct();
    println!("sequential WCT: {:.2}s (paper: 12.5s)", seq.as_secs_f64());

    let goal95 = TimeNs::from_millis(9_500);
    let goal105 = TimeNs::from_millis(10_500);

    let s1 = scenarios.run(goal95, None);
    println!(
        "S1 no-init goal 9.5s : wct {:.2}s peak_active {} peak_lp {} first_decision {:?} decisions {}",
        s1.wct.as_secs_f64(),
        s1.peak_active,
        s1.peak_lp_target(),
        s1.first_decision_at.map(|t| t.as_secs_f64()),
        s1.decisions.len()
    );
    println!("    (paper: wct 9.3s, peak 17, first analysis at 7.6s)");

    println!("S1 snapshot: {}", s1.snapshot.to_json());

    let s2 = scenarios.run(goal95, Some(&s1.snapshot));
    println!(
        "S2 init    goal 9.5s : wct {:.2}s peak_active {} peak_lp {} first_decision {:?} decisions {}",
        s2.wct.as_secs_f64(),
        s2.peak_active,
        s2.peak_lp_target(),
        s2.first_decision_at.map(|t| t.as_secs_f64()),
        s2.decisions.len()
    );
    println!("    (paper: wct 8.4s, peak 19, adapts at 6.4s)");

    let s3 = scenarios.run(goal105, None);
    println!(
        "S3 no-init goal 10.5s: wct {:.2}s peak_active {} peak_lp {} first_decision {:?} decisions {}",
        s3.wct.as_secs_f64(),
        s3.peak_active,
        s3.peak_lp_target(),
        s3.first_decision_at.map(|t| t.as_secs_f64()),
        s3.decisions.len()
    );
    println!("    (paper: wct 10.6s, peak 10, adapts at 8.7s)");

    for (name, s) in [("S1", &s1), ("S2", &s2), ("S3", &s3)] {
        println!("\n{name} decisions:");
        for d in &s.decisions {
            println!(
                "  t={:>6.2}s {:>2} -> {:>2} ({:?}, predicted {:.2}s)",
                d.at.as_secs_f64(),
                d.from_lp,
                d.to_lp,
                d.reason,
                d.predicted_wct.as_secs_f64()
            );
        }
    }
}
