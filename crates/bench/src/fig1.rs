//! The paper's worked example (Figs. 1–2) as a reusable fixture: the
//! nested map `map(fs, map(fs, seq(fe), fm), fm)` with estimates
//! `t(fs)=10, t(fe)=15, t(fm)=5, |fs|=3`, executed with LP 2 and
//! snapshotted at WCT 70.

use askel_core::SmTracker;
use askel_events::{Event, EventInfo, Trace, When, Where};
use askel_skeletons::{map, seq, InstanceId, KindTag, MuscleId, MuscleRole, NodeId, Skel, TimeNs};

/// Seconds in the worked example's abstract time unit.
pub fn sec(units: u64) -> TimeNs {
    TimeNs::from_secs(units)
}

/// The worked-example skeleton plus its node identities.
pub struct Fig1Fixture {
    /// `map(fs, map(fs, seq(fe), fm), fm)`.
    pub skel: Skel<Vec<i64>, i64>,
    /// Outer map node.
    pub outer: NodeId,
    /// Inner map node.
    pub inner: NodeId,
    /// Leaf `seq` node.
    pub leaf: NodeId,
}

impl Fig1Fixture {
    /// Builds the skeleton.
    pub fn new() -> Self {
        let inner = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0]),
            |p: Vec<i64>| p.into_iter().sum::<i64>(),
        );
        let inner_id = inner.id();
        let leaf_id = inner.node().children()[0].id;
        let skel = map(
            |v: Vec<i64>| vec![v.clone(), v.clone(), v],
            inner,
            |p: Vec<i64>| p.into_iter().sum::<i64>(),
        );
        let outer_id = skel.id();
        Fig1Fixture {
            skel,
            outer: outer_id,
            inner: inner_id,
            leaf: leaf_id,
        }
    }

    /// A tracker holding the paper's WCT-70 execution state with the
    /// paper's estimates initialized.
    pub fn tracker_at_70(&self) -> SmTracker {
        let mut tracker = SmTracker::new(0.5);
        {
            let est = tracker.estimates_mut();
            for node in [self.outer, self.inner] {
                est.init_duration(MuscleId::new(node, MuscleRole::Split), sec(10));
                est.init_duration(MuscleId::new(node, MuscleRole::Merge), sec(5));
                est.init_cardinality(MuscleId::new(node, MuscleRole::Split), 3.0);
            }
            est.init_duration(MuscleId::new(self.leaf, MuscleRole::Execute), sec(15));
        }
        self.feed_history(|e| tracker.observe(&e));
        tracker
    }

    /// Feeds the WCT-70 event history (LP 2) into `sink`:
    /// root split \[0,10\]·card 3; inner splits A,B \[10,20\]·card 3;
    /// six fe's two-at-a-time over \[20,65\]; A's merge \[65,70\]; C's
    /// split running from 65.
    pub fn feed_history(&self, mut sink: impl FnMut(Event)) {
        const O: u64 = 9_000_100;
        const A: u64 = 9_000_101;
        const B: u64 = 9_000_102;
        const C: u64 = 9_000_103;
        let root_trace = |inst: u64| Trace::root(self.outer, InstanceId(inst), KindTag::Map);
        let inner_trace = |root: u64, inst: u64| {
            root_trace(root).child(self.inner, InstanceId(inst), KindTag::Map)
        };
        let leaf_trace = |root: u64, parent: u64, inst: u64| {
            inner_trace(root, parent).child(self.leaf, InstanceId(inst), KindTag::Seq)
        };
        let ev = |node: NodeId,
                  kind: KindTag,
                  when: When,
                  wher: Where,
                  inst: u64,
                  trace: Trace,
                  at: TimeNs,
                  info: EventInfo| Event {
            node,
            kind,
            when,
            wher,
            index: InstanceId(inst),
            trace,
            timestamp: at,
            info,
        };

        sink(ev(
            self.outer,
            KindTag::Map,
            When::Before,
            Where::Skeleton,
            O,
            root_trace(O),
            sec(0),
            EventInfo::None,
        ));
        sink(ev(
            self.outer,
            KindTag::Map,
            When::Before,
            Where::Split,
            O,
            root_trace(O),
            sec(0),
            EventInfo::None,
        ));
        sink(ev(
            self.outer,
            KindTag::Map,
            When::After,
            Where::Split,
            O,
            root_trace(O),
            sec(10),
            EventInfo::SplitCardinality(3),
        ));
        for inst in [A, B] {
            sink(ev(
                self.inner,
                KindTag::Map,
                When::Before,
                Where::Skeleton,
                inst,
                inner_trace(O, inst),
                sec(10),
                EventInfo::None,
            ));
            sink(ev(
                self.inner,
                KindTag::Map,
                When::Before,
                Where::Split,
                inst,
                inner_trace(O, inst),
                sec(10),
                EventInfo::None,
            ));
            sink(ev(
                self.inner,
                KindTag::Map,
                When::After,
                Where::Split,
                inst,
                inner_trace(O, inst),
                sec(20),
                EventInfo::SplitCardinality(3),
            ));
        }
        for (k, (start, end)) in [(20u64, 35u64), (35, 50), (50, 65)].iter().enumerate() {
            for (parent, leaf_inst) in [(A, 9_000_110 + k as u64), (B, 9_000_120 + k as u64)] {
                let tr = leaf_trace(O, parent, leaf_inst);
                sink(ev(
                    self.leaf,
                    KindTag::Seq,
                    When::Before,
                    Where::Skeleton,
                    leaf_inst,
                    tr.clone(),
                    sec(*start),
                    EventInfo::None,
                ));
                sink(ev(
                    self.leaf,
                    KindTag::Seq,
                    When::After,
                    Where::Skeleton,
                    leaf_inst,
                    tr,
                    sec(*end),
                    EventInfo::None,
                ));
            }
        }
        sink(ev(
            self.inner,
            KindTag::Map,
            When::Before,
            Where::Merge,
            A,
            inner_trace(O, A),
            sec(65),
            EventInfo::None,
        ));
        sink(ev(
            self.inner,
            KindTag::Map,
            When::After,
            Where::Merge,
            A,
            inner_trace(O, A),
            sec(70),
            EventInfo::None,
        ));
        sink(ev(
            self.inner,
            KindTag::Map,
            When::After,
            Where::Skeleton,
            A,
            inner_trace(O, A),
            sec(70),
            EventInfo::None,
        ));
        sink(ev(
            self.inner,
            KindTag::Map,
            When::Before,
            Where::Skeleton,
            C,
            inner_trace(O, C),
            sec(65),
            EventInfo::None,
        ));
        sink(ev(
            self.inner,
            KindTag::Map,
            When::Before,
            Where::Split,
            C,
            inner_trace(O, C),
            sec(65),
            EventInfo::None,
        ));
    }
}

impl Default for Fig1Fixture {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_core::{best_effort, limited_lp, AdgBuilder};

    #[test]
    fn fixture_reproduces_the_paper_numbers() {
        let f = Fig1Fixture::new();
        let tracker = f.tracker_at_70();
        let adg = AdgBuilder::new(&tracker).build(f.skel.node());
        assert_eq!(best_effort(&adg, sec(70)).finish, sec(100));
        assert_eq!(limited_lp(&adg, sec(70), 2).finish, sec(115));
    }
}
