//! Shared harness for the figure-regeneration benches.
//!
//! [`scenario`] wires the paper's §5 evaluation together: the word-count
//! program over the synthetic tweet corpus, the Xeon-like cost model, the
//! simulator, and the autonomic controller. Each `fig*` bench target and
//! the end-to-end tests drive it with the paper's parameters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig1;
pub mod scenario;
pub mod series;

pub use fig1::Fig1Fixture;
pub use scenario::{PaperScenarios, ScenarioOutcome, ScenarioParams};
