//! End-to-end reproduction of the paper's §5 evaluation scenarios.
//!
//! The testbed: word count over 1.2 M tweets modelled as
//! `map(fs, map(fs, seq(fe), fm), fm)` on a 12-core / 24-thread Xeon,
//! Skandium v1.1b1. Reported scalars: sequential WCT 12.5 s; first split
//! 6.4 s (single-threaded I/O); inner splits ≈ 7× faster; `fe`/`fm` ≈
//! 0.04 s each.
//!
//! Our substrate is the deterministic simulator (this host has one core;
//! DESIGN.md §4): virtual costs are calibrated to those scalars — outer
//! split 6.4 s exactly (a single sequential file read), inner splits
//! 6.4/7 ≈ 0.914 s with ±5 % jitter (equal chunk sizes), `fe` 0.04 s with
//! ±60 % jitter (the paper: "in practice some execution muscles took less
//! time than others"), `fm` 0.04 s with ±25 % jitter. Outer cardinality 5,
//! inner 7 ⇒ sequential WCT ≈ 6.4 + 5×0.914 + 35×0.04 + 6×0.04 ≈ 12.6 s,
//! matching the paper's 12.5 s.

use std::sync::Arc;

use askel_core::{AutonomicController, ControllerConfig, Decision, FnActuator, Snapshot};
use askel_pool::TimelinePoint;
use askel_sim::cost::{CostModel, JitterCost, MuscleCall, PerMuscleCost, TableCost};
use askel_sim::SimEngine;
use askel_skeletons::{MuscleRole, TimeNs};
use askel_workloads::tweets::{generate_corpus, TweetGenConfig};
use askel_workloads::wordcount::{Counts, WordCountProgram};

/// Workload parameters (defaults = the paper's §5 setup).
#[derive(Clone, Debug)]
pub struct ScenarioParams {
    /// Outer split cardinality.
    pub outer_chunks: usize,
    /// Inner split cardinality.
    pub inner_chunks: usize,
    /// Outer split cost (the paper's 6.4 s file read).
    pub outer_split_cost: TimeNs,
    /// Inner split cost (≈ 7× faster).
    pub inner_split_cost: TimeNs,
    /// `fe` cost.
    pub execute_cost: TimeNs,
    /// `fm` cost (both levels).
    pub merge_cost: TimeNs,
    /// Jitter amplitude on inner splits (equal chunk sizes ⇒ near-uniform).
    pub split_jitter: f64,
    /// Jitter amplitude on `fe` (token distribution varies per sub-chunk;
    /// the paper: "in practice some execution muscles took less time").
    pub execute_jitter: f64,
    /// Jitter amplitude on merges.
    pub merge_jitter: f64,
    /// Jitter / corpus seed.
    pub seed: u64,
    /// Synthetic corpus size (data flow only; costs are virtual).
    pub tweets: usize,
    /// Max LP (the Xeon's 24 hardware threads).
    pub max_lp: usize,
    /// Initial LP.
    pub initial_lp: usize,
    /// Decrease cooldown ("does not reduce the LP as fast as it
    /// increases it").
    pub decrease_cooldown: TimeNs,
    /// Minimum spacing between controller analyses (keeps same-instant
    /// event bursts from ramping the LP several times at once).
    pub min_analysis_interval: TimeNs,
    /// Raise headroom (the paper's controller over-provisions; see
    /// [`askel_core::ControllerConfig::raise_headroom`]).
    pub raise_headroom: f64,
    /// Decrease safety margin (fraction of the goal).
    pub decrease_safety: f64,
    /// Raise policy (the paper's controller jumps straight to its target;
    /// `Doubling` is the rate-limited ablation).
    pub raise_policy: askel_core::RaisePolicy,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            outer_chunks: 5,
            inner_chunks: 7,
            outer_split_cost: TimeNs::from_millis(6_400),
            inner_split_cost: TimeNs::from_micros(914_286),
            execute_cost: TimeNs::from_millis(40),
            merge_cost: TimeNs::from_millis(40),
            split_jitter: 0.05,
            execute_jitter: 0.6,
            merge_jitter: 0.25,
            seed: 20130725,
            tweets: 2_000,
            max_lp: 24,
            initial_lp: 1,
            decrease_cooldown: TimeNs::from_millis(1_000),
            min_analysis_interval: TimeNs::ZERO,
            raise_headroom: 2.0,
            decrease_safety: 0.1,
            raise_policy: askel_core::RaisePolicy::Unbounded,
        }
    }
}

/// Everything one scenario run reports.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Wall-clock time of the run (virtual).
    pub wct: TimeNs,
    /// Peak number of simultaneously active activities (the paper's
    /// "maximum number of active threads").
    pub peak_active: usize,
    /// LP target when the run finished.
    pub final_lp: usize,
    /// When the controller first changed the LP.
    pub first_decision_at: Option<TimeNs>,
    /// The full decision log.
    pub decisions: Vec<Decision>,
    /// Active-activity step function (Figs. 5–7's series).
    pub active_timeline: Vec<TimelinePoint>,
    /// LP-target step function.
    pub lp_timeline: Vec<TimelinePoint>,
    /// Final estimator snapshot (feeds the "with initialization" run).
    pub snapshot: Snapshot,
    /// Distinct tokens counted (sanity: the work really ran).
    pub distinct_tokens: usize,
    /// Every analysis with its predictions (accuracy studies).
    pub analysis_log: Vec<askel_core::AnalysisRecord>,
}

impl ScenarioOutcome {
    /// Highest LP target the controller requested.
    pub fn peak_lp_target(&self) -> usize {
        self.lp_timeline.iter().map(|p| p.active).max().unwrap_or(0)
    }
}

/// The §5 testbed: program + corpus + cost model, reusable across runs so
/// snapshots stay meaningful (node identities are per-program).
pub struct PaperScenarios {
    /// Workload parameters.
    pub params: ScenarioParams,
    /// The word-count program (stable node ids across runs).
    pub program: WordCountProgram,
    corpus: Vec<String>,
    cost: Arc<dyn CostModel>,
    expected: Counts,
}

impl PaperScenarios {
    /// Builds the testbed.
    pub fn new(params: ScenarioParams) -> Self {
        let program = WordCountProgram::new(params.outer_chunks, params.inner_chunks);
        let corpus = generate_corpus(&TweetGenConfig {
            tweets: params.tweets,
            seed: params.seed,
            ..Default::default()
        });
        let expected = askel_workloads::wordcount::count_tokens(&corpus);

        let mut table = TableCost::new(params.execute_cost);
        table.set(
            program.muscle(program.outer, MuscleRole::Split),
            params.outer_split_cost,
        );
        table.set(
            program.muscle(program.inner, MuscleRole::Split),
            params.inner_split_cost,
        );
        table.set(
            program.muscle(program.leaf, MuscleRole::Execute),
            params.execute_cost,
        );
        table.set(
            program.muscle(program.outer, MuscleRole::Merge),
            params.merge_cost,
        );
        table.set(
            program.muscle(program.inner, MuscleRole::Merge),
            params.merge_cost,
        );
        // Per-muscle jitter; the outer split (a single sequential file
        // read, quoted as exactly 6.4 s) stays deterministic.
        let cost = PerMuscleCost::new(Arc::new(JitterCost::new(
            table.clone(),
            params.execute_jitter,
            params.seed,
        )))
        .route(
            program.muscle(program.outer, MuscleRole::Split),
            Arc::new(table.clone()),
        )
        .route(
            program.muscle(program.inner, MuscleRole::Split),
            Arc::new(JitterCost::new(
                table.clone(),
                params.split_jitter,
                params.seed,
            )),
        )
        .route(
            program.muscle(program.outer, MuscleRole::Merge),
            Arc::new(JitterCost::new(
                table.clone(),
                params.merge_jitter,
                params.seed,
            )),
        )
        .route(
            program.muscle(program.inner, MuscleRole::Merge),
            Arc::new(JitterCost::new(
                table.clone(),
                params.merge_jitter,
                params.seed,
            )),
        );
        PaperScenarios {
            params,
            program,
            corpus,
            cost: Arc::new(cost),
            expected,
        }
    }

    /// The synthetic corpus (cloned; runs consume their input).
    pub fn corpus_clone(&self) -> Vec<String> {
        self.corpus.clone()
    }

    /// The calibrated cost model (shared; ablations build their own sims).
    pub fn cost_model(&self) -> Arc<dyn CostModel> {
        Arc::clone(&self.cost)
    }

    /// The expected word count (for ablations asserting correctness).
    pub fn expected_counts(&self) -> &Counts {
        &self.expected
    }

    /// The sequential baseline: LP 1, no controller. The paper's 12.5 s.
    pub fn sequential_wct(&self) -> TimeNs {
        let mut sim = SimEngine::new(1, Arc::clone(&self.cost));
        let out = sim
            .run(&self.program.skel, self.corpus.clone())
            .expect("sequential baseline run failed");
        assert_eq!(out.result, self.expected, "word count must be correct");
        out.wct
    }

    /// One autonomic run: WCT goal `goal`, estimators optionally
    /// initialized from `init`.
    pub fn run(&self, goal: TimeNs, init: Option<&Snapshot>) -> ScenarioOutcome {
        let mut sim = SimEngine::new(self.params.initial_lp, Arc::clone(&self.cost));
        let lp_control = sim.lp_control();
        let mut config = ControllerConfig::new(goal, self.params.max_lp)
            .initial_lp(self.params.initial_lp)
            .decrease_cooldown(self.params.decrease_cooldown)
            .min_analysis_interval(self.params.min_analysis_interval)
            .raise_headroom(self.params.raise_headroom)
            .decrease_safety(self.params.decrease_safety)
            .raise(self.params.raise_policy);
        for (m, canonical) in self.program.shared_muscle_aliases() {
            config = config.alias(m, canonical);
        }
        let controller = AutonomicController::new(
            self.program.skel.node().clone(),
            config,
            Arc::new(FnActuator(move |lp| lp_control.request(lp))),
        );
        if let Some(snapshot) = init {
            controller.init_estimates(snapshot);
        }
        sim.registry().add_listener(controller.clone());

        let out = sim
            .run(&self.program.skel, self.corpus.clone())
            .expect("scenario run failed");
        assert_eq!(out.result, self.expected, "word count must be correct");

        let decisions = controller.decisions();
        ScenarioOutcome {
            wct: out.wct,
            peak_active: sim.telemetry().peak_active(),
            final_lp: sim.lp(),
            first_decision_at: decisions.first().map(|d| d.at),
            decisions,
            active_timeline: sim.telemetry().active_timeline(),
            lp_timeline: sim.telemetry().target_timeline(),
            snapshot: controller.snapshot(),
            distinct_tokens: out.result.len(),
            analysis_log: controller.analysis_log(),
        }
    }
}

/// Convenience: `PaperScenarios` with the default (paper) parameters.
impl Default for PaperScenarios {
    fn default() -> Self {
        PaperScenarios::new(ScenarioParams::default())
    }
}

/// A raw-cost probe used by unit tests: total sequential work implied by
/// the cost table (without jitter).
pub fn nominal_sequential_work(params: &ScenarioParams) -> TimeNs {
    let splits = params.outer_split_cost.0 + params.outer_chunks as u64 * params.inner_split_cost.0;
    let executes = (params.outer_chunks * params.inner_chunks) as u64 * params.execute_cost.0;
    let merges = (params.outer_chunks as u64 + 1) * params.merge_cost.0;
    TimeNs(splits + executes + merges)
}

#[allow(dead_code)]
fn silence_unused(call: &MuscleCall<'_>) -> usize {
    call.items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_work_matches_the_papers_12_5_seconds() {
        let w = nominal_sequential_work(&ScenarioParams::default());
        let secs = w.as_secs_f64();
        assert!(
            (12.0..13.2).contains(&secs),
            "nominal sequential work {secs:.2}s should be ≈12.5s"
        );
    }
}
