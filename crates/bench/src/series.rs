//! Plain-text and JSON rendering of timeline series for the figure
//! benches: each bench prints the same rows the paper plots.

use askel_pool::TimelinePoint;
use askel_skeletons::TimeNs;

/// Renders a step function as `ms<TAB>value` rows (the paper's Figs. 5–7
//  axes: wall-clock time in ms vs number of active threads).
pub fn render_rows(points: &[TimelinePoint]) -> String {
    let mut out = String::new();
    for p in points {
        out.push_str(&format!("{:.0}\t{}\n", p.at.as_millis_f64(), p.active));
    }
    out
}

/// Renders a step function as a JSON array of `[ms, value]` pairs.
pub fn render_json(points: &[TimelinePoint]) -> String {
    use askel_core::json::Json;
    Json::Arr(
        points
            .iter()
            .map(|p| {
                Json::Arr(vec![
                    Json::Num(p.at.as_millis_f64()),
                    Json::Num(p.active as f64),
                ])
            })
            .collect(),
    )
    .render()
}

/// A fixed-width ASCII sketch of the series (handy in terminals).
pub fn render_ascii(points: &[TimelinePoint], end: TimeNs, width: usize, height: usize) -> String {
    if points.is_empty() || end == TimeNs::ZERO {
        return String::new();
    }
    let max_v = points.iter().map(|p| p.active).max().unwrap_or(1).max(1);
    let sample = |t: TimeNs| -> usize {
        let mut v = 0;
        for p in points {
            if p.at <= t {
                v = p.active;
            } else {
                break;
            }
        }
        v
    };
    let mut grid = vec![vec![' '; width]; height];
    for (x, cell) in (0..width).zip(0..width) {
        let t = TimeNs((end.0 as f64 * (cell as f64 + 0.5) / width as f64) as u64);
        let v = sample(t);
        let y = ((v as f64 / max_v as f64) * (height as f64 - 1.0)).round() as usize;
        for (row, line) in grid.iter_mut().enumerate() {
            let from_bottom = height - 1 - row;
            if from_bottom <= y && v > 0 {
                line[x] = if from_bottom == y { '▒' } else { '░' };
            }
        }
        let _ = x;
    }
    let mut out = String::new();
    for (row, line) in grid.iter().enumerate() {
        let from_bottom = height - 1 - row;
        let label = if from_bottom == height - 1 {
            format!("{max_v:>4} |")
        } else if from_bottom == 0 {
            "   0 |".to_string()
        } else {
            "     |".to_string()
        };
        out.push_str(&label);
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "      0{}{}ms\n",
        " ".repeat(width.saturating_sub(10)),
        end.as_millis_f64() as u64
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<TimelinePoint> {
        vec![
            TimelinePoint {
                at: TimeNs::ZERO,
                active: 0,
            },
            TimelinePoint {
                at: TimeNs::from_millis(10),
                active: 2,
            },
            TimelinePoint {
                at: TimeNs::from_millis(20),
                active: 0,
            },
        ]
    }

    #[test]
    fn rows_are_tab_separated() {
        let s = render_rows(&pts());
        assert_eq!(s, "0\t0\n10\t2\n20\t0\n");
    }

    #[test]
    fn json_round_trips() {
        let s = render_json(&pts());
        let doc = askel_core::json::Json::parse(&s).unwrap();
        let v: Vec<(f64, usize)> = doc
            .as_array()
            .unwrap()
            .iter()
            .map(|pair| {
                let pair = pair.as_array().unwrap();
                (
                    pair[0].as_f64().unwrap(),
                    pair[1].as_f64().unwrap() as usize,
                )
            })
            .collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[1], (10.0, 2));
    }

    #[test]
    fn ascii_has_requested_dimensions() {
        let art = render_ascii(&pts(), TimeNs::from_millis(20), 40, 5);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 6); // height + axis
        assert!(art.contains('▒'));
    }

    #[test]
    fn ascii_of_empty_series_is_empty() {
        assert_eq!(render_ascii(&[], TimeNs::ZERO, 10, 3), "");
    }
}
