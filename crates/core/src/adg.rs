//! The Activity Dependency Graph (ADG) of Fig. 1.
//!
//! An ADG snapshots one skeleton execution at analysis time `now`: each
//! **activity** is a muscle execution — already finished (actual start and
//! end), currently running (actual start, estimated end), or predicted
//! (estimated duration, dependencies from the skeleton structure). The
//! predicted part is expanded from the AST using the estimator table:
//! an unexecuted `map` contributes a split, `round(|fs|)` child subtrees
//! and a merge; a half-done `while` contributes its remaining estimated
//! iterations; a `d&C` expands its estimated recursion tree to the
//! estimated depth, and so on.
//!
//! Scheduling strategies (`crate::strategy`) then lay the ADG on a
//! timeline; the controller compares the resulting completion times with
//! the WCT goal.
//!
//! Design notes beyond the paper:
//! * `if` is supported by predicting the *more expensive* branch while the
//!   verdict is unknown (conservative WCT; the paper left `if` unsupported
//!   because naive support duplicates the graph);
//! * `fork` is supported using its statically-known branch count (the
//!   paper's objection was state-machine non-determinism, which our
//!   per-instance records avoid).

use std::sync::Arc;

use askel_skeletons::{KindTag, MuscleId, MuscleRole, Node, NodeKind, TimeNs};

use crate::estimate::EstimatorTable;
use crate::tracker::{InstanceRecord, SmTracker};

/// Execution state of one activity at analysis time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActState {
    /// Finished: actual start and end.
    Done {
        /// Actual start time.
        start: TimeNs,
        /// Actual end time.
        end: TimeNs,
    },
    /// Started but not finished; its end is estimated as
    /// `max(start + est, now)` (the paper's past-clamp).
    Running {
        /// Actual start time.
        start: TimeNs,
    },
    /// Not started; both start and end are up to the strategy.
    Pending,
}

/// One node of the ADG: a (possibly predicted) muscle execution.
#[derive(Clone, Debug)]
pub struct Activity {
    /// The muscle this activity executes.
    pub muscle: MuscleId,
    /// Execution state.
    pub state: ActState,
    /// Estimated duration `t(m)` (for `Done`, the actual duration).
    pub est: TimeNs,
    /// Indices of activities that must finish before this one starts.
    /// Builder invariant: every predecessor index is smaller than the
    /// activity's own index, so index order is a topological order.
    pub preds: Vec<usize>,
}

/// The Activity Dependency Graph.
#[derive(Clone, Debug, Default)]
pub struct Adg {
    /// Activities in topological (insertion) order.
    pub activities: Vec<Activity>,
}

impl Adg {
    /// Number of activities.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// `true` if the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// Count of activities in each state: `(done, running, pending)`.
    pub fn state_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for a in &self.activities {
            match a.state {
                ActState::Done { .. } => c.0 += 1,
                ActState::Running { .. } => c.1 += 1,
                ActState::Pending => c.2 += 1,
            }
        }
        c
    }

    fn push(&mut self, a: Activity) -> usize {
        debug_assert!(
            a.preds.iter().all(|&p| p < self.activities.len()),
            "ADG builder broke the topological invariant"
        );
        self.activities.push(a);
        self.activities.len() - 1
    }
}

/// Builds ADGs from tracker state + estimator table + AST.
pub struct AdgBuilder<'a> {
    tracker: &'a SmTracker,
    est: &'a EstimatorTable,
    adg: Adg,
}

impl<'a> AdgBuilder<'a> {
    /// A builder over the tracker's live state and its estimator table.
    pub fn new(tracker: &'a SmTracker) -> Self {
        AdgBuilder {
            tracker,
            est: tracker.estimates(),
            adg: Adg::default(),
        }
    }

    /// Builds the ADG of the tracker's current root submission executing
    /// `ast`. Returns an empty graph when no submission is live.
    ///
    /// Estimates must cover every muscle of `ast`
    /// ([`EstimatorTable::covers`]); missing estimates fall back to zero
    /// duration / cardinality 1, which the controller's analysis gate
    /// prevents from ever being used for decisions.
    pub fn build(mut self, ast: &Arc<Node>) -> Adg {
        if let Some(root) = self.tracker.current_root() {
            if root.node == ast.id {
                self.instance_exits(root, ast, Vec::new());
                return self.adg;
            }
        }
        self.adg
    }

    /// Builds a purely predictive ADG (no execution started yet): the
    /// graph a cold analysis would use if estimates were initialized.
    pub fn build_predictive(mut self, ast: &Arc<Node>) -> Adg {
        self.node_exits(ast, Vec::new(), None);
        self.adg
    }

    // ---- estimates ---------------------------------------------------

    fn dur(&self, node: &Node, role: MuscleRole) -> TimeNs {
        self.est
            .duration(MuscleId::new(node.id, role))
            .unwrap_or(TimeNs::ZERO)
    }

    fn card(&self, node: &Node, role: MuscleRole, min: usize) -> usize {
        self.est
            .cardinality_rounded(MuscleId::new(node.id, role), min)
            .unwrap_or(min.max(1))
    }

    /// Estimated depth of a `d&C` recursion (≥ 1).
    fn dc_depth(&self, node: &Node) -> usize {
        self.card(node, MuscleRole::Condition, 1)
    }

    // ---- activity helpers ---------------------------------------------

    fn push_span(
        &mut self,
        node: &Node,
        role: MuscleRole,
        span: Option<crate::tracker::Span>,
        fallback_start: TimeNs,
        preds: Vec<usize>,
    ) -> usize {
        let muscle = MuscleId::new(node.id, role);
        let est = self.dur(node, role);
        let (state, est) = match span {
            Some(s) => match s.finished {
                Some(end) => (
                    ActState::Done {
                        start: s.started,
                        end,
                    },
                    end.saturating_sub(s.started),
                ),
                None => (ActState::Running { start: s.started }, est),
            },
            None => {
                let _ = fallback_start;
                (ActState::Pending, est)
            }
        };
        self.adg.push(Activity {
            muscle,
            state,
            est,
            preds,
        })
    }

    fn push_pending(&mut self, node: &Node, role: MuscleRole, preds: Vec<usize>) -> usize {
        let muscle = MuscleId::new(node.id, role);
        let est = self.dur(node, role);
        self.adg.push(Activity {
            muscle,
            state: ActState::Pending,
            est,
            preds,
        })
    }

    // ---- actual (record-driven) expansion ------------------------------

    /// Appends the activities of a live instance; returns the exit set.
    fn instance_exits(
        &mut self,
        rec: &InstanceRecord,
        node: &Arc<Node>,
        preds: Vec<usize>,
    ) -> Vec<usize> {
        debug_assert_eq!(rec.node, node.id, "record/AST mismatch");
        match (&node.kind, rec.kind) {
            (NodeKind::Seq { .. }, KindTag::Seq) => {
                let span = Some(crate::tracker::Span {
                    started: rec.started,
                    finished: rec.finished,
                });
                vec![self.push_span(node, MuscleRole::Execute, span, rec.started, preds)]
            }
            (NodeKind::Farm { inner }, KindTag::Farm) => {
                self.chain_children(rec, std::slice::from_ref(inner), preds, 1)
            }
            (NodeKind::Pipe { stages }, KindTag::Pipe) => {
                self.chain_children(rec, stages, preds, stages.len())
            }
            (NodeKind::For { n, inner }, KindTag::For) => {
                self.chain_children(rec, std::slice::from_ref(inner), preds, *n)
            }
            (NodeKind::While { inner, .. }, KindTag::While) => {
                self.while_exits(rec, node, inner, preds)
            }
            (
                NodeKind::If {
                    then_branch,
                    else_branch,
                    ..
                },
                KindTag::If,
            ) => self.if_exits(rec, node, then_branch, else_branch, preds),
            (NodeKind::Map { inner, .. }, KindTag::Map) => {
                self.fan_exits(rec, node, FanChildren::Uniform(inner), preds)
            }
            (NodeKind::Fork { inners, .. }, KindTag::Fork) => {
                self.fan_exits(rec, node, FanChildren::PerBranch(inners), preds)
            }
            (NodeKind::DivideConquer { .. }, KindTag::DivideConquer) => {
                self.dac_exits(rec, node, preds)
            }
            _ => {
                debug_assert!(false, "record kind does not match AST node kind");
                preds
            }
        }
    }

    /// farm/pipe/for: children run sequentially; no own muscles.
    fn chain_children(
        &mut self,
        rec: &InstanceRecord,
        stages: &[Arc<Node>],
        preds: Vec<usize>,
        total: usize,
    ) -> Vec<usize> {
        let mut preds = preds;
        for k in 0..total {
            // Pipe stages differ per k; farm/for repeat one inner.
            let stage = if stages.len() == total {
                &stages[k]
            } else {
                &stages[0]
            };
            preds = match rec.children.get(k) {
                Some(cid) => match self.tracker.instance(*cid) {
                    Some(child) => self.instance_exits(child, stage, preds),
                    None => self.node_exits(stage, preds, None),
                },
                None => self.node_exits(stage, preds, None),
            };
        }
        preds
    }

    fn while_exits(
        &mut self,
        rec: &InstanceRecord,
        node: &Arc<Node>,
        inner: &Arc<Node>,
        preds: Vec<usize>,
    ) -> Vec<usize> {
        let mut preds = preds;
        // Actual history: cond_0, body_0, cond_1, body_1, …
        let mut bodies = 0usize;
        for (k, cond) in rec.conds.iter().enumerate() {
            let idx = self.push_span(
                node,
                MuscleRole::Condition,
                Some(cond.span),
                rec.started,
                preds.clone(),
            );
            preds = vec![idx];
            match cond.verdict {
                Some(true) => {
                    // The k-th body follows this cond.
                    preds = match rec.children.get(k) {
                        Some(cid) => match self.tracker.instance(*cid) {
                            Some(child) => self.instance_exits(child, inner, preds),
                            None => self.node_exits(inner, preds, None),
                        },
                        None => self.node_exits(inner, preds, None),
                    };
                    bodies += 1;
                }
                Some(false) => return preds, // loop exited
                None => return preds,        // cond still running: unknown rest
            }
        }
        if rec.is_finished() {
            return preds;
        }
        // Predict the remaining iterations.
        let est_trues = self
            .est
            .cardinality(MuscleId::new(node.id, MuscleRole::Condition))
            .map(|v| v.round().max(0.0) as usize)
            .unwrap_or(0);
        let remaining = est_trues.saturating_sub(bodies);
        for _ in 0..remaining {
            let idx = self.push_pending(node, MuscleRole::Condition, preds);
            preds = self.node_exits(inner, vec![idx], None);
        }
        // The final (false) evaluation.
        vec![self.push_pending(node, MuscleRole::Condition, preds)]
    }

    fn if_exits(
        &mut self,
        rec: &InstanceRecord,
        node: &Arc<Node>,
        then_branch: &Arc<Node>,
        else_branch: &Arc<Node>,
        preds: Vec<usize>,
    ) -> Vec<usize> {
        let cond = rec.conds.first();
        let idx = self.push_span(
            node,
            MuscleRole::Condition,
            cond.map(|c| c.span),
            rec.started,
            preds,
        );
        let preds = vec![idx];
        match cond.and_then(|c| c.verdict) {
            Some(verdict) => {
                let branch = if verdict { then_branch } else { else_branch };
                match rec.children.first().and_then(|c| self.tracker.instance(*c)) {
                    Some(child) => self.instance_exits(child, branch, preds),
                    None => self.node_exits(branch, preds, None),
                }
            }
            None => {
                // Verdict unknown: predict the more expensive branch.
                let branch = self.pick_heavier_branch(then_branch, else_branch);
                self.node_exits(branch, preds, None)
            }
        }
    }

    fn fan_exits(
        &mut self,
        rec: &InstanceRecord,
        node: &Arc<Node>,
        children: FanChildren<'_>,
        preds: Vec<usize>,
    ) -> Vec<usize> {
        let split_idx = self.push_span(node, MuscleRole::Split, rec.split, rec.started, preds);
        let expected = match rec.split_card {
            Some(card) => card,
            None => match children {
                FanChildren::Uniform(_) => self.card(node, MuscleRole::Split, 1),
                FanChildren::PerBranch(inners) => inners.len(),
            },
        };
        // Children may *arrive* in any order (the LIFO runtime starts the
        // last-pushed child first), so records are matched to branch ASTs
        // by node identity, consuming each record once.
        let mut used = vec![false; rec.children.len()];
        let mut child_exits = Vec::new();
        for k in 0..expected {
            let child_ast = match children {
                FanChildren::Uniform(inner) => inner,
                FanChildren::PerBranch(inners) => &inners[k.min(inners.len() - 1)],
            };
            let record = rec
                .children
                .iter()
                .enumerate()
                .filter(|(i, _)| !used[*i])
                .filter_map(|(i, cid)| self.tracker.instance(*cid).map(|r| (i, r)))
                .find(|(_, r)| r.node == child_ast.id);
            let exits = match record {
                Some((i, child)) => {
                    used[i] = true;
                    let child = child.clone();
                    self.instance_exits(&child, child_ast, vec![split_idx])
                }
                None => self.node_exits(child_ast, vec![split_idx], None),
            };
            child_exits.extend(exits);
        }
        if child_exits.is_empty() {
            child_exits.push(split_idx);
        }
        let merge_idx =
            self.push_span(node, MuscleRole::Merge, rec.merge, rec.started, child_exits);
        vec![merge_idx]
    }

    fn dac_exits(
        &mut self,
        rec: &InstanceRecord,
        node: &Arc<Node>,
        preds: Vec<usize>,
    ) -> Vec<usize> {
        let (inner,) = match &node.kind {
            NodeKind::DivideConquer { inner, .. } => (inner,),
            _ => unreachable!("dac_exits on a non-d&C node"),
        };
        let cond = rec.conds.first();
        let cond_idx = self.push_span(
            node,
            MuscleRole::Condition,
            cond.map(|c| c.span),
            rec.started,
            preds,
        );
        let preds = vec![cond_idx];
        let est_depth = self.dc_depth(node);
        match cond.and_then(|c| c.verdict) {
            Some(true) => {
                let split_idx =
                    self.push_span(node, MuscleRole::Split, rec.split, rec.started, preds);
                let expected = rec
                    .split_card
                    .unwrap_or_else(|| self.card(node, MuscleRole::Split, 1));
                let mut child_exits = Vec::new();
                for k in 0..expected {
                    let exits = match rec.children.get(k).and_then(|c| self.tracker.instance(*c)) {
                        Some(child) => self.instance_exits(child, node, vec![split_idx]),
                        None => {
                            // A child sits one level deeper: it divides
                            // only while est_depth still exceeds its own
                            // depth (rec.dc_depth + 1).
                            let depth_left = est_depth.saturating_sub(rec.dc_depth + 1);
                            self.dac_predict(node, vec![split_idx], depth_left)
                        }
                    };
                    child_exits.extend(exits);
                }
                if child_exits.is_empty() {
                    child_exits.push(split_idx);
                }
                vec![self.push_span(node, MuscleRole::Merge, rec.merge, rec.started, child_exits)]
            }
            Some(false) => match rec.children.first().and_then(|c| self.tracker.instance(*c)) {
                Some(child) => self.instance_exits(child, inner, preds),
                None => self.node_exits(inner, preds, None),
            },
            None => {
                // Verdict unknown: predict by remaining estimated depth.
                let depth_left = est_depth.saturating_sub(rec.dc_depth);
                if depth_left >= 1 {
                    let split_idx = self.push_pending(node, MuscleRole::Split, preds);
                    let fan = self.card(node, MuscleRole::Split, 1);
                    let mut child_exits = Vec::new();
                    for _ in 0..fan {
                        child_exits.extend(self.dac_predict(node, vec![split_idx], depth_left - 1));
                    }
                    vec![self.push_pending(node, MuscleRole::Merge, child_exits)]
                } else {
                    self.node_exits(inner, preds, None)
                }
            }
        }
    }

    // ---- predictive (AST-driven) expansion ------------------------------

    /// Appends the predicted activities of an unexecuted subtree.
    /// `dc_depth_left` carries the remaining recursion budget when the
    /// subtree is a `d&C` child of itself.
    fn node_exits(
        &mut self,
        node: &Arc<Node>,
        preds: Vec<usize>,
        dc_depth_left: Option<usize>,
    ) -> Vec<usize> {
        match &node.kind {
            NodeKind::Seq { .. } => {
                vec![self.push_pending(node, MuscleRole::Execute, preds)]
            }
            NodeKind::Farm { inner } => self.node_exits(inner, preds, None),
            NodeKind::Pipe { stages } => {
                let mut preds = preds;
                for s in stages {
                    preds = self.node_exits(s, preds, None);
                }
                preds
            }
            NodeKind::For { n, inner } => {
                let mut preds = preds;
                for _ in 0..*n {
                    preds = self.node_exits(inner, preds, None);
                }
                preds
            }
            NodeKind::While { inner, .. } => {
                let iters = self
                    .est
                    .cardinality(MuscleId::new(node.id, MuscleRole::Condition))
                    .map(|v| v.round().max(0.0) as usize)
                    .unwrap_or(0);
                let mut preds = preds;
                for _ in 0..iters {
                    let idx = self.push_pending(node, MuscleRole::Condition, preds);
                    preds = self.node_exits(inner, vec![idx], None);
                }
                vec![self.push_pending(node, MuscleRole::Condition, preds)]
            }
            NodeKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                let idx = self.push_pending(node, MuscleRole::Condition, preds);
                let branch = self.pick_heavier_branch(then_branch, else_branch);
                self.node_exits(branch, vec![idx], None)
            }
            NodeKind::Map { inner, .. } => {
                let split_idx = self.push_pending(node, MuscleRole::Split, preds);
                let fan = self.card(node, MuscleRole::Split, 1);
                let mut child_exits = Vec::new();
                for _ in 0..fan {
                    child_exits.extend(self.node_exits(inner, vec![split_idx], None));
                }
                vec![self.push_pending(node, MuscleRole::Merge, child_exits)]
            }
            NodeKind::Fork { inners, .. } => {
                let split_idx = self.push_pending(node, MuscleRole::Split, preds);
                let mut child_exits = Vec::new();
                for inner in inners {
                    child_exits.extend(self.node_exits(inner, vec![split_idx], None));
                }
                vec![self.push_pending(node, MuscleRole::Merge, child_exits)]
            }
            NodeKind::DivideConquer { .. } => {
                let depth_left = dc_depth_left.unwrap_or_else(|| self.dc_depth(node) - 1);
                let cond_idx = self.push_pending(node, MuscleRole::Condition, preds);
                if depth_left >= 1 {
                    let split_idx = self.push_pending(node, MuscleRole::Split, vec![cond_idx]);
                    let fan = self.card(node, MuscleRole::Split, 1);
                    let mut child_exits = Vec::new();
                    for _ in 0..fan {
                        child_exits.extend(self.dac_predict(node, vec![split_idx], depth_left - 1));
                    }
                    vec![self.push_pending(node, MuscleRole::Merge, child_exits)]
                } else {
                    let NodeKind::DivideConquer { inner, .. } = &node.kind else {
                        unreachable!()
                    };
                    self.node_exits(inner, vec![cond_idx], None)
                }
            }
        }
    }

    /// Predicts one `d&C` recursion subtree: a cond, then — depth budget
    /// permitting — split, `|fs|` recursive subtrees, merge; otherwise the
    /// base skeleton.
    fn dac_predict(
        &mut self,
        node: &Arc<Node>,
        preds: Vec<usize>,
        depth_left: usize,
    ) -> Vec<usize> {
        self.node_exits(node, preds, Some(depth_left))
    }

    /// Rough sequential-work comparison used to pick the `if` branch to
    /// predict while the verdict is unknown (conservative choice).
    fn pick_heavier_branch<'b>(
        &self,
        then_branch: &'b Arc<Node>,
        else_branch: &'b Arc<Node>,
    ) -> &'b Arc<Node> {
        if self.seq_work(then_branch, 0) >= self.seq_work(else_branch, 0) {
            then_branch
        } else {
            else_branch
        }
    }

    /// Total estimated sequential work of a subtree (sum of all predicted
    /// activity durations).
    fn seq_work(&self, node: &Arc<Node>, depth_guard: usize) -> f64 {
        if depth_guard > 64 {
            return 0.0; // runaway recursion guard for degenerate estimates
        }
        let d = |role: MuscleRole| self.dur(node, role).0 as f64;
        match &node.kind {
            NodeKind::Seq { .. } => d(MuscleRole::Execute),
            NodeKind::Farm { inner } => self.seq_work(inner, depth_guard + 1),
            NodeKind::Pipe { stages } => stages
                .iter()
                .map(|s| self.seq_work(s, depth_guard + 1))
                .sum(),
            NodeKind::For { n, inner } => *n as f64 * self.seq_work(inner, depth_guard + 1),
            NodeKind::While { inner, .. } => {
                let iters = self
                    .est
                    .cardinality(MuscleId::new(node.id, MuscleRole::Condition))
                    .unwrap_or(0.0)
                    .max(0.0);
                (iters + 1.0) * d(MuscleRole::Condition)
                    + iters * self.seq_work(inner, depth_guard + 1)
            }
            NodeKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                d(MuscleRole::Condition)
                    + self
                        .seq_work(then_branch, depth_guard + 1)
                        .max(self.seq_work(else_branch, depth_guard + 1))
            }
            NodeKind::Map { inner, .. } => {
                let fan = self.card(node, MuscleRole::Split, 1) as f64;
                d(MuscleRole::Split)
                    + fan * self.seq_work(inner, depth_guard + 1)
                    + d(MuscleRole::Merge)
            }
            NodeKind::Fork { inners, .. } => {
                d(MuscleRole::Split)
                    + inners
                        .iter()
                        .map(|i| self.seq_work(i, depth_guard + 1))
                        .sum::<f64>()
                    + d(MuscleRole::Merge)
            }
            NodeKind::DivideConquer { inner, .. } => {
                let depth = self.dc_depth(node) as f64;
                let fan = self.card(node, MuscleRole::Split, 1) as f64;
                // Geometric expansion of the estimated recursion tree.
                let leaves = fan.powf((depth - 1.0).max(0.0));
                let internal = if fan > 1.0 {
                    (leaves - 1.0) / (fan - 1.0)
                } else {
                    (depth - 1.0).max(0.0)
                };
                internal * (d(MuscleRole::Condition) + d(MuscleRole::Split) + d(MuscleRole::Merge))
                    + leaves * (d(MuscleRole::Condition) + self.seq_work(inner, depth_guard + 1))
            }
        }
    }
}

enum FanChildren<'b> {
    Uniform(&'b Arc<Node>),
    PerBranch(&'b [Arc<Node>]),
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::{map, seq, Skel};

    fn nested_map() -> Skel<Vec<i64>, i64> {
        let inner = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0]),
            |p: Vec<i64>| p.into_iter().sum::<i64>(),
        );
        map(
            |v: Vec<i64>| vec![v.clone(), v],
            inner,
            |p: Vec<i64>| p.into_iter().sum::<i64>(),
        )
    }

    fn init_estimates(t: &mut SmTracker, skel: &Skel<Vec<i64>, i64>, card: f64) {
        let node = skel.node().clone();
        let est = t.estimates_mut();
        for m in node.collect_muscles() {
            let d = match m.id.role {
                MuscleRole::Split => TimeNs(10),
                MuscleRole::Execute => TimeNs(15),
                MuscleRole::Merge => TimeNs(5),
                MuscleRole::Condition => TimeNs(1),
            };
            est.init_duration(m.id, d);
            if m.id.role == MuscleRole::Split {
                est.init_cardinality(m.id, card);
            }
        }
    }

    #[test]
    fn predictive_nested_map_has_paper_shape() {
        // map(fs, map(fs, seq(fe), fm), fm) with |fs| = 3:
        // 1 split + 3×(split + 3×fe + merge) + 1 merge = 17 activities.
        let skel = nested_map();
        let mut tracker = SmTracker::new(0.5);
        init_estimates(&mut tracker, &skel, 3.0);
        let adg = AdgBuilder::new(&tracker).build_predictive(skel.node());
        assert_eq!(adg.len(), 1 + 3 * (1 + 3 + 1) + 1);
        let (done, running, pending) = adg.state_counts();
        assert_eq!((done, running), (0, 0));
        assert_eq!(pending, adg.len());
        // Topological invariant.
        for (i, a) in adg.activities.iter().enumerate() {
            assert!(a.preds.iter().all(|&p| p < i));
        }
        // Final merge depends on the three inner merges.
        let last = adg.activities.last().unwrap();
        assert_eq!(last.muscle.role, MuscleRole::Merge);
        assert_eq!(last.preds.len(), 3);
    }

    #[test]
    fn empty_without_live_submission() {
        let skel = nested_map();
        let tracker = SmTracker::new(0.5);
        let adg = AdgBuilder::new(&tracker).build(skel.node());
        assert!(adg.is_empty());
    }

    #[test]
    fn cardinality_fallback_is_one() {
        // No estimates at all → every split predicts one child.
        let skel = nested_map();
        let tracker = SmTracker::new(0.5);
        let adg = AdgBuilder::new(&tracker).build_predictive(skel.node());
        // 1 split + 1×(1 split + 1 fe + 1 merge) + 1 merge = 5
        assert_eq!(adg.len(), 5);
    }
}
