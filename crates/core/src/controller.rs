//! The autonomic controller: guarantees a Wall-Clock-Time (WCT) QoS goal
//! by self-optimizing the Level of Parallelism (LP) of a running skeleton.
//!
//! The controller is *just an event listener* (the paper's separation of
//! concerns): register it on an engine's `ListenerRegistry` and hand it an
//! [`LpActuator`] for that engine. On every `After` event it
//!
//! 1. feeds the event through the state machines ([`SmTracker`]),
//! 2. once every muscle has an estimate (the analysis gate), builds the
//!    ADG and runs the scheduling strategies,
//! 3. decides:
//!    * **raise** — if the limited-LP completion estimate misses the
//!      deadline, set LP to the *smallest* value that meets it (binary
//!      search over the limited-LP estimator, valid under the paper's
//!      monotonic-speedup assumption), capped by the optimal LP and
//!      `max_lp`; if no value meets it, jump to the cap (best possible);
//!    * **halve** — if the goal would still be met with half the threads,
//!      halve (the paper decreases conservatively because computing the
//!      minimal LP exactly is NP-complete);
//!    * otherwise leave LP alone.
//!
//! Every decision is recorded with its inputs so tests and benches can
//! audit the control loop.

use std::sync::Arc;

use parking_lot::Mutex;

use askel_events::{Event, Listener, Payload, When, Where};
use askel_skeletons::{MuscleDescriptor, Node, TimeNs};

use crate::adg::AdgBuilder;
use crate::estimate::{EstimatorTable, Snapshot};
use crate::strategy::{best_effort, limited_lp};
use crate::tracker::SmTracker;

/// Something that can change an engine's level of parallelism.
///
/// The threaded engine's pool and the simulator's LP handle both adapt to
/// this trait through [`FnActuator`]; the controller stays engine-agnostic
/// (the paper's platform-independence claim, made concrete).
pub trait LpActuator: Send + Sync {
    /// Requests that the engine's LP become `lp`.
    fn set_lp(&self, lp: usize);
}

/// Adapter: any `Fn(usize)` is an actuator.
pub struct FnActuator<F>(pub F);

impl<F> LpActuator for FnActuator<F>
where
    F: Fn(usize) + Send + Sync,
{
    fn set_lp(&self, lp: usize) {
        (self.0)(lp)
    }
}

/// How aggressively may the controller *raise* the LP per analysis?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaisePolicy {
    /// Jump straight to the computed target (ablation; reacts fastest but
    /// lets one early analysis with immature estimates lock in a high LP).
    Unbounded,
    /// At most `2·current + 1` per analysis (default): LP 1 may reach 3 in
    /// one step — the paper's Fig. 5 "increments to 3 threads" — and the
    /// ramp then doubles per analysis. Mirrors the progressive ramp-up
    /// visible in the paper's Figs. 5–7: analyses are frequent, so a
    /// justified raise still completes within a few events, but a single
    /// wild estimate cannot overshoot.
    Doubling,
}

/// When may the controller *lower* the LP?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecreasePolicy {
    /// The paper's rule: halve when the goal is safe at half the threads.
    Halve,
    /// Never decrease (ablation).
    Never,
    /// Decrease to the minimal sufficient LP (greedy search; ablation —
    /// more reactive than the paper, at the cost of more analysis work
    /// and oscillation risk).
    ToMinimal,
}

/// Controller configuration.
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// The WCT goal, measured from each submission's start.
    pub wct_goal: TimeNs,
    /// Upper bound for the LP (the paper's overload guard).
    pub max_lp: usize,
    /// Lower bound for the LP (≥ 1 keeps the engine live).
    pub min_lp: usize,
    /// The estimators' ρ.
    pub rho: f64,
    /// The LP the engine starts with (the controller's initial belief).
    pub initial_lp: usize,
    /// Decrease policy.
    pub decrease: DecreasePolicy,
    /// Raise policy.
    pub raise: RaisePolicy,
    /// Multiplies the computed raise target (≥ 1.0). The paper's controller
    /// visibly over-provisions relative to the minimal sufficient LP
    /// (§5: 8 threads at 6.4 s where ~4 would do; ramps to 17) and prefers
    /// finishing early over missing the goal on immature estimates; 1.0 is
    /// the exact-minimal policy.
    pub raise_headroom: f64,
    /// A decrease requires the predicted WCT to meet the goal with this
    /// margin (fraction of the goal). Models the paper's conservative
    /// decrease ("does not reduce the LP as fast as it increases it");
    /// 0.0 is the pure halving rule.
    pub decrease_safety: f64,
    /// Minimum time between two *decreases* ("Skandium does not reduce
    /// the LP as fast as it increases it", §4/§5).
    pub decrease_cooldown: TimeNs,
    /// Minimum virtual/real time between two analyses (0 = analyze on
    /// every `After` event).
    pub min_analysis_interval: TimeNs,
    /// When `true`, events only feed the state machines; analyses run
    /// exclusively through
    /// [`AutonomicController::force_analyze`] (snapshot studies, benches).
    pub manual_analysis: bool,
    /// Estimator aliases (shared muscle objects, Skandium-style): each
    /// `(muscle, canonical)` pair makes `muscle` share `canonical`'s
    /// estimators. Applied at construction and re-applied after
    /// [`AutonomicController::init_estimates`].
    pub aliases: Vec<(askel_skeletons::MuscleId, askel_skeletons::MuscleId)>,
}

impl ControllerConfig {
    /// A config with the paper's defaults: `min_lp` 1, ρ 0.5, initial LP 1,
    /// halving decrease, no analysis throttling.
    pub fn new(wct_goal: TimeNs, max_lp: usize) -> Self {
        ControllerConfig {
            wct_goal,
            max_lp: max_lp.max(1),
            min_lp: 1,
            rho: 0.5,
            initial_lp: 1,
            decrease: DecreasePolicy::Halve,
            raise: RaisePolicy::Doubling,
            raise_headroom: 1.0,
            decrease_safety: 0.0,
            decrease_cooldown: TimeNs::ZERO,
            min_analysis_interval: TimeNs::ZERO,
            manual_analysis: false,
            aliases: Vec::new(),
        }
    }

    /// Sets the initial LP belief.
    pub fn initial_lp(mut self, lp: usize) -> Self {
        self.initial_lp = lp.max(1);
        self
    }

    /// Sets ρ.
    pub fn rho(mut self, rho: f64) -> Self {
        self.rho = rho.clamp(0.0, 1.0);
        self
    }

    /// Sets the decrease policy.
    pub fn decrease(mut self, policy: DecreasePolicy) -> Self {
        self.decrease = policy;
        self
    }

    /// Sets the analysis throttle.
    pub fn min_analysis_interval(mut self, interval: TimeNs) -> Self {
        self.min_analysis_interval = interval;
        self
    }

    /// Disables automatic analysis (see
    /// [`ControllerConfig::manual_analysis`]).
    pub fn manual_analysis(mut self, manual: bool) -> Self {
        self.manual_analysis = manual;
        self
    }

    /// Sets the raise policy.
    pub fn raise(mut self, policy: RaisePolicy) -> Self {
        self.raise = policy;
        self
    }

    /// Sets the raise headroom factor (clamped to ≥ 1.0).
    pub fn raise_headroom(mut self, factor: f64) -> Self {
        self.raise_headroom = factor.max(1.0);
        self
    }

    /// Sets the decrease safety margin (fraction of the goal, ≥ 0).
    pub fn decrease_safety(mut self, margin: f64) -> Self {
        self.decrease_safety = margin.max(0.0);
        self
    }

    /// Sets the decrease cooldown.
    pub fn decrease_cooldown(mut self, cooldown: TimeNs) -> Self {
        self.decrease_cooldown = cooldown;
        self
    }

    /// Declares shared-muscle estimator aliases.
    pub fn alias(
        mut self,
        muscle: askel_skeletons::MuscleId,
        canonical: askel_skeletons::MuscleId,
    ) -> Self {
        self.aliases.push((muscle, canonical));
        self
    }
}

/// Why the controller changed the LP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionReason {
    /// Raised to the minimal LP whose limited-LP estimate meets the goal.
    RaiseToMeetGoal,
    /// Goal unreachable even at the cap; raised to the best possible LP.
    RaiseBestPossible,
    /// Goal safe at half the threads; halved.
    Decrease,
}

/// One audited LP change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// When the decision was taken.
    pub at: TimeNs,
    /// LP before.
    pub from_lp: usize,
    /// LP after.
    pub to_lp: usize,
    /// Why.
    pub reason: DecisionReason,
    /// The limited-LP completion estimate at `to_lp` when deciding.
    pub predicted_wct: TimeNs,
}

/// One analysis, recorded for prediction-accuracy studies: compare
/// `predicted_finish` (at the then-current LP) against the run's actual
/// completion time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisRecord {
    /// When the analysis ran.
    pub at: TimeNs,
    /// The LP the prediction assumed.
    pub lp: usize,
    /// The limited-LP completion estimate at that LP.
    pub predicted_finish: TimeNs,
    /// The best-effort (infinite-LP) completion estimate.
    pub best_effort_finish: TimeNs,
}

struct Inner {
    tracker: SmTracker,
    current_lp: usize,
    deadline: Option<TimeNs>,
    last_analysis: Option<TimeNs>,
    last_decrease: Option<TimeNs>,
    decisions: Vec<Decision>,
    analysis_log: Vec<AnalysisRecord>,
    analyses: usize,
}

/// The autonomic controller. See the module docs.
pub struct AutonomicController {
    ast: Arc<Node>,
    muscles: Vec<MuscleDescriptor>,
    config: ControllerConfig,
    actuator: Arc<dyn LpActuator>,
    inner: Mutex<Inner>,
}

impl AutonomicController {
    /// A controller for submissions of the skeleton rooted at `ast`,
    /// driving `actuator`.
    pub fn new(
        ast: Arc<Node>,
        config: ControllerConfig,
        actuator: Arc<dyn LpActuator>,
    ) -> Arc<Self> {
        let muscles = ast.collect_muscles();
        let initial_lp = config.initial_lp;
        let mut tracker = SmTracker::new(config.rho);
        for (m, canonical) in &config.aliases {
            tracker.estimates_mut().set_alias(*m, *canonical);
        }
        Arc::new(AutonomicController {
            ast,
            muscles,
            config: config.clone(),
            actuator,
            inner: Mutex::new(Inner {
                tracker,
                current_lp: initial_lp,
                deadline: None,
                last_analysis: None,
                last_decrease: None,
                decisions: Vec::new(),
                analysis_log: Vec::new(),
                analyses: 0,
            }),
        })
    }

    /// Initializes the estimators from a previous run's snapshot (the
    /// paper's "Goal with initialization" scenario). Configured aliases
    /// are re-applied to the fresh table.
    pub fn init_estimates(&self, snapshot: &Snapshot) {
        let mut inner = self.inner.lock();
        let mut table = EstimatorTable::from_snapshot(snapshot);
        for (m, canonical) in &self.config.aliases {
            table.set_alias(*m, *canonical);
        }
        *inner.tracker.estimates_mut() = table;
    }

    /// Initializes the estimators programmatically.
    pub fn with_estimates(&self, f: impl FnOnce(&mut EstimatorTable)) {
        let mut inner = self.inner.lock();
        f(inner.tracker.estimates_mut());
    }

    /// Drops estimator history for muscles of the `removed` nodes — the
    /// controller↔trigger feedback loop on structural rewrites: when a
    /// reconfiguration (`askel-adapt`) replaces a subtree, the replaced
    /// nodes' history must not keep steering this controller's ADG
    /// forecasts toward a tree that no longer exists. Returns the number
    /// of positional entries dropped (see
    /// [`EstimatorTable::invalidate_nodes`]).
    pub fn invalidate_estimates_for(&self, removed: &[askel_skeletons::NodeId]) -> usize {
        let mut inner = self.inner.lock();
        inner.tracker.estimates_mut().invalidate_nodes(removed)
    }

    /// Snapshot of the current estimates (feed it to the next run).
    pub fn snapshot(&self) -> Snapshot {
        self.inner.lock().tracker.estimates().snapshot()
    }

    /// Read access to the live estimator table, for other autonomic layers
    /// that want to share this controller's statistics (the
    /// self-configuration runtime in `askel-adapt` seeds its trigger
    /// estimates from here). The table lock is held for the duration of
    /// `f`; keep it short.
    pub fn read_estimates<T>(&self, f: impl FnOnce(&EstimatorTable) -> T) -> T {
        let inner = self.inner.lock();
        f(inner.tracker.estimates())
    }

    /// Forecasts the WCT of one fresh submission of the skeleton rooted
    /// at `root` under `lp` workers, from this controller's **live**
    /// estimator table ([`crate::strategy::predictive_wct`] over
    /// [`read_estimates`](Self::read_estimates)).
    ///
    /// `root` need not be this controller's own AST: the
    /// self-configuration layer passes candidate *rewritten* trees here
    /// to gate promotions on forecast improvement. `None` while the
    /// table does not cover `root`'s muscles.
    pub fn forecast_wct(&self, root: &Arc<Node>, lp: usize) -> Option<TimeNs> {
        let inner = self.inner.lock();
        crate::strategy::predictive_wct(inner.tracker.estimates(), root, lp)
    }

    /// The LP the controller believes the engine has.
    pub fn current_lp(&self) -> usize {
        self.inner.lock().current_lp
    }

    /// Every decision taken so far.
    pub fn decisions(&self) -> Vec<Decision> {
        self.inner.lock().decisions.clone()
    }

    /// How many full analyses ran.
    pub fn analyses(&self) -> usize {
        self.inner.lock().analyses
    }

    /// Every analysis with its completion predictions (accuracy studies:
    /// compare against the run's actual finish time).
    pub fn analysis_log(&self) -> Vec<AnalysisRecord> {
        self.inner.lock().analysis_log.clone()
    }

    /// The config.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Forces an analysis at `now` (tests and benches).
    pub fn force_analyze(&self, now: TimeNs) {
        let mut inner = self.inner.lock();
        self.analyze(&mut inner, now, true);
    }

    fn analyze(&self, inner: &mut Inner, now: TimeNs, forced: bool) {
        let Some(deadline) = inner.deadline else {
            return;
        };
        if !forced {
            if let Some(last) = inner.last_analysis {
                if self.config.min_analysis_interval > TimeNs::ZERO
                    && now < last + self.config.min_analysis_interval
                {
                    return;
                }
            }
        }
        // Analysis gate: every muscle estimated at least once (§4).
        if !inner.tracker.estimates().covers(&self.muscles) {
            return;
        }
        let root_live = inner
            .tracker
            .current_root()
            .map(|r| !r.is_finished())
            .unwrap_or(false);
        if !root_live {
            return;
        }
        inner.last_analysis = Some(now);
        inner.analyses += 1;

        let adg = AdgBuilder::new(&inner.tracker).build(&self.ast);
        if adg.is_empty() {
            return;
        }
        let cur = inner.current_lp;
        let cur_finish = limited_lp(&adg, now, cur).finish;
        inner.analysis_log.push(AnalysisRecord {
            at: now,
            lp: cur,
            predicted_finish: cur_finish,
            best_effort_finish: best_effort(&adg, now).finish,
        });

        if cur_finish > deadline {
            // Self-configuration: more threads.
            let be = best_effort(&adg, now);
            let opt = be.max_concurrency_from(now).max(self.config.min_lp);
            let cap = opt.min(self.config.max_lp);
            if cap <= cur {
                return; // nothing a raise could do
            }
            let cap_finish = limited_lp(&adg, now, cap).finish;
            // Minimal LP achieving `target_finish`, by binary search (WCT
            // is non-increasing in LP under the paper's assumption).
            let minimal_for = |target_finish: TimeNs| -> usize {
                let mut lo = cur + 1;
                let mut hi = cap;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if limited_lp(&adg, now, mid).finish <= target_finish {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            };
            let (target, reason) = if cap_finish <= deadline {
                (minimal_for(deadline), DecisionReason::RaiseToMeetGoal)
            } else {
                // Goal unreachable even at the cap: the smallest LP that
                // achieves the best possible completion.
                (minimal_for(cap_finish), DecisionReason::RaiseBestPossible)
            };
            let target = ((target as f64 * self.config.raise_headroom).round() as usize).min(cap);
            let to_lp = match self.config.raise {
                RaisePolicy::Unbounded => target,
                RaisePolicy::Doubling => target.min(cur * 2 + 1),
            };
            let predicted = limited_lp(&adg, now, to_lp).finish;
            self.apply(inner, now, to_lp, reason, predicted);
        } else {
            // Self-optimization: fewer threads when safe.
            if let Some(last) = inner.last_decrease {
                if self.config.decrease_cooldown > TimeNs::ZERO
                    && now < last + self.config.decrease_cooldown
                {
                    return;
                }
            }
            // A decrease must keep the goal safe with margin.
            let margin = TimeNs::from_secs_f64(
                self.config.wct_goal.as_secs_f64() * self.config.decrease_safety,
            );
            let safe_deadline = deadline.saturating_sub(margin);
            match self.config.decrease {
                DecreasePolicy::Never => {}
                DecreasePolicy::Halve => {
                    let half = (cur / 2).max(self.config.min_lp);
                    if half < cur {
                        let predicted = limited_lp(&adg, now, half).finish;
                        if predicted <= safe_deadline {
                            self.apply(inner, now, half, DecisionReason::Decrease, predicted);
                        }
                    }
                }
                DecreasePolicy::ToMinimal => {
                    let mut lo = self.config.min_lp;
                    let mut hi = cur;
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        if limited_lp(&adg, now, mid).finish <= safe_deadline {
                            hi = mid;
                        } else {
                            lo = mid + 1;
                        }
                    }
                    if lo < cur {
                        let predicted = limited_lp(&adg, now, lo).finish;
                        self.apply(inner, now, lo, DecisionReason::Decrease, predicted);
                    }
                }
            }
        }
    }

    fn apply(
        &self,
        inner: &mut Inner,
        now: TimeNs,
        to_lp: usize,
        reason: DecisionReason,
        predicted_wct: TimeNs,
    ) {
        let from_lp = inner.current_lp;
        if to_lp == from_lp {
            return;
        }
        if to_lp < from_lp {
            inner.last_decrease = Some(now);
        }
        inner.current_lp = to_lp;
        inner.decisions.push(Decision {
            at: now,
            from_lp,
            to_lp,
            reason,
            predicted_wct,
        });
        self.actuator.set_lp(to_lp);
    }
}

impl Listener for AutonomicController {
    fn on_event(&self, _payload: &mut Payload<'_>, event: &Event) {
        let mut inner = self.inner.lock();
        // A new submission of our skeleton starts its WCT window.
        if event.node == self.ast.id
            && event.when == When::Before
            && event.wher == Where::Skeleton
            && event.trace.depth() == 1
        {
            inner.tracker.prune_finished();
            inner.deadline = Some(event.timestamp + self.config.wct_goal);
        }
        inner.tracker.observe(event);
        // Estimates only change on After events; analyze there.
        if event.when == When::After && !self.config.manual_analysis {
            self.analyze(&mut inner, event.timestamp, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fn_actuator_forwards() {
        let v = Arc::new(AtomicUsize::new(0));
        let v2 = Arc::clone(&v);
        let a = FnActuator(move |lp| v2.store(lp, Ordering::SeqCst));
        a.set_lp(7);
        assert_eq!(v.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn config_builder_clamps() {
        let c = ControllerConfig::new(TimeNs::from_secs(1), 0)
            .initial_lp(0)
            .rho(2.0);
        assert_eq!(c.max_lp, 1);
        assert_eq!(c.initial_lp, 1);
        assert_eq!(c.rho, 1.0);
    }
}
