//! History-based estimation of muscle durations `t(m)` and cardinalities
//! `|m|`.
//!
//! The paper's base formula (§4):
//!
//! ```text
//! newEstimatedVal = ρ × lastActualVal + (1 − ρ) × previousEstimatedVal
//! ```
//!
//! with ρ ∈ [0, 1], default 0.5. ρ→1 chases the last measurement; ρ→0
//! freezes the first. The first observation initializes the estimate
//! directly.
//!
//! `t(m)` is defined for every muscle; `|m|` only for Split muscles (number
//! of sub-problems) and Condition muscles (expected `true` count of a
//! `while`, recursion depth of a `d&C`).
//!
//! [`EstimatorTable`] is the shared store keyed by [`MuscleId`];
//! [`Snapshot`] serializes it so one run can initialize the next (the
//! paper's "Goal with initialization" scenario).

use std::collections::HashMap;

use crate::json::{Json, JsonError};

use askel_skeletons::{KindTag, MuscleDescriptor, MuscleId, MuscleRole, NodeId, TimeNs};

/// The paper's exponentially-weighted moving average.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ewma {
    rho: f64,
    value: Option<f64>,
}

impl Ewma {
    /// An empty estimator with weight `rho` (clamped to `[0, 1]`).
    pub fn new(rho: f64) -> Self {
        Ewma {
            rho: rho.clamp(0.0, 1.0),
            value: None,
        }
    }

    /// An estimator pre-initialized to `value`.
    pub fn initialized(rho: f64, value: f64) -> Self {
        Ewma {
            rho: rho.clamp(0.0, 1.0),
            value: Some(value),
        }
    }

    /// Feeds one measurement.
    pub fn observe(&mut self, actual: f64) {
        self.value = Some(match self.value {
            None => actual,
            Some(prev) => self.rho * actual + (1.0 - self.rho) * prev,
        });
    }

    /// The current estimate, if any measurement or initialization happened.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The configured weight.
    pub fn rho(&self) -> f64 {
        self.rho
    }
}

/// Which estimate a cardinality refers to.
///
/// Only Split and Condition muscles have cardinalities (paper §4).
fn role_has_cardinality(tag: KindTag, role: MuscleRole) -> bool {
    matches!(
        (tag, role),
        (KindTag::Map, MuscleRole::Split)
            | (KindTag::Fork, MuscleRole::Split)
            | (KindTag::DivideConquer, MuscleRole::Split)
            | (KindTag::While, MuscleRole::Condition)
            | (KindTag::DivideConquer, MuscleRole::Condition)
    )
}

/// Shared store of `t(m)` and `|m|` estimates, keyed by muscle.
///
/// **Aliasing (shared muscle objects).** In Skandium a muscle is a Java
/// object; the paper's Listing 1 passes the *same* `fs` and `fm` objects to
/// both nested maps. This has an observable consequence in §5: the analysis
/// gate ("all muscles executed at least once") passes at the *first inner
/// merge* (7.6 s) although the *outer* merge has never run — the outer
/// merge borrows the shared object's history. At the same time the paper
/// expects the remaining inner splits at their own ≈0.9 s cost, not at a
/// blend with the 6.4 s outer split.
///
/// We therefore keep estimates **two-level**: every observation updates the
/// *positional* entry (`MuscleId` = node × role) and, when the muscle
/// belongs to an alias group, the *group* entry. Lookups prefer the
/// positional entry and fall back to the group — so predictions are as
/// precise as the position's own history allows, while unexecuted positions
/// inherit the shared object's history, exactly like Skandium.
#[derive(Clone, Debug)]
pub struct EstimatorTable {
    rho: f64,
    durations: HashMap<MuscleId, Ewma>,
    cardinalities: HashMap<MuscleId, Ewma>,
    group_durations: HashMap<MuscleId, Ewma>,
    group_cardinalities: HashMap<MuscleId, Ewma>,
    aliases: HashMap<MuscleId, MuscleId>,
}

impl EstimatorTable {
    /// An empty table; `rho` applies to estimators it creates.
    pub fn new(rho: f64) -> Self {
        EstimatorTable {
            rho: rho.clamp(0.0, 1.0),
            durations: HashMap::new(),
            cardinalities: HashMap::new(),
            group_durations: HashMap::new(),
            group_cardinalities: HashMap::new(),
            aliases: HashMap::new(),
        }
    }

    /// The table's ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Declares that `muscle` shares one muscle object with `canonical`:
    /// both update the group entry keyed by `canonical`, and either
    /// position falls back to it while it lacks its own history. The
    /// canonical member's own observations feed the group as well.
    pub fn set_alias(&mut self, muscle: MuscleId, canonical: MuscleId) {
        if muscle != canonical {
            self.aliases.insert(muscle, canonical);
        }
    }

    /// The declared aliases.
    pub fn aliases(&self) -> impl Iterator<Item = (MuscleId, MuscleId)> + '_ {
        self.aliases.iter().map(|(a, b)| (*a, *b))
    }

    /// The group key of a muscle: the canonical id if it belongs to an
    /// alias group (including the canonical member itself), else `None`.
    fn group_of(&self, m: MuscleId) -> Option<MuscleId> {
        let mut cur = m;
        let mut hops = 0;
        while let Some(&next) = self.aliases.get(&cur) {
            cur = next;
            hops += 1;
            if hops > 16 {
                return None; // defensive cycle guard
            }
        }
        if cur != m || self.aliases.values().any(|&c| c == m) {
            Some(cur)
        } else {
            None
        }
    }

    /// Feeds a duration measurement for `t(m)`.
    pub fn observe_duration(&mut self, m: MuscleId, actual: TimeNs) {
        self.durations
            .entry(m)
            .or_insert_with(|| Ewma::new(self.rho))
            .observe(actual.0 as f64);
        if let Some(g) = self.group_of(m) {
            self.group_durations
                .entry(g)
                .or_insert_with(|| Ewma::new(self.rho))
                .observe(actual.0 as f64);
        }
    }

    /// Feeds a cardinality measurement for `|m|`.
    pub fn observe_cardinality(&mut self, m: MuscleId, actual: f64) {
        self.cardinalities
            .entry(m)
            .or_insert_with(|| Ewma::new(self.rho))
            .observe(actual);
        if let Some(g) = self.group_of(m) {
            self.group_cardinalities
                .entry(g)
                .or_insert_with(|| Ewma::new(self.rho))
                .observe(actual);
        }
    }

    /// Initializes `t(m)` (the paper's "initialization of estimation
    /// functions"); subsequent observations blend into it.
    pub fn init_duration(&mut self, m: MuscleId, value: TimeNs) {
        self.durations
            .insert(m, Ewma::initialized(self.rho, value.0 as f64));
    }

    /// Initializes `|m|`.
    pub fn init_cardinality(&mut self, m: MuscleId, value: f64) {
        self.cardinalities
            .insert(m, Ewma::initialized(self.rho, value));
    }

    /// Current `t(m)`: the position's own history, falling back to its
    /// alias group's history.
    pub fn duration(&self, m: MuscleId) -> Option<TimeNs> {
        self.durations
            .get(&m)
            .and_then(|e| e.value())
            .or_else(|| {
                self.group_of(m)
                    .and_then(|g| self.group_durations.get(&g))
                    .and_then(|e| e.value())
            })
            .map(|v| TimeNs(v.max(0.0).round() as u64))
    }

    /// Current `|m|` (positional, with group fallback).
    pub fn cardinality(&self, m: MuscleId) -> Option<f64> {
        self.cardinalities
            .get(&m)
            .and_then(|e| e.value())
            .or_else(|| {
                self.group_of(m)
                    .and_then(|g| self.group_cardinalities.get(&g))
                    .and_then(|e| e.value())
            })
    }

    /// `|m|` rounded to a usable child count (≥ `min`).
    pub fn cardinality_rounded(&self, m: MuscleId, min: usize) -> Option<usize> {
        self.cardinality(m)
            .map(|v| (v.round().max(0.0) as usize).max(min))
    }

    /// Do we have every estimate the given muscles require — a duration for
    /// each, plus a cardinality for splits and loop/recursion conditions?
    ///
    /// This is the analysis gate: "the system has to wait until all muscles
    /// have been executed at least once" (paper §4).
    pub fn covers(&self, muscles: &[MuscleDescriptor]) -> bool {
        muscles.iter().all(|d| {
            self.duration(d.id).is_some()
                && (!role_has_cardinality(d.tag, d.id.role) || self.cardinality(d.id).is_some())
        })
    }

    /// The muscles from `muscles` still missing estimates (for diagnostics).
    pub fn missing<'a>(&self, muscles: &'a [MuscleDescriptor]) -> Vec<&'a MuscleDescriptor> {
        muscles
            .iter()
            .filter(|d| {
                self.duration(d.id).is_none()
                    || (role_has_cardinality(d.tag, d.id.role) && self.cardinality(d.id).is_none())
            })
            .collect()
    }

    /// Drops every entry — positional durations and cardinalities, group
    /// fallbacks keyed by a removed canonical, and alias declarations on
    /// either side — whose muscle belongs to one of `removed`. Returns
    /// the number of **positional** entries dropped.
    ///
    /// This is the estimator half of the rewrite feedback loop: when a
    /// reconfiguration replaces a subtree, the replaced nodes' history
    /// must not keep steering `predictive_wct` — a forecast over the new
    /// tree is either computed from live estimates or withheld (the
    /// `covers` gate closes again until the replacement's muscles have
    /// run or been seeded).
    pub fn invalidate_nodes(&mut self, removed: &[NodeId]) -> usize {
        let gone = |m: &MuscleId| removed.contains(&m.node);
        let before = self.durations.len() + self.cardinalities.len();
        self.durations.retain(|m, _| !gone(m));
        self.cardinalities.retain(|m, _| !gone(m));
        self.group_durations.retain(|m, _| !gone(m));
        self.group_cardinalities.retain(|m, _| !gone(m));
        self.aliases
            .retain(|m, canonical| !gone(m) && !gone(canonical));
        before - (self.durations.len() + self.cardinalities.len())
    }

    /// Serializable snapshot of every estimate (see [`Snapshot`]).
    pub fn snapshot(&self) -> Snapshot {
        fn dump(map: &HashMap<MuscleId, Ewma>) -> Vec<SnapshotEntry> {
            let mut out: Vec<SnapshotEntry> = map
                .iter()
                .filter_map(|(m, e)| e.value().map(|v| SnapshotEntry::new(*m, v)))
                .collect();
            out.sort_by(|a, b| (a.node, &a.role).cmp(&(b.node, &b.role)));
            out
        }
        Snapshot {
            rho: self.rho,
            durations: dump(&self.durations),
            cardinalities: dump(&self.cardinalities),
            group_durations: dump(&self.group_durations),
            group_cardinalities: dump(&self.group_cardinalities),
        }
    }

    /// Rebuilds a table from a snapshot (all estimates initialized).
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut t = EstimatorTable::new(snapshot.rho);
        for e in &snapshot.durations {
            if let Some(m) = e.muscle_id() {
                t.init_duration(m, TimeNs(e.value.max(0.0).round() as u64));
            }
        }
        for e in &snapshot.cardinalities {
            if let Some(m) = e.muscle_id() {
                t.init_cardinality(m, e.value);
            }
        }
        for e in &snapshot.group_durations {
            if let Some(m) = e.muscle_id() {
                t.group_durations
                    .insert(m, Ewma::initialized(t.rho, e.value));
            }
        }
        for e in &snapshot.group_cardinalities {
            if let Some(m) = e.muscle_id() {
                t.group_cardinalities
                    .insert(m, Ewma::initialized(t.rho, e.value));
            }
        }
        t
    }
}

/// One serialized estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotEntry {
    /// Raw node id.
    pub node: u64,
    /// Muscle role as text (`"fe"`, `"fs"`, `"fm"`, `"fc"`).
    pub role: String,
    /// Estimate value (nanoseconds for durations, plain for cardinalities).
    pub value: f64,
}

impl SnapshotEntry {
    fn new(m: MuscleId, value: f64) -> Self {
        SnapshotEntry {
            node: m.node.0,
            role: m.role.to_string(),
            value,
        }
    }

    fn muscle_id(&self) -> Option<MuscleId> {
        let role = match self.role.as_str() {
            "fe" => MuscleRole::Execute,
            "fs" => MuscleRole::Split,
            "fm" => MuscleRole::Merge,
            "fc" => MuscleRole::Condition,
            _ => return None,
        };
        Some(MuscleId::new(NodeId(self.node), role))
    }
}

/// A serializable dump of an [`EstimatorTable`], implementing the paper's
/// "initialization of the `t(m)` and `|m|` functions" from a previous run.
///
/// Note that node ids must refer to the *same AST objects* (or a rebuild
/// that allocated the same ids) for a snapshot to be meaningful; snapshots
/// are meant for consecutive runs inside one process, or for goldens in
/// tests and benches.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// The ρ the table was using.
    pub rho: f64,
    /// Positional duration estimates.
    pub durations: Vec<SnapshotEntry>,
    /// Positional cardinality estimates.
    pub cardinalities: Vec<SnapshotEntry>,
    /// Alias-group duration estimates (shared-muscle fallback history).
    pub group_durations: Vec<SnapshotEntry>,
    /// Alias-group cardinality estimates.
    pub group_cardinalities: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        fn entries(list: &[SnapshotEntry]) -> Json {
            Json::Arr(
                list.iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("node".to_string(), Json::Num(e.node as f64)),
                            ("role".to_string(), Json::Str(e.role.clone())),
                            ("value".to_string(), Json::Num(e.value)),
                        ])
                    })
                    .collect(),
            )
        }
        Json::Obj(vec![
            ("rho".to_string(), Json::Num(self.rho)),
            ("durations".to_string(), entries(&self.durations)),
            ("cardinalities".to_string(), entries(&self.cardinalities)),
            (
                "group_durations".to_string(),
                entries(&self.group_durations),
            ),
            (
                "group_cardinalities".to_string(),
                entries(&self.group_cardinalities),
            ),
        ])
        .render_pretty()
    }

    /// Parses from JSON. The `group_*` fields may be absent (snapshots
    /// predating alias groups), defaulting to empty.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let doc = Json::parse(s)?;
        let field_err = |msg: &str| JsonError {
            message: msg.to_string(),
            offset: 0,
        };
        let entries = |key: &str, required: bool| -> Result<Vec<SnapshotEntry>, JsonError> {
            let list = match doc.get(key) {
                Some(v) => v
                    .as_array()
                    .ok_or_else(|| field_err(&format!("`{key}` must be an array")))?,
                None if required => return Err(field_err(&format!("snapshot is missing `{key}`"))),
                None => return Ok(Vec::new()),
            };
            list.iter()
                .map(|item| {
                    let node = item
                        .get("node")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| field_err("entry is missing numeric `node`"))?;
                    let role = item
                        .get("role")
                        .and_then(Json::as_str)
                        .ok_or_else(|| field_err("entry is missing string `role`"))?;
                    let value = item
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| field_err("entry is missing numeric `value`"))?;
                    Ok(SnapshotEntry {
                        node: node as u64,
                        role: role.to_string(),
                        value,
                    })
                })
                .collect()
        };
        Ok(Snapshot {
            rho: doc
                .get("rho")
                .and_then(Json::as_f64)
                .ok_or_else(|| field_err("snapshot is missing numeric `rho`"))?,
            durations: entries("durations", true)?,
            cardinalities: entries("cardinalities", true)?,
            group_durations: entries("group_durations", false)?,
            group_cardinalities: entries("group_cardinalities", false)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(n: u64, role: MuscleRole) -> MuscleId {
        MuscleId::new(NodeId(n), role)
    }

    #[test]
    fn first_observation_initializes() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn formula_matches_the_paper() {
        // newEst = ρ·last + (1−ρ)·prev, ρ = 0.5
        let mut e = Ewma::new(0.5);
        e.observe(10.0);
        e.observe(20.0);
        assert_eq!(e.value(), Some(15.0));
        e.observe(5.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn rho_one_takes_only_last_value() {
        let mut e = Ewma::new(1.0);
        e.observe(10.0);
        e.observe(99.0);
        assert_eq!(e.value(), Some(99.0));
    }

    #[test]
    fn rho_zero_keeps_first_value() {
        let mut e = Ewma::new(0.0);
        e.observe(10.0);
        e.observe(99.0);
        e.observe(1.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn rho_is_clamped() {
        assert_eq!(Ewma::new(7.0).rho(), 1.0);
        assert_eq!(Ewma::new(-3.0).rho(), 0.0);
    }

    #[test]
    fn table_tracks_durations_and_cardinalities() {
        let mut t = EstimatorTable::new(0.5);
        let fs = m(1, MuscleRole::Split);
        t.observe_duration(fs, TimeNs::from_secs(10));
        t.observe_cardinality(fs, 3.0);
        assert_eq!(t.duration(fs), Some(TimeNs::from_secs(10)));
        assert_eq!(t.cardinality(fs), Some(3.0));
        assert_eq!(t.cardinality_rounded(fs, 1), Some(3));
        assert_eq!(t.duration(m(2, MuscleRole::Merge)), None);
    }

    #[test]
    fn cardinality_rounding_respects_minimum() {
        let mut t = EstimatorTable::new(0.5);
        let fs = m(1, MuscleRole::Split);
        t.observe_cardinality(fs, 0.2);
        assert_eq!(t.cardinality_rounded(fs, 1), Some(1));
        assert_eq!(t.cardinality_rounded(fs, 0), Some(0));
    }

    #[test]
    fn covers_requires_cardinalities_only_where_defined() {
        let mut t = EstimatorTable::new(0.5);
        let fs = m(1, MuscleRole::Split);
        let fm = m(1, MuscleRole::Merge);
        let fe = m(2, MuscleRole::Execute);
        let descriptors = vec![
            MuscleDescriptor {
                id: fs,
                tag: KindTag::Map,
                label: None,
            },
            MuscleDescriptor {
                id: fm,
                tag: KindTag::Map,
                label: None,
            },
            MuscleDescriptor {
                id: fe,
                tag: KindTag::Seq,
                label: None,
            },
        ];
        t.observe_duration(fs, TimeNs(1));
        t.observe_duration(fm, TimeNs(1));
        t.observe_duration(fe, TimeNs(1));
        assert!(!t.covers(&descriptors), "map split still needs |fs|");
        assert_eq!(t.missing(&descriptors).len(), 1);
        t.observe_cardinality(fs, 4.0);
        assert!(t.covers(&descriptors));
        assert!(t.missing(&descriptors).is_empty());
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut t = EstimatorTable::new(0.25);
        let fs = m(1, MuscleRole::Split);
        let fe = m(2, MuscleRole::Execute);
        t.observe_duration(fs, TimeNs::from_secs(10));
        t.observe_cardinality(fs, 3.0);
        t.observe_duration(fe, TimeNs::from_secs(15));
        let snap = t.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        let t2 = EstimatorTable::from_snapshot(&back);
        assert_eq!(t2.duration(fs), Some(TimeNs::from_secs(10)));
        assert_eq!(t2.cardinality(fs), Some(3.0));
        assert_eq!(t2.duration(fe), Some(TimeNs::from_secs(15)));
        assert_eq!(t2.rho(), 0.25);
    }

    #[test]
    fn initialized_estimates_blend_with_observations() {
        let mut t = EstimatorTable::new(0.5);
        let fe = m(1, MuscleRole::Execute);
        t.init_duration(fe, TimeNs(100));
        t.observe_duration(fe, TimeNs(200));
        assert_eq!(t.duration(fe), Some(TimeNs(150)));
    }
}
