//! A deliberately tiny JSON reader/writer.
//!
//! The workspace builds in environments without crates.io access, so
//! snapshots ([`crate::Snapshot`]) and the bench series renderers carry
//! their own dependency-free JSON support. Numbers are `f64` (every value
//! we persist — node ids, nanosecond durations, cardinalities — fits
//! `f64` exactly), and rendering uses Rust's shortest-round-trip float
//! formatting, so parse ∘ render is the identity on the values we write.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Why a parse failed (offset is a byte position into the input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset at which the problem was noticed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's shortest-exact Display; integers get no fraction part,
        // which JSON accepts.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/inf; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|_| Json::Null),
            Some(b't') => self.eat_literal("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our data;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(
            Json::parse(r#""a\"b\n""#).unwrap(),
            Json::Str("a\"b\n".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("rho".into(), Json::Num(0.5)),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(1.25e9), Json::Num(-3.0), Json::Bool(false)]),
            ),
            ("s".into(), Json::Str("fe\t\"q\"".into())),
        ]);
        for rendered in [v.render(), v.render_pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 9_007_199_254_740_991.0, 1e-300, 2.5e10] {
            let rendered = Json::Num(x).render();
            assert_eq!(Json::parse(&rendered).unwrap().as_f64(), Some(x));
        }
    }
}
