//! Autonomic layer for algorithmic skeletons — the primary contribution of
//! Pabón & Henrio, *Self-Configuration and Self-Optimization Autonomic
//! Skeletons using Events* (PMAM 2014).
//!
//! The paper's pipeline, crate-module by crate-module:
//!
//! 1. [`estimate`] — history-based estimators for muscle durations `t(m)`
//!    and cardinalities `|m|`:
//!    `newEst = ρ·lastActual + (1−ρ)·prevEst` (default ρ = 0.5), with
//!    snapshot/initialization support;
//! 2. [`tracker`] — per-instance state machines (the paper's Figs. 3–4,
//!    extended to all nine skeleton kinds) consuming the event stream,
//!    updating the estimators and recording the live execution;
//! 3. [`adg`] — the Activity Dependency Graph (Fig. 1): actual activities
//!    plus a predictive expansion of the remaining structure;
//! 4. [`strategy`] — the *best effort* (infinite LP) and *limited LP*
//!    (list-scheduling) completion-time estimators, the optimal-LP
//!    computation and the Fig. 2 timeline;
//! 5. [`controller`] — the Wall-Clock-Time QoS loop: raise the LP to the
//!    minimal sufficient value when the goal is endangered, halve it when
//!    the goal is safe at half the threads.
//!
//! Everything here is engine-agnostic: the controller is an
//! [`askel_events::Listener`] plus an [`controller::LpActuator`], so the
//! identical autonomic code runs on the multithreaded engine
//! (`askel-engine`) and on the deterministic simulator (`askel-sim`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adg;
pub mod controller;
pub mod estimate;
pub mod json;
pub mod render;
pub mod strategy;
pub mod tracker;

pub use adg::{ActState, Activity, Adg, AdgBuilder};
pub use controller::{
    AnalysisRecord, AutonomicController, ControllerConfig, Decision, DecisionReason,
    DecreasePolicy, FnActuator, LpActuator, RaisePolicy,
};
pub use estimate::{EstimatorTable, Ewma, Snapshot, SnapshotEntry};
pub use render::{gantt_ascii, to_dot};
pub use strategy::{best_effort, limited_lp, optimal_lp, predictive_wct, Schedule, TimelinePoint};
pub use tracker::{CondSpan, InstanceRecord, SmTracker, Span};
