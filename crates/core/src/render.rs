//! Rendering of ADGs and schedules: a Fig.-1-style ASCII Gantt chart and
//! Graphviz DOT output for the dependency structure.

use askel_skeletons::TimeNs;

use crate::adg::{ActState, Adg};
use crate::strategy::Schedule;

/// Renders the ADG's dependency structure as a Graphviz digraph.
///
/// Done activities are grey, running ones orange, pending ones white; the
/// label carries the muscle and (when a schedule is given) its interval.
pub fn to_dot(adg: &Adg, schedule: Option<&Schedule>) -> String {
    let mut out = String::from("digraph adg {\n  rankdir=LR;\n  node [shape=box, style=filled];\n");
    for (i, a) in adg.activities.iter().enumerate() {
        let color = match a.state {
            ActState::Done { .. } => "lightgrey",
            ActState::Running { .. } => "orange",
            ActState::Pending => "white",
        };
        let label = match schedule {
            Some(s) => format!(
                "{} [{:.0},{:.0}]",
                a.muscle,
                s.spans[i].0.as_secs_f64(),
                s.spans[i].1.as_secs_f64()
            ),
            None => a.muscle.to_string(),
        };
        out.push_str(&format!("  a{i} [label=\"{label}\", fillcolor={color}];\n"));
    }
    for (i, a) in adg.activities.iter().enumerate() {
        for &p in &a.preds {
            out.push_str(&format!("  a{p} -> a{i};\n"));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a schedule as an ASCII Gantt chart — one row per activity, like
/// the paper's Fig. 1 (▓ done, ▒ running, ░ pending/estimated).
pub fn gantt_ascii(adg: &Adg, schedule: &Schedule, width: usize) -> String {
    let width = width.max(10);
    let horizon = schedule.finish.max(TimeNs(1));
    let col_of = |t: TimeNs| -> usize {
        ((t.0 as u128 * width as u128) / horizon.0 as u128).min(width as u128 - 1) as usize
    };
    let mut out = String::new();
    out.push_str(&format!(
        "time 0 .. {:.1}s, one column ≈ {:.2}s\n",
        horizon.as_secs_f64(),
        horizon.as_secs_f64() / width as f64
    ));
    for (i, a) in adg.activities.iter().enumerate() {
        let (start, end) = schedule.spans[i];
        let (c0, c1) = (col_of(start), col_of(end.max(start)));
        let glyph = match a.state {
            ActState::Done { .. } => '▓',
            ActState::Running { .. } => '▒',
            ActState::Pending => '░',
        };
        let mut row: Vec<char> = vec![' '; width];
        for cell in row.iter_mut().take(c1 + 1).skip(c0) {
            *cell = glyph;
        }
        // Zero-length spans still get one marker.
        if end <= start {
            row[c0] = '·';
        }
        out.push_str(&format!(
            "{:>3} {:<9}|{}|\n",
            i,
            a.muscle.to_string(),
            row.into_iter().collect::<String>()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adg::Activity;
    use askel_skeletons::{MuscleId, MuscleRole, NodeId};

    fn small_adg() -> Adg {
        Adg {
            activities: vec![
                Activity {
                    muscle: MuscleId::new(NodeId(1), MuscleRole::Split),
                    state: ActState::Done {
                        start: TimeNs::ZERO,
                        end: TimeNs::from_secs(10),
                    },
                    est: TimeNs::from_secs(10),
                    preds: vec![],
                },
                Activity {
                    muscle: MuscleId::new(NodeId(2), MuscleRole::Execute),
                    state: ActState::Running {
                        start: TimeNs::from_secs(10),
                    },
                    est: TimeNs::from_secs(15),
                    preds: vec![0],
                },
                Activity {
                    muscle: MuscleId::new(NodeId(1), MuscleRole::Merge),
                    state: ActState::Pending,
                    est: TimeNs::from_secs(5),
                    preds: vec![1],
                },
            ],
        }
    }

    #[test]
    fn dot_contains_every_activity_and_edge() {
        let adg = small_adg();
        let dot = to_dot(&adg, None);
        assert!(dot.starts_with("digraph adg {"));
        for i in 0..3 {
            assert!(dot.contains(&format!("a{i} [label=")), "missing node {i}");
        }
        assert!(dot.contains("a0 -> a1;"));
        assert!(dot.contains("a1 -> a2;"));
        assert!(dot.contains("lightgrey"));
        assert!(dot.contains("orange"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_with_schedule_includes_intervals() {
        let adg = small_adg();
        let sched = crate::strategy::best_effort(&adg, TimeNs::from_secs(12));
        let dot = to_dot(&adg, Some(&sched));
        assert!(dot.contains("[0,10]"), "{dot}");
        assert!(dot.contains("[10,25]"), "{dot}");
    }

    #[test]
    fn gantt_has_one_row_per_activity() {
        let adg = small_adg();
        let sched = crate::strategy::best_effort(&adg, TimeNs::from_secs(12));
        let art = gantt_ascii(&adg, &sched, 40);
        let rows: Vec<&str> = art.lines().collect();
        assert_eq!(rows.len(), 4); // header + 3 activities
        assert!(art.contains('▓'));
        assert!(art.contains('▒'));
        assert!(art.contains('░'));
    }

    #[test]
    fn gantt_marks_zero_length_spans() {
        let adg = Adg {
            activities: vec![Activity {
                muscle: MuscleId::new(NodeId(1), MuscleRole::Execute),
                state: ActState::Pending,
                est: TimeNs::ZERO,
                preds: vec![],
            }],
        };
        let sched = crate::strategy::best_effort(&adg, TimeNs::ZERO);
        // Horizon is clamped to 1ns; the zero-length activity renders as ·
        let art = gantt_ascii(&adg, &sched, 20);
        assert!(art.contains('·'));
    }
}
