//! Scheduling strategies over the ADG: the paper's **best effort** and
//! **limited LP** estimators, the **optimal LP** computation, and the
//! active-thread timeline of Fig. 2.
//!
//! Formulas (§4):
//!
//! * best effort assumes infinite LP: `ti = max(pred tf)`, `tf = ti + t(m)`,
//!   and both are clamped to `currentTime` when they fall in the past;
//! * limited LP adds the constraint that at no instant more than `lp`
//!   activities run; we realize it as greedy non-idling list scheduling
//!   with a LIFO-flavoured tie-break (highest activity index first), which
//!   mirrors the runtime's LIFO ready stack;
//! * the optimal LP is the maximum concurrency of the best-effort timeline
//!   (Fig. 2: "a maximum requirement of 3 active threads … therefore the
//!   optimal LP is 3").

use askel_skeletons::TimeNs;

use crate::adg::{ActState, Adg};

/// A laid-out ADG: one `[start, end)` span per activity (index-aligned).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Per-activity spans, aligned with `Adg::activities`.
    pub spans: Vec<(TimeNs, TimeNs)>,
    /// Completion time of the whole graph (`max end`); this is the
    /// estimated WCT measured from the submission's time origin.
    pub finish: TimeNs,
}

impl Schedule {
    /// The active-activity step function: how many activities run at each
    /// instant (zero-duration activities are skipped). This is the series
    /// plotted in Fig. 2.
    pub fn timeline(&self) -> Vec<TimelinePoint> {
        let mut deltas: Vec<(TimeNs, i64)> = Vec::with_capacity(self.spans.len() * 2);
        for &(s, e) in &self.spans {
            if e > s {
                deltas.push((s, 1));
                deltas.push((e, -1));
            }
        }
        deltas.sort_by_key(|&(t, d)| (t, d));
        let mut out: Vec<TimelinePoint> = vec![TimelinePoint {
            at: TimeNs::ZERO,
            active: 0,
        }];
        let mut active: i64 = 0;
        for (t, d) in deltas {
            active += d;
            match out.last_mut() {
                Some(last) if last.at == t => last.active = active as usize,
                _ => out.push(TimelinePoint {
                    at: t,
                    active: active as usize,
                }),
            }
        }
        // Collapse consecutive equal values for readability.
        out.dedup_by(|b, a| a.active == b.active);
        out
    }

    /// Maximum concurrency over the whole timeline (the paper's optimal
    /// LP when applied to the best-effort schedule).
    pub fn max_concurrency(&self) -> usize {
        self.timeline().iter().map(|p| p.active).max().unwrap_or(0)
    }

    /// Maximum concurrency at or after `t` — the forward-looking variant
    /// the controller uses (history cannot be rescheduled).
    pub fn max_concurrency_from(&self, t: TimeNs) -> usize {
        let mut deltas: Vec<(TimeNs, i64)> = Vec::new();
        let mut at_t: i64 = 0;
        for &(s, e) in &self.spans {
            if e <= s || e <= t {
                continue;
            }
            if s <= t {
                at_t += 1;
            } else {
                deltas.push((s, 1));
            }
            deltas.push((e, -1));
        }
        deltas.sort_by_key(|&(time, d)| (time, d));
        let mut max = at_t;
        let mut cur = at_t;
        for (_, d) in deltas {
            cur += d;
            max = max.max(cur);
        }
        max.max(0) as usize
    }
}

/// A point of a concurrency timeline: from `at` on, `active` activities
/// run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Interval start.
    pub at: TimeNs,
    /// Concurrency during the interval.
    pub active: usize,
}

/// Best-effort schedule: infinite LP.
pub fn best_effort(adg: &Adg, now: TimeNs) -> Schedule {
    let mut spans: Vec<(TimeNs, TimeNs)> = Vec::with_capacity(adg.len());
    let mut finish = TimeNs::ZERO;
    for a in &adg.activities {
        let span = match a.state {
            ActState::Done { start, end } => (start, end),
            ActState::Running { start } => (start, (start + a.est).max(now)),
            ActState::Pending => {
                let ti = a.preds.iter().map(|&p| spans[p].1).fold(now, TimeNs::max); // past-clamp: ti ≥ now
                (ti, ti + a.est)
            }
        };
        finish = finish.max(span.1);
        spans.push(span);
    }
    Schedule { spans, finish }
}

/// Limited-LP schedule: greedy list scheduling with at most `lp`
/// concurrently running activities from `now` on. Already-running
/// activities keep their workers (no preemption); `lp == 0` with pending
/// work yields `finish == TimeNs::MAX`.
///
/// Note that greedy list scheduling is subject to *Graham's anomaly*: on
/// adversarial DAGs a larger `lp` can occasionally produce a slightly
/// later finish. The paper assumes non-decreasing speedup ("for
/// simplicity … we assume that the LP produces a non-strictly increasing
/// speedup", §4) and so does the controller's binary search; Graham's
/// bound still guarantees every `lp ≥ 1` is at least as good as serial
/// execution (property-tested in `tests/strategy_properties.rs`).
pub fn limited_lp(adg: &Adg, now: TimeNs, lp: usize) -> Schedule {
    let n = adg.len();
    let mut spans: Vec<(TimeNs, TimeNs)> = vec![(TimeNs::ZERO, TimeNs::ZERO); n];
    let mut scheduled = vec![false; n];
    let mut finish = TimeNs::ZERO;

    // Reverse adjacency + pending-predecessor counts.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut missing_preds = vec![0usize; n];
    for (i, a) in adg.activities.iter().enumerate() {
        if matches!(a.state, ActState::Pending) {
            for &p in &a.preds {
                succs[p].push(i);
            }
            missing_preds[i] = a.preds.len();
        }
    }

    // Completion events: (time, activity index).
    let mut events: std::collections::BinaryHeap<std::cmp::Reverse<(TimeNs, usize)>> =
        std::collections::BinaryHeap::new();
    // Ready pending activities: (ready_time, idx).
    let mut ready: Vec<(TimeNs, usize)> = Vec::new();
    let mut in_use = 0usize;
    let mut pending_left = 0usize;

    let resolve = |i: usize,
                   end: TimeNs,
                   missing_preds: &mut Vec<usize>,
                   ready: &mut Vec<(TimeNs, usize)>,
                   spans: &Vec<(TimeNs, TimeNs)>,
                   succs: &Vec<Vec<usize>>,
                   scheduled: &Vec<bool>,
                   adg: &Adg| {
        let _ = end;
        for &s in &succs[i] {
            if missing_preds[s] > 0 {
                missing_preds[s] -= 1;
                if missing_preds[s] == 0 {
                    let ready_time = adg.activities[s]
                        .preds
                        .iter()
                        .map(|&p| spans[p].1)
                        .fold(now, TimeNs::max);
                    debug_assert!(scheduled.iter().len() >= s);
                    ready.push((ready_time, s));
                }
            }
        }
    };

    // Seed with Done and Running activities.
    for (i, a) in adg.activities.iter().enumerate() {
        match a.state {
            ActState::Done { start, end } => {
                spans[i] = (start, end);
                scheduled[i] = true;
                finish = finish.max(end);
            }
            ActState::Running { start } => {
                let end = (start + a.est).max(now);
                spans[i] = (start, end);
                scheduled[i] = true;
                finish = finish.max(end);
                in_use += 1;
                events.push(std::cmp::Reverse((end, i)));
            }
            ActState::Pending => pending_left += 1,
        }
    }
    // Resolve successors of *Done* activities only — Running ones resolve
    // when their completion event fires (resolving them here too would
    // count them twice and let successors start before their preds end).
    for i in 0..n {
        if matches!(adg.activities[i].state, ActState::Done { .. }) {
            let end = spans[i].1;
            resolve(
                i,
                end,
                &mut missing_preds,
                &mut ready,
                &spans,
                &succs,
                &scheduled,
                adg,
            );
        }
    }
    // Pending activities with no pending preds at all (their preds were
    // all Done/Running, already handled) — also those with zero preds.
    for (i, a) in adg.activities.iter().enumerate() {
        if matches!(a.state, ActState::Pending) && missing_preds[i] == 0 {
            let ready_time = a.preds.iter().map(|&p| spans[p].1).fold(now, TimeNs::max);
            if !ready.iter().any(|&(_, j)| j == i) {
                ready.push((ready_time, i));
            }
        }
    }

    if pending_left > 0 && lp == 0 {
        return Schedule {
            spans,
            finish: TimeNs::MAX,
        };
    }

    let mut t = now;
    loop {
        // Start everything ready and startable at time t, LIFO-ish.
        loop {
            if in_use >= lp {
                break;
            }
            // Eligible: ready_time ≤ t; pick the highest index (mirrors
            // the runtime's LIFO stack on ties).
            let mut best: Option<usize> = None; // position in `ready`
            for (pos, &(rt, idx)) in ready.iter().enumerate() {
                if rt <= t {
                    match best {
                        Some(b) if ready[b].1 >= idx => {}
                        _ => best = Some(pos),
                    }
                }
            }
            let Some(pos) = best else { break };
            let (_, i) = ready.swap_remove(pos);
            let est = adg.activities[i].est;
            spans[i] = (t, t + est);
            scheduled[i] = true;
            finish = finish.max(t + est);
            pending_left -= 1;
            if est.0 == 0 {
                // Zero-duration activities complete instantly and do not
                // occupy a worker.
                resolve(
                    i,
                    t,
                    &mut missing_preds,
                    &mut ready,
                    &spans,
                    &succs,
                    &scheduled,
                    adg,
                );
            } else {
                in_use += 1;
                events.push(std::cmp::Reverse((t + est, i)));
            }
        }
        if pending_left == 0 && events.is_empty() {
            break;
        }
        // Advance to the next completion.
        let Some(std::cmp::Reverse((et, i))) = events.pop() else {
            // No running activity but work left: only possible when every
            // ready_time is in the future relative to t — advance to the
            // earliest.
            let Some(&(rt, _)) = ready.iter().min_by_key(|&&(rt, _)| rt) else {
                break;
            };
            t = t.max(rt);
            continue;
        };
        t = t.max(et);
        in_use -= 1;
        resolve(
            i,
            et,
            &mut missing_preds,
            &mut ready,
            &spans,
            &succs,
            &scheduled,
            adg,
        );
        // Drain simultaneous completions.
        while let Some(&std::cmp::Reverse((et2, _))) = events.peek() {
            if et2 != t {
                break;
            }
            let std::cmp::Reverse((_, j)) = events.pop().expect("peeked");
            in_use -= 1;
            resolve(
                j,
                t,
                &mut missing_preds,
                &mut ready,
                &spans,
                &succs,
                &scheduled,
                adg,
            );
        }
    }

    Schedule { spans, finish }
}

/// The paper's optimal LP: the maximum concurrency of the best-effort
/// schedule.
pub fn optimal_lp(adg: &Adg, now: TimeNs) -> usize {
    best_effort(adg, now).max_concurrency()
}

/// Cold predictive completion estimate: expands the purely-predictive ADG
/// of `root` from `estimates` and lays it out at `lp` — the WCT one
/// submission of `root` is forecast to take from scratch.
///
/// `None` when `estimates` does not cover every muscle of `root` (the
/// same analysis gate the controller applies: never decide from a guess)
/// or when the tree expands to an empty graph. This is the read path the
/// self-configuration layer's forecast-gated rules share with the
/// controller ([`AutonomicController::forecast_wct`](crate::controller::AutonomicController::forecast_wct)).
pub fn predictive_wct(
    estimates: &crate::estimate::EstimatorTable,
    root: &std::sync::Arc<askel_skeletons::Node>,
    lp: usize,
) -> Option<TimeNs> {
    if !estimates.covers(&root.collect_muscles()) {
        return None;
    }
    let tracker = crate::tracker::SmTracker::with_estimates(estimates.clone());
    let adg = crate::adg::AdgBuilder::new(&tracker).build_predictive(root);
    if adg.is_empty() {
        return None;
    }
    Some(limited_lp(&adg, TimeNs::ZERO, lp.max(1)).finish)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adg::Activity;
    use askel_skeletons::{MuscleId, MuscleRole, NodeId};

    fn act(state: ActState, est: u64, preds: Vec<usize>) -> Activity {
        Activity {
            muscle: MuscleId::new(NodeId(1), MuscleRole::Execute),
            state,
            est: TimeNs(est),
            preds,
        }
    }

    /// split(10) → 3 × fe(15) → merge(5), nothing started.
    fn fan_adg() -> Adg {
        Adg {
            activities: vec![
                act(ActState::Pending, 10, vec![]),
                act(ActState::Pending, 15, vec![0]),
                act(ActState::Pending, 15, vec![0]),
                act(ActState::Pending, 15, vec![0]),
                act(ActState::Pending, 5, vec![1, 2, 3]),
            ],
        }
    }

    #[test]
    fn best_effort_is_critical_path() {
        let s = best_effort(&fan_adg(), TimeNs::ZERO);
        assert_eq!(s.finish, TimeNs(30));
        assert_eq!(s.max_concurrency(), 3);
    }

    #[test]
    fn limited_lp_serializes() {
        let s = limited_lp(&fan_adg(), TimeNs::ZERO, 1);
        assert_eq!(s.finish, TimeNs(10 + 45 + 5));
        let s2 = limited_lp(&fan_adg(), TimeNs::ZERO, 2);
        assert_eq!(s2.finish, TimeNs(10 + 30 + 5));
    }

    #[test]
    fn limited_lp_with_big_lp_equals_best_effort() {
        let be = best_effort(&fan_adg(), TimeNs::ZERO);
        let ll = limited_lp(&fan_adg(), TimeNs::ZERO, 64);
        assert_eq!(be.finish, ll.finish);
    }

    #[test]
    fn running_activities_hold_their_workers() {
        // Two running activities (est 10, started at 0), one pending (5),
        // LP 2, now = 2: the pending one must wait until 10.
        let adg = Adg {
            activities: vec![
                act(ActState::Running { start: TimeNs(0) }, 10, vec![]),
                act(ActState::Running { start: TimeNs(0) }, 10, vec![]),
                act(ActState::Pending, 5, vec![]),
            ],
        };
        let s = limited_lp(&adg, TimeNs(2), 2);
        assert_eq!(s.spans[2], (TimeNs(10), TimeNs(15)));
        assert_eq!(s.finish, TimeNs(15));
    }

    #[test]
    fn overdue_running_activity_is_clamped_to_now() {
        // Started at 0 with est 10, but now = 25: tf = now (paper rule).
        let adg = Adg {
            activities: vec![act(ActState::Running { start: TimeNs(0) }, 10, vec![])],
        };
        let s = best_effort(&adg, TimeNs(25));
        assert_eq!(s.spans[0], (TimeNs(0), TimeNs(25)));
    }

    #[test]
    fn pending_start_is_clamped_to_now() {
        // Pred finished at 5, now = 20: the pending activity starts at 20.
        let adg = Adg {
            activities: vec![
                act(
                    ActState::Done {
                        start: TimeNs(0),
                        end: TimeNs(5),
                    },
                    5,
                    vec![],
                ),
                act(ActState::Pending, 10, vec![0]),
            ],
        };
        let s = best_effort(&adg, TimeNs(20));
        assert_eq!(s.spans[1], (TimeNs(20), TimeNs(30)));
        let s = limited_lp(&adg, TimeNs(20), 1);
        assert_eq!(s.spans[1], (TimeNs(20), TimeNs(30)));
    }

    #[test]
    fn done_history_is_preserved_and_does_not_take_capacity() {
        let adg = Adg {
            activities: vec![
                act(
                    ActState::Done {
                        start: TimeNs(0),
                        end: TimeNs(100),
                    },
                    100,
                    vec![],
                ),
                act(ActState::Pending, 10, vec![]),
            ],
        };
        let s = limited_lp(&adg, TimeNs(100), 1);
        assert_eq!(s.spans[0], (TimeNs(0), TimeNs(100)));
        assert_eq!(s.spans[1], (TimeNs(100), TimeNs(110)));
    }

    #[test]
    fn zero_lp_with_pending_work_never_finishes() {
        let s = limited_lp(&fan_adg(), TimeNs::ZERO, 0);
        assert_eq!(s.finish, TimeNs::MAX);
    }

    #[test]
    fn zero_duration_activities_do_not_occupy_workers() {
        // Three zero-cost activities + one real one, LP 1: all zero-cost
        // ones run "instantly" alongside.
        let adg = Adg {
            activities: vec![
                act(ActState::Pending, 0, vec![]),
                act(ActState::Pending, 0, vec![0]),
                act(ActState::Pending, 7, vec![1]),
                act(ActState::Pending, 0, vec![2]),
            ],
        };
        let s = limited_lp(&adg, TimeNs::ZERO, 1);
        assert_eq!(s.finish, TimeNs(7));
    }

    #[test]
    fn timeline_shows_the_fan() {
        let s = best_effort(&fan_adg(), TimeNs::ZERO);
        let tl = s.timeline();
        assert_eq!(
            tl,
            vec![
                TimelinePoint {
                    at: TimeNs(0),
                    active: 1
                },
                TimelinePoint {
                    at: TimeNs(10),
                    active: 3
                },
                TimelinePoint {
                    at: TimeNs(25),
                    active: 1
                },
                TimelinePoint {
                    at: TimeNs(30),
                    active: 0
                },
            ]
        );
        assert_eq!(s.max_concurrency_from(TimeNs(26)), 1);
        assert_eq!(s.max_concurrency_from(TimeNs(10)), 3);
    }

    #[test]
    fn optimal_lp_matches_max_concurrency() {
        assert_eq!(optimal_lp(&fan_adg(), TimeNs::ZERO), 3);
    }

    #[test]
    fn wct_is_monotonically_nonincreasing_in_lp() {
        let adg = fan_adg();
        let mut prev = limited_lp(&adg, TimeNs::ZERO, 1).finish;
        for lp in 2..8 {
            let cur = limited_lp(&adg, TimeNs::ZERO, lp).finish;
            assert!(cur <= prev, "lp {lp}: {cur:?} > {prev:?}");
            prev = cur;
        }
    }
}
