//! Event-driven state machines tracking skeleton execution.
//!
//! The paper (Figs. 3–4) tracks execution with one state machine per
//! skeleton *instance*, fed by events and guarded by the instance index
//! (`[idx == i]`). The state machines have two jobs:
//!
//! 1. **update the estimators** — e.g. the Map machine updates `t(fs)` and
//!    `|fs|` on `map@as(i, fsCard)`, `t(fm)` on `map@am(i)`; the Seq machine
//!    updates `t(fe)` on `seq@a(i)`;
//! 2. **maintain the live execution record** the ADG is built from: which
//!    instances exist, which muscle executions started/finished when, what
//!    each split produced, how often each `while` condition held, how deep
//!    each `d&C` recursion went.
//!
//! [`SmTracker`] implements both for all nine skeleton kinds (the paper
//! gives Seq and Map and leaves If/Fork "under construction"; supporting
//! them is part of this reproduction's realized future work).
//!
//! The tracker is a plain state container — registering it as a listener is
//! the controller's job (`askel-core::controller`), which also keeps event
//! observation and ADG analysis under one lock.

use std::collections::HashMap;

use askel_events::{Event, EventInfo, When, Where};
use askel_skeletons::{InstanceId, KindTag, MuscleId, MuscleRole, NodeId, TimeNs};

use crate::estimate::EstimatorTable;

/// One muscle execution observed at runtime (possibly still running).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// When the muscle started (its Before event).
    pub started: TimeNs,
    /// When it finished (its After event), if it has.
    pub finished: Option<TimeNs>,
}

impl Span {
    fn start(t: TimeNs) -> Self {
        Span {
            started: t,
            finished: None,
        }
    }
}

/// One observed condition evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CondSpan {
    /// The evaluation's span.
    pub span: Span,
    /// Its verdict, known at the After event.
    pub verdict: Option<bool>,
}

/// Everything known about one skeleton instance.
#[derive(Clone, Debug)]
pub struct InstanceRecord {
    /// The AST node this is an instance of.
    pub node: NodeId,
    /// The node's kind.
    pub kind: KindTag,
    /// The instance index `i`.
    pub id: InstanceId,
    /// The enclosing instance, if any.
    pub parent: Option<InstanceId>,
    /// When the instance began (its skeleton-Before event).
    pub started: TimeNs,
    /// When it ended (its skeleton-After event).
    pub finished: Option<TimeNs>,
    /// The split muscle execution, if the kind has one and it started.
    pub split: Option<Span>,
    /// What the split produced (`fsCard`), known at split-After.
    pub split_card: Option<usize>,
    /// The merge muscle execution.
    pub merge: Option<Span>,
    /// Condition evaluations, in order (`while` has many).
    pub conds: Vec<CondSpan>,
    /// Child instances, in arrival order of their skeleton-Before events.
    pub children: Vec<InstanceId>,
    /// How many condition evaluations returned `true` so far.
    pub cond_trues: usize,
    /// Recursion depth for `d&C` instances (root = 1); 1 otherwise.
    pub dc_depth: usize,
    /// For the root instance of a `d&C` recursion: deepest instance seen.
    pub dc_max_depth: usize,
}

impl InstanceRecord {
    /// `true` once the skeleton-After event arrived.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The latest condition evaluation, if any.
    pub fn last_cond(&self) -> Option<&CondSpan> {
        self.conds.last()
    }
}

/// Event-driven execution tracker + estimator updater.
pub struct SmTracker {
    estimates: EstimatorTable,
    instances: HashMap<InstanceId, InstanceRecord>,
    /// Root instances in arrival order; the last is the current submission.
    roots: Vec<InstanceId>,
}

impl SmTracker {
    /// A tracker with a fresh estimator table using weight `rho`.
    pub fn new(rho: f64) -> Self {
        Self::with_estimates(EstimatorTable::new(rho))
    }

    /// A tracker over a pre-initialized estimator table (the paper's
    /// "with initialization" scenario).
    pub fn with_estimates(estimates: EstimatorTable) -> Self {
        SmTracker {
            estimates,
            instances: HashMap::new(),
            roots: Vec::new(),
        }
    }

    /// The estimator table (shared view).
    pub fn estimates(&self) -> &EstimatorTable {
        &self.estimates
    }

    /// Mutable access to the estimator table (for initialization).
    pub fn estimates_mut(&mut self) -> &mut EstimatorTable {
        &mut self.estimates
    }

    /// The current (most recent) root instance.
    pub fn current_root(&self) -> Option<&InstanceRecord> {
        self.roots.last().and_then(|id| self.instances.get(id))
    }

    /// Looks an instance up.
    pub fn instance(&self, id: InstanceId) -> Option<&InstanceRecord> {
        self.instances.get(&id)
    }

    /// Number of instances currently recorded.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Drops the records of finished roots (estimates are kept); reduces
    /// memory on long-lived engines.
    pub fn prune_finished(&mut self) {
        let keep_root = match self.roots.last() {
            Some(id) => match self.instances.get(id) {
                Some(r) if !r.is_finished() => Some(*id),
                _ => None,
            },
            None => None,
        };
        match keep_root {
            Some(root) => {
                // Keep only instances belonging to the live root.
                let live: std::collections::HashSet<InstanceId> = self
                    .instances
                    .values()
                    .filter(|r| self.root_of(r.id) == Some(root))
                    .map(|r| r.id)
                    .collect();
                self.instances.retain(|id, _| live.contains(id));
                self.roots.retain(|id| *id == root);
            }
            None => {
                self.instances.clear();
                self.roots.clear();
            }
        }
    }

    fn root_of(&self, mut id: InstanceId) -> Option<InstanceId> {
        loop {
            let rec = self.instances.get(&id)?;
            match rec.parent {
                Some(p) if self.instances.contains_key(&p) => id = p,
                Some(_) => return None,
                None => return Some(id),
            }
        }
    }

    /// Feeds one event through the state machines.
    pub fn observe(&mut self, event: &Event) {
        match (event.when, event.wher) {
            (When::Before, Where::Skeleton) => self.on_instance_begin(event),
            (When::After, Where::Skeleton) => self.on_instance_end(event),
            (When::Before, Where::Split) => self.on_muscle_begin(event, MuscleRole::Split),
            (When::After, Where::Split) => self.on_split_end(event),
            (When::Before, Where::Merge) => self.on_muscle_begin(event, MuscleRole::Merge),
            (When::After, Where::Merge) => self.on_merge_end(event),
            (When::Before, Where::Condition) => self.on_cond_begin(event),
            (When::After, Where::Condition) => self.on_cond_end(event),
            // Children announce themselves through their own Skeleton
            // events; the parent-side nesting events carry no extra state.
            (_, Where::NestedSkeleton) => {}
            // Structural rewrites (askel-adapt) are session-level
            // announcements, not muscle executions: nothing to estimate.
            (_, Where::Reconfigured) => {}
        }
    }

    fn on_instance_begin(&mut self, event: &Event) {
        let parent = event.trace.parent().map(|p| p.instance);
        let dc_depth = if event.kind == KindTag::DivideConquer {
            match parent.and_then(|p| self.instances.get(&p)) {
                Some(pr) if pr.node == event.node => pr.dc_depth + 1,
                _ => 1,
            }
        } else {
            1
        };
        let record = InstanceRecord {
            node: event.node,
            kind: event.kind,
            id: event.index,
            parent,
            started: event.timestamp,
            finished: None,
            split: None,
            split_card: None,
            merge: None,
            conds: Vec::new(),
            children: Vec::new(),
            cond_trues: 0,
            dc_depth,
            dc_max_depth: dc_depth,
        };
        if let Some(p) = parent {
            if let Some(pr) = self.instances.get_mut(&p) {
                pr.children.push(event.index);
            }
        }
        // Propagate d&C depth to the recursion root.
        if event.kind == KindTag::DivideConquer {
            let mut cur = parent;
            let mut root = None;
            while let Some(c) = cur {
                match self.instances.get(&c) {
                    Some(r) if r.node == event.node => {
                        root = Some(c);
                        cur = r.parent;
                    }
                    _ => break,
                }
            }
            if let Some(root) = root {
                if let Some(rr) = self.instances.get_mut(&root) {
                    rr.dc_max_depth = rr.dc_max_depth.max(dc_depth);
                }
            }
        }
        if parent.is_none() {
            self.roots.push(event.index);
        }
        self.instances.insert(event.index, record);
    }

    fn on_instance_end(&mut self, event: &Event) {
        let Some(rec) = self.instances.get_mut(&event.index) else {
            return;
        };
        rec.finished = Some(event.timestamp);
        match rec.kind {
            KindTag::Seq => {
                // Fig. 3: t(fe) updated at seq@a with (now − eti).
                let dur = event.timestamp.saturating_sub(rec.started);
                self.estimates
                    .observe_duration(MuscleId::new(event.node, MuscleRole::Execute), dur);
            }
            KindTag::While => {
                // |fc| of a while = number of `true` verdicts this run.
                let trues = rec.cond_trues as f64;
                self.estimates
                    .observe_cardinality(MuscleId::new(event.node, MuscleRole::Condition), trues);
            }
            KindTag::DivideConquer if rec.dc_depth == 1 => {
                // |fc| of a d&C = depth of the recursion tree.
                let depth = rec.dc_max_depth as f64;
                self.estimates
                    .observe_cardinality(MuscleId::new(event.node, MuscleRole::Condition), depth);
            }
            _ => {}
        }
    }

    fn on_muscle_begin(&mut self, event: &Event, role: MuscleRole) {
        let Some(rec) = self.instances.get_mut(&event.index) else {
            return;
        };
        let span = Span::start(event.timestamp);
        match role {
            MuscleRole::Split => rec.split = Some(span),
            MuscleRole::Merge => rec.merge = Some(span),
            _ => unreachable!("on_muscle_begin only handles split/merge"),
        }
    }

    fn on_split_end(&mut self, event: &Event) {
        let Some(rec) = self.instances.get_mut(&event.index) else {
            return;
        };
        let started = match rec.split {
            Some(s) => s.started,
            None => rec.started,
        };
        rec.split = Some(Span {
            started,
            finished: Some(event.timestamp),
        });
        let muscle = MuscleId::new(event.node, MuscleRole::Split);
        self.estimates
            .observe_duration(muscle, event.timestamp.saturating_sub(started));
        if let EventInfo::SplitCardinality(card) = event.info {
            rec.split_card = Some(card);
            self.estimates.observe_cardinality(muscle, card as f64);
        }
    }

    fn on_merge_end(&mut self, event: &Event) {
        let Some(rec) = self.instances.get_mut(&event.index) else {
            return;
        };
        let started = match rec.merge {
            Some(s) => s.started,
            None => rec.started,
        };
        rec.merge = Some(Span {
            started,
            finished: Some(event.timestamp),
        });
        self.estimates.observe_duration(
            MuscleId::new(event.node, MuscleRole::Merge),
            event.timestamp.saturating_sub(started),
        );
    }

    fn on_cond_begin(&mut self, event: &Event) {
        let Some(rec) = self.instances.get_mut(&event.index) else {
            return;
        };
        rec.conds.push(CondSpan {
            span: Span::start(event.timestamp),
            verdict: None,
        });
    }

    fn on_cond_end(&mut self, event: &Event) {
        let Some(rec) = self.instances.get_mut(&event.index) else {
            return;
        };
        let verdict = event.info.condition_result();
        let started = match rec.conds.last_mut() {
            Some(c) => {
                c.span.finished = Some(event.timestamp);
                c.verdict = verdict;
                c.span.started
            }
            None => {
                rec.conds.push(CondSpan {
                    span: Span {
                        started: rec.started,
                        finished: Some(event.timestamp),
                    },
                    verdict,
                });
                rec.started
            }
        };
        if verdict == Some(true) {
            rec.cond_trues += 1;
        }
        self.estimates.observe_duration(
            MuscleId::new(event.node, MuscleRole::Condition),
            event.timestamp.saturating_sub(started),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_events::Trace;

    #[allow(clippy::too_many_arguments)]
    fn ev(
        node: u64,
        kind: KindTag,
        when: When,
        wher: Where,
        index: u64,
        parent: Option<(u64, KindTag, u64)>,
        at: u64,
        info: EventInfo,
    ) -> Event {
        let trace = match parent {
            Some((pn, pk, pi)) => Trace::root(NodeId(pn), InstanceId(pi), pk).child(
                NodeId(node),
                InstanceId(index),
                kind,
            ),
            None => Trace::root(NodeId(node), InstanceId(index), kind),
        };
        Event {
            node: NodeId(node),
            kind,
            when,
            wher,
            index: InstanceId(index),
            trace,
            timestamp: TimeNs(at),
            info,
        }
    }

    #[test]
    fn seq_machine_updates_t_fe() {
        // Fig. 3 exactly: @b stores eti, @a updates t(fe) = ρ(now−eti)+(1−ρ)t(fe).
        let mut t = SmTracker::new(0.5);
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::Before,
            Where::Skeleton,
            10,
            None,
            100,
            EventInfo::None,
        ));
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::After,
            Where::Skeleton,
            10,
            None,
            160,
            EventInfo::None,
        ));
        let fe = MuscleId::new(NodeId(1), MuscleRole::Execute);
        assert_eq!(t.estimates().duration(fe), Some(TimeNs(60)));
        // Second run: 100ns → estimate (60+100)/2 = 80.
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::Before,
            Where::Skeleton,
            11,
            None,
            200,
            EventInfo::None,
        ));
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::After,
            Where::Skeleton,
            11,
            None,
            300,
            EventInfo::None,
        ));
        assert_eq!(t.estimates().duration(fe), Some(TimeNs(80)));
    }

    #[test]
    fn map_machine_updates_split_card_and_merge() {
        // Fig. 4: t(fs), |fs| at @as; t(fm) at @am.
        let mut t = SmTracker::new(0.5);
        let map = |when, wher, at, info| ev(5, KindTag::Map, when, wher, 20, None, at, info);
        t.observe(&map(When::Before, Where::Skeleton, 0, EventInfo::None));
        t.observe(&map(When::Before, Where::Split, 0, EventInfo::None));
        t.observe(&map(
            When::After,
            Where::Split,
            10,
            EventInfo::SplitCardinality(3),
        ));
        t.observe(&map(When::Before, Where::Merge, 65, EventInfo::None));
        t.observe(&map(When::After, Where::Merge, 70, EventInfo::None));
        t.observe(&map(When::After, Where::Skeleton, 70, EventInfo::None));
        let fs = MuscleId::new(NodeId(5), MuscleRole::Split);
        let fm = MuscleId::new(NodeId(5), MuscleRole::Merge);
        assert_eq!(t.estimates().duration(fs), Some(TimeNs(10)));
        assert_eq!(t.estimates().cardinality(fs), Some(3.0));
        assert_eq!(t.estimates().duration(fm), Some(TimeNs(5)));
        let root = t.current_root().unwrap();
        assert!(root.is_finished());
        assert_eq!(root.split_card, Some(3));
    }

    #[test]
    fn children_attach_to_parents_in_order() {
        let mut t = SmTracker::new(0.5);
        t.observe(&ev(
            5,
            KindTag::Map,
            When::Before,
            Where::Skeleton,
            20,
            None,
            0,
            EventInfo::None,
        ));
        for (i, at) in [(30u64, 10u64), (31, 10), (32, 65)] {
            t.observe(&ev(
                6,
                KindTag::Seq,
                When::Before,
                Where::Skeleton,
                i,
                Some((5, KindTag::Map, 20)),
                at,
                EventInfo::None,
            ));
        }
        let root = t.current_root().unwrap();
        assert_eq!(
            root.children,
            vec![InstanceId(30), InstanceId(31), InstanceId(32)]
        );
        let child = t.instance(InstanceId(31)).unwrap();
        assert_eq!(child.parent, Some(InstanceId(20)));
        assert!(!child.is_finished());
    }

    #[test]
    fn while_counts_trues_and_updates_cardinality() {
        let mut t = SmTracker::new(0.5);
        let w = |when, wher, at, info| ev(7, KindTag::While, when, wher, 40, None, at, info);
        t.observe(&w(When::Before, Where::Skeleton, 0, EventInfo::None));
        for (k, verdict) in [true, true, true, false].iter().enumerate() {
            let at = (k as u64) * 10;
            t.observe(&w(When::Before, Where::Condition, at, EventInfo::None));
            t.observe(&w(
                When::After,
                Where::Condition,
                at + 2,
                EventInfo::ConditionResult(*verdict),
            ));
        }
        t.observe(&w(When::After, Where::Skeleton, 40, EventInfo::None));
        let fc = MuscleId::new(NodeId(7), MuscleRole::Condition);
        assert_eq!(t.estimates().cardinality(fc), Some(3.0));
        assert_eq!(t.estimates().duration(fc), Some(TimeNs(2)));
        assert_eq!(t.current_root().unwrap().conds.len(), 4);
    }

    #[test]
    fn dac_depth_reaches_the_recursion_root() {
        let mut t = SmTracker::new(0.5);
        // Root d&C instance 50 → child 51 → grandchild 52 (same node 9).
        t.observe(&ev(
            9,
            KindTag::DivideConquer,
            When::Before,
            Where::Skeleton,
            50,
            None,
            0,
            EventInfo::None,
        ));
        t.observe(&ev(
            9,
            KindTag::DivideConquer,
            When::Before,
            Where::Skeleton,
            51,
            Some((9, KindTag::DivideConquer, 50)),
            10,
            EventInfo::None,
        ));
        // Grandchild: trace root(9,#50)/(9,#51)/(9,#52) — build manually.
        let trace = Trace::root(NodeId(9), InstanceId(50), KindTag::DivideConquer)
            .child(NodeId(9), InstanceId(51), KindTag::DivideConquer)
            .child(NodeId(9), InstanceId(52), KindTag::DivideConquer);
        t.observe(&Event {
            node: NodeId(9),
            kind: KindTag::DivideConquer,
            when: When::Before,
            wher: Where::Skeleton,
            index: InstanceId(52),
            trace,
            timestamp: TimeNs(20),
            info: EventInfo::None,
        });
        assert_eq!(t.instance(InstanceId(52)).unwrap().dc_depth, 3);
        assert_eq!(t.instance(InstanceId(50)).unwrap().dc_max_depth, 3);
        // Root completion records |fc| = 3.
        t.observe(&ev(
            9,
            KindTag::DivideConquer,
            When::After,
            Where::Skeleton,
            50,
            None,
            99,
            EventInfo::None,
        ));
        let fc = MuscleId::new(NodeId(9), MuscleRole::Condition);
        assert_eq!(t.estimates().cardinality(fc), Some(3.0));
    }

    #[test]
    fn new_root_becomes_current() {
        let mut t = SmTracker::new(0.5);
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::Before,
            Where::Skeleton,
            60,
            None,
            0,
            EventInfo::None,
        ));
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::After,
            Where::Skeleton,
            60,
            None,
            5,
            EventInfo::None,
        ));
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::Before,
            Where::Skeleton,
            61,
            None,
            10,
            EventInfo::None,
        ));
        assert_eq!(t.current_root().unwrap().id, InstanceId(61));
    }

    #[test]
    fn prune_keeps_live_root_only() {
        let mut t = SmTracker::new(0.5);
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::Before,
            Where::Skeleton,
            70,
            None,
            0,
            EventInfo::None,
        ));
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::After,
            Where::Skeleton,
            70,
            None,
            5,
            EventInfo::None,
        ));
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::Before,
            Where::Skeleton,
            71,
            None,
            10,
            EventInfo::None,
        ));
        assert_eq!(t.instance_count(), 2);
        t.prune_finished();
        assert_eq!(t.instance_count(), 1);
        assert_eq!(t.current_root().unwrap().id, InstanceId(71));
        // Estimates survive pruning.
        assert!(t
            .estimates()
            .duration(MuscleId::new(NodeId(1), MuscleRole::Execute))
            .is_some());
    }

    #[test]
    fn stray_after_events_are_tolerated() {
        let mut t = SmTracker::new(0.5);
        // After without Before: no panic, no record.
        t.observe(&ev(
            1,
            KindTag::Seq,
            When::After,
            Where::Skeleton,
            80,
            None,
            5,
            EventInfo::None,
        ));
        assert!(t.current_root().is_none());
    }
}
