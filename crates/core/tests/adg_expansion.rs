//! ADG expansion for partially-executed loops and recursions: the
//! predictive part must splice correctly onto live instance records.

use askel_core::{best_effort, ActState, AdgBuilder, SmTracker};
use askel_events::{Event, EventInfo, Trace, When, Where};
use askel_skeletons::{
    dac, seq, sfor, swhile, InstanceId, KindTag, MuscleId, MuscleRole, NodeId, Skel, TimeNs,
};

fn sec(s: u64) -> TimeNs {
    TimeNs::from_secs(s)
}

#[allow(clippy::too_many_arguments)]
fn ev(
    node: NodeId,
    kind: KindTag,
    when: When,
    wher: Where,
    inst: u64,
    trace: Trace,
    at: TimeNs,
    info: EventInfo,
) -> Event {
    Event {
        node,
        kind,
        when,
        wher,
        index: InstanceId(inst),
        trace,
        timestamp: at,
        info,
    }
}

/// A while loop that has completed 2 of an estimated 5 iterations: the ADG
/// must contain the 2 actual (cond+body) pairs, the remaining 3 predicted
/// pairs, and the final (false) cond.
#[test]
fn while_mid_loop_predicts_remaining_iterations() {
    let body = seq(|x: i64| x + 1);
    let body_id = body.id();
    let program: Skel<i64, i64> = swhile(|x: &i64| *x < 100, body);
    let w = program.id();

    let mut tracker = SmTracker::new(0.5);
    {
        let est = tracker.estimates_mut();
        est.init_duration(MuscleId::new(w, MuscleRole::Condition), sec(1));
        est.init_cardinality(MuscleId::new(w, MuscleRole::Condition), 5.0);
        est.init_duration(MuscleId::new(body_id, MuscleRole::Execute), sec(3));
    }

    const WI: u64 = 8_100_000;
    let wt = Trace::root(w, InstanceId(WI), KindTag::While);
    let mut t = 0u64;
    tracker.observe(&ev(
        w,
        KindTag::While,
        When::Before,
        Where::Skeleton,
        WI,
        wt.clone(),
        sec(0),
        EventInfo::None,
    ));
    for k in 0..2u64 {
        tracker.observe(&ev(
            w,
            KindTag::While,
            When::Before,
            Where::Condition,
            WI,
            wt.clone(),
            sec(t),
            EventInfo::None,
        ));
        tracker.observe(&ev(
            w,
            KindTag::While,
            When::After,
            Where::Condition,
            WI,
            wt.clone(),
            sec(t + 1),
            EventInfo::ConditionResult(true),
        ));
        let b = WI + 10 + k;
        let bt = wt.child(body_id, InstanceId(b), KindTag::Seq);
        tracker.observe(&ev(
            body_id,
            KindTag::Seq,
            When::Before,
            Where::Skeleton,
            b,
            bt.clone(),
            sec(t + 1),
            EventInfo::None,
        ));
        tracker.observe(&ev(
            body_id,
            KindTag::Seq,
            When::After,
            Where::Skeleton,
            b,
            bt,
            sec(t + 4),
            EventInfo::None,
        ));
        t += 4;
    }
    // Now at t = 8s, between iterations.
    let adg = AdgBuilder::new(&tracker).build(program.node());
    // 2 actual conds + 2 actual bodies + 3 predicted (cond+body) + final cond.
    assert_eq!(adg.len(), 2 + 2 + 3 * 2 + 1);
    let (done, running, pending) = adg.state_counts();
    assert_eq!(done, 4);
    assert_eq!(running, 0);
    assert_eq!(pending, 7);
    // Sequential structure: best-effort finish = 8 + 3×(1+3) + 1 = 21.
    let be = best_effort(&adg, sec(8));
    assert_eq!(be.finish, sec(21));
    assert_eq!(be.max_concurrency(), 1, "a while loop is sequential");
}

/// A for(4) loop with 1 completed iteration: 3 predicted bodies remain.
#[test]
fn for_mid_loop_predicts_remaining_iterations() {
    let body = seq(|x: i64| x * 2);
    let body_id = body.id();
    let program: Skel<i64, i64> = sfor(4, body);
    let f = program.id();

    let mut tracker = SmTracker::new(0.5);
    tracker
        .estimates_mut()
        .init_duration(MuscleId::new(body_id, MuscleRole::Execute), sec(2));

    const FI: u64 = 8_200_000;
    let ft = Trace::root(f, InstanceId(FI), KindTag::For);
    tracker.observe(&ev(
        f,
        KindTag::For,
        When::Before,
        Where::Skeleton,
        FI,
        ft.clone(),
        sec(0),
        EventInfo::None,
    ));
    let b = FI + 1;
    let bt = ft.child(body_id, InstanceId(b), KindTag::Seq);
    tracker.observe(&ev(
        body_id,
        KindTag::Seq,
        When::Before,
        Where::Skeleton,
        b,
        bt.clone(),
        sec(0),
        EventInfo::None,
    ));
    tracker.observe(&ev(
        body_id,
        KindTag::Seq,
        When::After,
        Where::Skeleton,
        b,
        bt,
        sec(2),
        EventInfo::None,
    ));

    let adg = AdgBuilder::new(&tracker).build(program.node());
    assert_eq!(adg.len(), 4, "1 actual + 3 predicted bodies");
    let (done, _, pending) = adg.state_counts();
    assert_eq!((done, pending), (1, 3));
    let be = best_effort(&adg, sec(2));
    assert_eq!(be.finish, sec(2 + 3 * 2));
}

/// A d&C whose root divided (split done, 2 children running/unstarted):
/// unstarted children expand as predicted subtrees at the remaining depth.
#[test]
fn dac_mid_recursion_predicts_missing_subtrees() {
    let base = seq(|x: i64| x);
    let base_id = base.id();
    let program: Skel<i64, i64> = dac(
        |x: &i64| *x > 8,
        |x: i64| vec![x / 2, x - x / 2],
        base,
        |v: Vec<i64>| v.into_iter().sum(),
    );
    let d = program.id();

    let mut tracker = SmTracker::new(0.5);
    {
        let est = tracker.estimates_mut();
        est.init_duration(MuscleId::new(d, MuscleRole::Condition), sec(1));
        est.init_cardinality(MuscleId::new(d, MuscleRole::Condition), 2.0); // depth 2
        est.init_duration(MuscleId::new(d, MuscleRole::Split), sec(2));
        est.init_cardinality(MuscleId::new(d, MuscleRole::Split), 2.0);
        est.init_duration(MuscleId::new(d, MuscleRole::Merge), sec(1));
        est.init_duration(MuscleId::new(base_id, MuscleRole::Execute), sec(4));
    }

    const DI: u64 = 8_300_000;
    let dt = Trace::root(d, InstanceId(DI), KindTag::DivideConquer);
    tracker.observe(&ev(
        d,
        KindTag::DivideConquer,
        When::Before,
        Where::Skeleton,
        DI,
        dt.clone(),
        sec(0),
        EventInfo::None,
    ));
    tracker.observe(&ev(
        d,
        KindTag::DivideConquer,
        When::Before,
        Where::Condition,
        DI,
        dt.clone(),
        sec(0),
        EventInfo::None,
    ));
    tracker.observe(&ev(
        d,
        KindTag::DivideConquer,
        When::After,
        Where::Condition,
        DI,
        dt.clone(),
        sec(1),
        EventInfo::ConditionResult(true),
    ));
    tracker.observe(&ev(
        d,
        KindTag::DivideConquer,
        When::Before,
        Where::Split,
        DI,
        dt.clone(),
        sec(1),
        EventInfo::None,
    ));
    tracker.observe(&ev(
        d,
        KindTag::DivideConquer,
        When::After,
        Where::Split,
        DI,
        dt.clone(),
        sec(3),
        EventInfo::SplitCardinality(2),
    ));

    // Neither child has begun. Now = 3s.
    let adg = AdgBuilder::new(&tracker).build(program.node());
    // Root: cond + split + merge = 3 activities; each child predicted at
    // depth 2 (leaf level): cond + base = 2 activities each.
    assert_eq!(adg.len(), 3 + 2 * 2);
    let done = adg
        .activities
        .iter()
        .filter(|a| matches!(a.state, ActState::Done { .. }))
        .count();
    assert_eq!(done, 2, "cond + split are done");
    // Children run in parallel: 3 + (1 + 4) + merge 1 = 9.
    let be = best_effort(&adg, sec(3));
    assert_eq!(be.finish, sec(9));
    assert_eq!(be.max_concurrency_from(sec(3)), 2);
}

/// A d&C whose root condition said *false*: the ADG is just cond + base.
#[test]
fn dac_base_case_has_no_recursion() {
    let base = seq(|x: i64| x);
    let base_id = base.id();
    let program: Skel<i64, i64> = dac(
        |x: &i64| *x > 8,
        |x: i64| vec![x / 2, x - x / 2],
        base,
        |v: Vec<i64>| v.into_iter().sum(),
    );
    let d = program.id();
    let mut tracker = SmTracker::new(0.5);
    {
        let est = tracker.estimates_mut();
        est.init_duration(MuscleId::new(d, MuscleRole::Condition), sec(1));
        est.init_cardinality(MuscleId::new(d, MuscleRole::Condition), 2.0);
        est.init_duration(MuscleId::new(d, MuscleRole::Split), sec(2));
        est.init_cardinality(MuscleId::new(d, MuscleRole::Split), 2.0);
        est.init_duration(MuscleId::new(d, MuscleRole::Merge), sec(1));
        est.init_duration(MuscleId::new(base_id, MuscleRole::Execute), sec(4));
    }
    const DI: u64 = 8_400_000;
    let dt = Trace::root(d, InstanceId(DI), KindTag::DivideConquer);
    tracker.observe(&ev(
        d,
        KindTag::DivideConquer,
        When::Before,
        Where::Skeleton,
        DI,
        dt.clone(),
        sec(0),
        EventInfo::None,
    ));
    tracker.observe(&ev(
        d,
        KindTag::DivideConquer,
        When::Before,
        Where::Condition,
        DI,
        dt.clone(),
        sec(0),
        EventInfo::None,
    ));
    tracker.observe(&ev(
        d,
        KindTag::DivideConquer,
        When::After,
        Where::Condition,
        DI,
        dt,
        sec(1),
        EventInfo::ConditionResult(false),
    ));

    let adg = AdgBuilder::new(&tracker).build(program.node());
    assert_eq!(adg.len(), 2, "cond + predicted base only");
    let be = best_effort(&adg, sec(1));
    assert_eq!(be.finish, sec(5));
}
