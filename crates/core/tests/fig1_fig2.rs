//! Exact reproduction of the paper's worked example (Figs. 1 and 2).
//!
//! Setup (§4): skeleton `map(fs, map(fs, seq(fe), fm), fm)` with estimates
//! `t(fs) = 10, t(fe) = 15, t(fm) = 5, |fs| = 3`; an actual execution with
//! LP 2 is snapshotted at WCT 70, at which point:
//!
//! * the root split ran [0,10] producing 3 sub-problems;
//! * two inner maps (A, B) split at [10,20] and ran their six `fe`s
//!   two-at-a-time over [20,65];
//! * A's merge ran [65,70]; the third inner split (C) started at 65 and is
//!   still running (estimated to finish at 75);
//! * B's merge is ready but waiting for a thread.
//!
//! Expected (quoted in the paper):
//!
//! * best effort: B.merge [70,75], C's `fe`s [75,90], C.merge [90,95],
//!   root merge [95,100] → **WCT 100**, peak concurrency **3** during
//!   [75,90) → **optimal LP 3**;
//! * limited LP(2): third `fe` delayed to [90,105], C.merge [105,110],
//!   root merge [110,115] → **WCT 115**;
//! * with a WCT goal of 100, the controller raises LP **2 → 3**.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use askel_core::{
    best_effort, limited_lp, optimal_lp, AdgBuilder, AutonomicController, ControllerConfig,
    FnActuator, SmTracker, TimelinePoint,
};
use askel_events::{Event, EventInfo, Trace, When, Where};
use askel_skeletons::{map, seq, InstanceId, KindTag, MuscleRole, NodeId, Skel, TimeNs};

const SEC: u64 = 1_000_000_000;

fn t(units: u64) -> TimeNs {
    TimeNs(units * SEC)
}

struct Fixture {
    skel: Skel<Vec<i64>, i64>,
    outer: NodeId,
    inner: NodeId,
    leaf: NodeId,
}

fn fixture() -> Fixture {
    let inner = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0]),
        |p: Vec<i64>| p.into_iter().sum::<i64>(),
    );
    let inner_id = inner.id();
    let leaf_id = inner.node().children()[0].id;
    let skel = map(
        |v: Vec<i64>| vec![v.clone(), v.clone(), v],
        inner,
        |p: Vec<i64>| p.into_iter().sum::<i64>(),
    );
    let outer_id = skel.id();
    Fixture {
        skel,
        outer: outer_id,
        inner: inner_id,
        leaf: leaf_id,
    }
}

fn init_estimates(tracker: &mut SmTracker, f: &Fixture) {
    let est = tracker.estimates_mut();
    for node in [f.outer, f.inner] {
        est.init_duration(
            askel_skeletons::MuscleId::new(node, MuscleRole::Split),
            t(10),
        );
        est.init_duration(
            askel_skeletons::MuscleId::new(node, MuscleRole::Merge),
            t(5),
        );
        est.init_cardinality(askel_skeletons::MuscleId::new(node, MuscleRole::Split), 3.0);
    }
    est.init_duration(
        askel_skeletons::MuscleId::new(f.leaf, MuscleRole::Execute),
        t(15),
    );
}

struct EventFeeder<'a> {
    f: &'a Fixture,
}

impl<'a> EventFeeder<'a> {
    fn root_trace(&self, inst: u64) -> Trace {
        Trace::root(self.f.outer, InstanceId(inst), KindTag::Map)
    }

    fn inner_trace(&self, root: u64, inst: u64) -> Trace {
        self.root_trace(root)
            .child(self.f.inner, InstanceId(inst), KindTag::Map)
    }

    fn leaf_trace(&self, root: u64, inner: u64, inst: u64) -> Trace {
        self.inner_trace(root, inner)
            .child(self.f.leaf, InstanceId(inst), KindTag::Seq)
    }

    #[allow(clippy::too_many_arguments)]
    fn ev(
        &self,
        node: NodeId,
        kind: KindTag,
        when: When,
        wher: Where,
        inst: u64,
        trace: Trace,
        at: TimeNs,
        info: EventInfo,
    ) -> Event {
        Event {
            node,
            kind,
            when,
            wher,
            index: InstanceId(inst),
            trace,
            timestamp: at,
            info,
        }
    }

    /// The full event history up to WCT 70, delivered to `sink`.
    fn feed(&self, mut sink: impl FnMut(Event)) {
        let f = self.f;
        const O: u64 = 100; // root map instance
        const A: u64 = 101; // inner maps
        const B: u64 = 102;
        const C: u64 = 103;
        // Root map: begin + split [0, 10], card 3.
        sink(self.ev(
            f.outer,
            KindTag::Map,
            When::Before,
            Where::Skeleton,
            O,
            self.root_trace(O),
            t(0),
            EventInfo::None,
        ));
        sink(self.ev(
            f.outer,
            KindTag::Map,
            When::Before,
            Where::Split,
            O,
            self.root_trace(O),
            t(0),
            EventInfo::None,
        ));
        sink(self.ev(
            f.outer,
            KindTag::Map,
            When::After,
            Where::Split,
            O,
            self.root_trace(O),
            t(10),
            EventInfo::SplitCardinality(3),
        ));
        // Inner maps A and B: begin + split [10, 20], card 3 each.
        for inst in [A, B] {
            sink(self.ev(
                f.inner,
                KindTag::Map,
                When::Before,
                Where::Skeleton,
                inst,
                self.inner_trace(O, inst),
                t(10),
                EventInfo::None,
            ));
            sink(self.ev(
                f.inner,
                KindTag::Map,
                When::Before,
                Where::Split,
                inst,
                self.inner_trace(O, inst),
                t(10),
                EventInfo::None,
            ));
            sink(self.ev(
                f.inner,
                KindTag::Map,
                When::After,
                Where::Split,
                inst,
                self.inner_trace(O, inst),
                t(20),
                EventInfo::SplitCardinality(3),
            ));
        }
        // Six fe's, two at a time: waves [20,35], [35,50], [50,65].
        // Wave k runs A's k-th and B's k-th leaf.
        for (k, (start, end)) in [(20u64, 35u64), (35, 50), (50, 65)].iter().enumerate() {
            for (parent, leaf_inst) in [(A, 110 + k as u64), (B, 120 + k as u64)] {
                let tr = self.leaf_trace(O, parent, leaf_inst);
                sink(self.ev(
                    f.leaf,
                    KindTag::Seq,
                    When::Before,
                    Where::Skeleton,
                    leaf_inst,
                    tr.clone(),
                    t(*start),
                    EventInfo::None,
                ));
                sink(self.ev(
                    f.leaf,
                    KindTag::Seq,
                    When::After,
                    Where::Skeleton,
                    leaf_inst,
                    tr,
                    t(*end),
                    EventInfo::None,
                ));
            }
        }
        // A's merge [65, 70]; A completes at 70.
        sink(self.ev(
            f.inner,
            KindTag::Map,
            When::Before,
            Where::Merge,
            A,
            self.inner_trace(O, A),
            t(65),
            EventInfo::None,
        ));
        sink(self.ev(
            f.inner,
            KindTag::Map,
            When::After,
            Where::Merge,
            A,
            self.inner_trace(O, A),
            t(70),
            EventInfo::None,
        ));
        sink(self.ev(
            f.inner,
            KindTag::Map,
            When::After,
            Where::Skeleton,
            A,
            self.inner_trace(O, A),
            t(70),
            EventInfo::None,
        ));
        // C begins at 65; its split is still running at the snapshot.
        sink(self.ev(
            f.inner,
            KindTag::Map,
            When::Before,
            Where::Skeleton,
            C,
            self.inner_trace(O, C),
            t(65),
            EventInfo::None,
        ));
        sink(self.ev(
            f.inner,
            KindTag::Map,
            When::Before,
            Where::Split,
            C,
            self.inner_trace(O, C),
            t(65),
            EventInfo::None,
        ));
    }
}

fn tracker_at_70(f: &Fixture) -> SmTracker {
    let mut tracker = SmTracker::new(0.5);
    init_estimates(&mut tracker, f);
    let feeder = EventFeeder { f };
    feeder.feed(|e| tracker.observe(&e));
    tracker
}

#[test]
fn adg_snapshot_has_the_papers_activities() {
    let f = fixture();
    let tracker = tracker_at_70(&f);
    let adg = AdgBuilder::new(&tracker).build(f.skel.node());
    // 1 root split + 3×(split + 3 fe + merge) + 1 root merge = 17.
    assert_eq!(adg.len(), 17);
    let (done, running, pending) = adg.state_counts();
    assert_eq!(done, 10, "root split, 2 inner splits, 6 fe, merge A");
    assert_eq!(running, 1, "split C");
    assert_eq!(pending, 6, "merge B, 3 fe C, merge C, root merge");
}

#[test]
fn best_effort_wct_is_100_and_optimal_lp_is_3() {
    let f = fixture();
    let tracker = tracker_at_70(&f);
    let adg = AdgBuilder::new(&tracker).build(f.skel.node());
    let now = t(70);
    let be = best_effort(&adg, now);
    assert_eq!(be.finish, t(100), "paper: best-effort WCT 100");
    assert_eq!(optimal_lp(&adg, now), 3, "paper: optimal LP 3");
    assert_eq!(be.max_concurrency_from(now), 3);

    // The paper's interval structure: three fe's at [75,90), peak 3.
    let tl = be.timeline();
    assert_eq!(
        tl,
        vec![
            TimelinePoint {
                at: t(0),
                active: 1
            },
            TimelinePoint {
                at: t(10),
                active: 2
            },
            TimelinePoint {
                at: t(75),
                active: 3
            },
            TimelinePoint {
                at: t(90),
                active: 1
            },
            TimelinePoint {
                at: t(100),
                active: 0
            },
        ],
        "Fig. 2 best-effort series"
    );
}

#[test]
fn limited_lp_2_finishes_at_115() {
    let f = fixture();
    let tracker = tracker_at_70(&f);
    let adg = AdgBuilder::new(&tracker).build(f.skel.node());
    let now = t(70);
    let ll = limited_lp(&adg, now, 2);
    assert_eq!(ll.finish, t(115), "paper: limited-LP(2) WCT 115");
    // Fig. 2's limited series: plateau at 2 until 90, then 1 until 115.
    let tl = ll.timeline();
    assert_eq!(
        tl,
        vec![
            TimelinePoint {
                at: t(0),
                active: 1
            },
            TimelinePoint {
                at: t(10),
                active: 2
            },
            TimelinePoint {
                at: t(90),
                active: 1
            },
            TimelinePoint {
                at: t(115),
                active: 0
            },
        ],
        "Fig. 2 limited-LP(2) series"
    );
}

#[test]
fn limited_lp_3_meets_the_100_goal() {
    let f = fixture();
    let tracker = tracker_at_70(&f);
    let adg = AdgBuilder::new(&tracker).build(f.skel.node());
    let ll = limited_lp(&adg, t(70), 3);
    assert_eq!(ll.finish, t(100), "LP 3 recovers the best-effort WCT");
}

#[test]
fn activity_intervals_match_figure_1() {
    let f = fixture();
    let tracker = tracker_at_70(&f);
    let adg = AdgBuilder::new(&tracker).build(f.skel.node());
    let now = t(70);
    let be = best_effort(&adg, now);
    let ll = limited_lp(&adg, now, 2);

    // Pair each activity's muscle/state with its spans in both strategies.
    let mut be_pending: Vec<(MuscleRole, (TimeNs, TimeNs))> = Vec::new();
    let mut ll_pending: Vec<(MuscleRole, (TimeNs, TimeNs))> = Vec::new();
    for (i, a) in adg.activities.iter().enumerate() {
        if matches!(a.state, askel_core::ActState::Pending) {
            be_pending.push((a.muscle.role, be.spans[i]));
            ll_pending.push((a.muscle.role, ll.spans[i]));
        }
    }
    be_pending.sort_by_key(|&(_, (s, e))| (s, e));
    ll_pending.sort_by_key(|&(_, (s, e))| (s, e));
    assert_eq!(
        be_pending,
        vec![
            (MuscleRole::Merge, (t(70), t(75))),   // merge B
            (MuscleRole::Execute, (t(75), t(90))), // fe C ×3
            (MuscleRole::Execute, (t(75), t(90))),
            (MuscleRole::Execute, (t(75), t(90))),
            (MuscleRole::Merge, (t(90), t(95))),  // merge C
            (MuscleRole::Merge, (t(95), t(100))), // root merge
        ],
        "Fig. 1 best-effort intervals"
    );
    assert_eq!(
        ll_pending,
        vec![
            (MuscleRole::Merge, (t(70), t(75))),
            (MuscleRole::Execute, (t(75), t(90))),
            (MuscleRole::Execute, (t(75), t(90))),
            (MuscleRole::Execute, (t(90), t(105))), // delayed third fe
            (MuscleRole::Merge, (t(105), t(110))),
            (MuscleRole::Merge, (t(110), t(115))),
        ],
        "Fig. 1 limited-LP(2) intervals"
    );
    // The running split C is estimated to end at 75 in both strategies.
    let split_c = adg
        .activities
        .iter()
        .position(|a| matches!(a.state, askel_core::ActState::Running { .. }))
        .unwrap();
    assert_eq!(be.spans[split_c], (t(65), t(75)));
    assert_eq!(ll.spans[split_c], (t(65), t(75)));
}

#[test]
fn controller_raises_lp_2_to_3_for_goal_100() {
    let f = fixture();
    let requested = Arc::new(AtomicUsize::new(0));
    let r2 = Arc::clone(&requested);
    // The paper evaluates the decision *once*, at the WCT-70 snapshot, so
    // intermediate analyses are disabled (the live-loop behaviour is
    // covered by the end-to-end scenario tests).
    let config = ControllerConfig::new(t(100), 24)
        .initial_lp(2)
        .manual_analysis(true);
    let controller = AutonomicController::new(
        f.skel.node().clone(),
        config,
        Arc::new(FnActuator(move |lp| r2.store(lp, Ordering::SeqCst))),
    );
    controller.with_estimates(|est| {
        for node in [f.outer, f.inner] {
            est.init_duration(
                askel_skeletons::MuscleId::new(node, MuscleRole::Split),
                t(10),
            );
            est.init_duration(
                askel_skeletons::MuscleId::new(node, MuscleRole::Merge),
                t(5),
            );
            est.init_cardinality(askel_skeletons::MuscleId::new(node, MuscleRole::Split), 3.0);
        }
        est.init_duration(
            askel_skeletons::MuscleId::new(f.leaf, MuscleRole::Execute),
            t(15),
        );
    });
    let feeder = EventFeeder { f: &f };
    use askel_events::{Listener, Payload};
    feeder.feed(|e| controller.on_event(&mut Payload::None, &e));
    controller.force_analyze(t(70));

    let decisions = controller.decisions();
    assert_eq!(
        controller.current_lp(),
        3,
        "paper: LP raised to 3; decisions: {decisions:#?}"
    );
    assert_eq!(requested.load(Ordering::SeqCst), 3);
    assert_eq!(decisions.len(), 1, "exactly one decision, at the snapshot");
    let last = decisions.last().unwrap();
    assert_eq!(last.at, t(70));
    assert_eq!(last.to_lp, 3);
    assert_eq!(last.reason, askel_core::DecisionReason::RaiseToMeetGoal);
    assert_eq!(last.predicted_wct, t(100));
}

#[test]
fn controller_with_loose_goal_keeps_lp_2() {
    // With a goal of 120 the limited-LP(2) estimate (115) already fits;
    // halving to 1 would give 10+45+5-style serialization way past 120,
    // so the controller must leave LP alone at the WCT-70 analysis.
    let f = fixture();
    let requested = Arc::new(AtomicUsize::new(2));
    let r2 = Arc::clone(&requested);
    let config = ControllerConfig::new(t(120), 24).initial_lp(2);
    let controller = AutonomicController::new(
        f.skel.node().clone(),
        config,
        Arc::new(FnActuator(move |lp| r2.store(lp, Ordering::SeqCst))),
    );
    controller.with_estimates(|est| {
        for node in [f.outer, f.inner] {
            est.init_duration(
                askel_skeletons::MuscleId::new(node, MuscleRole::Split),
                t(10),
            );
            est.init_duration(
                askel_skeletons::MuscleId::new(node, MuscleRole::Merge),
                t(5),
            );
            est.init_cardinality(askel_skeletons::MuscleId::new(node, MuscleRole::Split), 3.0);
        }
        est.init_duration(
            askel_skeletons::MuscleId::new(f.leaf, MuscleRole::Execute),
            t(15),
        );
    });
    let feeder = EventFeeder { f: &f };
    use askel_events::{Listener, Payload};
    feeder.feed(|e| controller.on_event(&mut Payload::None, &e));
    controller.force_analyze(t(70));
    assert_eq!(controller.current_lp(), 2, "goal already met at LP 2");
}
