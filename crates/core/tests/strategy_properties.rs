//! Property tests over the scheduling strategies: randomly generated ADGs
//! must satisfy the invariants the controller's decisions rely on.

use proptest::prelude::*;

use askel_core::{best_effort, limited_lp, ActState, Activity, Adg};
use askel_skeletons::{MuscleId, MuscleRole, NodeId, TimeNs};

/// A random DAG in topological order: each activity picks predecessors
/// among earlier indices; a prefix of activities is Done (historical),
/// possibly followed by Running ones, then Pending.
fn adg_strategy() -> impl Strategy<Value = (Adg, TimeNs)> {
    let n_range = 1usize..24;
    n_range
        .prop_flat_map(|n| {
            let durations = proptest::collection::vec(0u64..40, n);
            let pred_seeds =
                proptest::collection::vec(proptest::collection::vec(any::<u32>(), 0..3), n);
            let done_cut = 0..=n;
            (Just(n), durations, pred_seeds, done_cut, 0usize..4)
        })
        .prop_map(|(n, durations, pred_seeds, done_cut, running_extra)| {
            let mut activities = Vec::with_capacity(n);
            let mut clock = 0u64;
            let running_end = (done_cut + running_extra).min(n);
            for i in 0..n {
                let preds: Vec<usize> = if i == 0 {
                    vec![]
                } else {
                    let mut p: Vec<usize> =
                        pred_seeds[i].iter().map(|s| (*s as usize) % i).collect();
                    p.sort_unstable();
                    p.dedup();
                    p
                };
                let est = TimeNs(durations[i] * 1_000);
                let state = if i < done_cut {
                    // Historical: sequential-ish spans in the past.
                    let start = TimeNs(clock);
                    let end = TimeNs(clock + durations[i] * 1_000);
                    clock += durations[i] * 1_000;
                    ActState::Done { start, end }
                } else if i < running_end {
                    ActState::Running {
                        start: TimeNs(clock),
                    }
                } else {
                    ActState::Pending
                };
                activities.push(Activity {
                    muscle: MuscleId::new(NodeId(i as u64 + 1), MuscleRole::Execute),
                    state,
                    est,
                    preds,
                });
            }
            let now = TimeNs(clock);
            (Adg { activities }, now)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn limited_lp_with_huge_lp_equals_best_effort((adg, now) in adg_strategy()) {
        let be = best_effort(&adg, now);
        let ll = limited_lp(&adg, now, adg.len() + 8);
        prop_assert_eq!(be.finish, ll.finish);
    }

    #[test]
    fn more_workers_never_lose_to_one_worker((adg, now) in adg_strategy()) {
        // Strict monotonicity in LP does NOT hold for greedy list
        // scheduling on arbitrary DAGs (Graham's anomaly) — the paper
        // *assumes* non-decreasing speedup rather than proving it. What
        // greedy non-idling scheduling does guarantee is Graham's bound,
        // which implies no LP is worse than fully serial.
        let serial = limited_lp(&adg, now, 1).finish;
        for lp in 2..=(adg.len() + 2) {
            let cur = limited_lp(&adg, now, lp).finish;
            prop_assert!(cur <= serial, "lp {} beat by serial: {:?} > {:?}", lp, cur, serial);
        }
    }

    #[test]
    fn best_effort_is_a_lower_bound((adg, now) in adg_strategy()) {
        let be = best_effort(&adg, now).finish;
        for lp in 1..=4usize {
            let ll = limited_lp(&adg, now, lp).finish;
            prop_assert!(ll >= be, "limited({lp}) {:?} beat best effort {:?}", ll, be);
        }
    }

    #[test]
    fn schedules_respect_precedence((adg, now) in adg_strategy()) {
        for sched in [best_effort(&adg, now), limited_lp(&adg, now, 2)] {
            for (i, a) in adg.activities.iter().enumerate() {
                if matches!(a.state, ActState::Pending) {
                    for &p in &a.preds {
                        prop_assert!(
                            sched.spans[i].0 >= sched.spans[p].1,
                            "activity {} starts {:?} before pred {} ends {:?}",
                            i, sched.spans[i].0, p, sched.spans[p].1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pending_never_starts_in_the_past((adg, now) in adg_strategy()) {
        for sched in [best_effort(&adg, now), limited_lp(&adg, now, 3)] {
            for (i, a) in adg.activities.iter().enumerate() {
                if matches!(a.state, ActState::Pending) {
                    prop_assert!(sched.spans[i].0 >= now);
                }
            }
        }
    }

    #[test]
    fn limited_lp_respects_the_bound_from_now((adg, now) in adg_strategy(), lp in 1usize..6) {
        // Count concurrency over the future part of the schedule; running
        // activities occupy workers too, but a shrink below the number of
        // already-running activities legitimately exceeds the bound (no
        // preemption), so the bound only applies once they finish.
        let running = adg
            .activities
            .iter()
            .filter(|a| matches!(a.state, ActState::Running { .. }))
            .count();
        let sched = limited_lp(&adg, now, lp);
        let effective_bound = lp.max(running);
        // Sweep concurrency over non-done activities with positive length.
        let mut deltas: Vec<(TimeNs, i64)> = Vec::new();
        for (i, a) in adg.activities.iter().enumerate() {
            if matches!(a.state, ActState::Done { .. }) {
                continue;
            }
            let (s, e) = sched.spans[i];
            if e > s {
                deltas.push((s, 1));
                deltas.push((e, -1));
            }
        }
        deltas.sort_by_key(|&(t, d)| (t, d));
        let mut cur = 0i64;
        for (_, d) in deltas {
            cur += d;
            prop_assert!(
                cur as usize <= effective_bound,
                "{} concurrent > bound {}",
                cur,
                effective_bound
            );
        }
    }

    #[test]
    fn done_history_is_never_rewritten((adg, now) in adg_strategy()) {
        for sched in [best_effort(&adg, now), limited_lp(&adg, now, 2)] {
            for (i, a) in adg.activities.iter().enumerate() {
                if let ActState::Done { start, end } = a.state {
                    prop_assert_eq!(sched.spans[i], (start, end));
                }
            }
        }
    }

    #[test]
    fn running_ends_are_past_clamped((adg, now) in adg_strategy()) {
        let sched = best_effort(&adg, now);
        for (i, a) in adg.activities.iter().enumerate() {
            if let ActState::Running { start } = a.state {
                let expected = (start + a.est).max(now);
                prop_assert_eq!(sched.spans[i].1, expected);
            }
        }
    }

    #[test]
    fn optimal_lp_bounds_useful_parallelism((adg, now) in adg_strategy()) {
        // Giving the scheduler the optimal LP must recover the best-effort
        // finish time (that's what "optimal" means in the paper).
        let be = best_effort(&adg, now);
        let opt = be.max_concurrency_from(now).max(1);
        let ll = limited_lp(&adg, now, opt);
        prop_assert_eq!(
            ll.finish, be.finish,
            "optimal LP {} did not recover best effort", opt
        );
    }

    #[test]
    fn timeline_integrates_to_total_work((adg, now) in adg_strategy()) {
        // ∑ span lengths == ∫ timeline (conservation of work).
        let sched = limited_lp(&adg, now, 2);
        let total: u128 = sched.spans.iter().map(|(s, e)| (e.0 - s.0) as u128).sum();
        let tl = sched.timeline();
        let mut integral: u128 = 0;
        for w in tl.windows(2) {
            integral += (w[1].at.0 - w[0].at.0) as u128 * w[0].active as u128;
        }
        // The last point has active = 0, so the integral is complete.
        prop_assert_eq!(total, integral);
    }
}
