//! Distributed worker models for the simulator — the paper's §4/§6
//! future-work direction, realized: "the same autonomic loop over a
//! distributed set of workers, adding or removing workers like adding or
//! removing threads in a centralised manner".
//!
//! A [`Cluster`] is an ordered set of [`NodeSpec`]s, each contributing a
//! block of worker slots to the simulator. Slots come online in node
//! order as the controller raises the LP (the simulator always fills the
//! lowest free slot), so placing local nodes first means remote capacity
//! is only recruited once local capacity is exhausted — and every task
//! chain run on a remote node pays that node's communication round-trip
//! in virtual time, which the controller observes through the ordinary
//! event stream and compensates for by provisioning more workers.
//!
//! In the crate layering (see `docs/ARCHITECTURE.md`), this sits above
//! the simulator: a [`Cluster`] is an `askel_sim` worker model, driven
//! by the same centralised event → analyze → plan → resize loop that
//! scales the threaded engine's work-stealing pool — the paper's
//! "adding or removing workers like adding or removing threads".
//!
//! ```
//! use std::sync::Arc;
//! use askel_dist::{Cluster, NodeSpec};
//! use askel_sim::{cost::TableCost, SimEngine};
//! use askel_skeletons::{map, seq, TimeNs};
//!
//! let cluster = Cluster::new(vec![
//!     NodeSpec::local("master", 2),
//!     NodeSpec::remote("worker-node", 4, TimeNs::from_millis(250)),
//! ])
//! .with_capacity(2); // start on the master only
//!
//! let program = map(
//!     |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
//!     seq(|v: Vec<i64>| v[0]),
//!     |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
//! );
//! let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
//! let mut sim = SimEngine::with_workers(Box::new(cluster), cost);
//! let out = sim.run(&program, vec![1, 2, 3]).unwrap();
//! assert_eq!(out.result, 6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::{Arc, Mutex};

use askel_sim::components::{Command, Component};
use askel_sim::workers::WorkerModel;
use askel_skeletons::TimeNs;

/// One node of a cluster: a named block of worker slots with a per-task
/// communication round-trip (zero for local nodes) and a relative
/// execution speed (1.0 = baseline).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpec {
    name: String,
    slots: usize,
    round_trip: TimeNs,
    speed: f64,
}

impl NodeSpec {
    /// A local node: `slots` workers with no communication overhead
    /// (threads of the controller's own process).
    pub fn local(name: impl Into<String>, slots: usize) -> Self {
        NodeSpec {
            name: name.into(),
            slots,
            round_trip: TimeNs::ZERO,
            speed: 1.0,
        }
    }

    /// A remote node: `slots` workers, each executed task chain paying
    /// `round_trip` of virtual time for dispatch plus result return.
    pub fn remote(name: impl Into<String>, slots: usize, round_trip: TimeNs) -> Self {
        NodeSpec {
            name: name.into(),
            slots,
            round_trip,
            speed: 1.0,
        }
    }

    /// Sets the node's relative execution speed: 1.0 is the baseline,
    /// 2.0 runs muscles twice as fast (durations halved), 0.5 at half
    /// speed (durations doubled). Non-positive or non-finite values are
    /// treated as the baseline.
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = if speed.is_finite() && speed > 0.0 {
            speed
        } else {
            1.0
        };
        self
    }

    /// The node's relative execution speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The cost multiplier the simulator applies to durations on this
    /// node (`1 / speed`).
    pub fn cost_factor(&self) -> f64 {
        1.0 / self.speed
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Provisioned worker slots on this node.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Communication round-trip charged per task chain (zero ⇒ local).
    pub fn round_trip(&self) -> TimeNs {
        self.round_trip
    }

    /// Whether this node is local (no communication overhead).
    pub fn is_local(&self) -> bool {
        self.round_trip == TimeNs::ZERO
    }
}

#[derive(Debug)]
struct TelemetryInner {
    /// Node names, in slot order (fixed at cluster construction).
    names: Vec<String>,
    /// Provisioned slots per node (fixed).
    slots: Vec<usize>,
    /// Currently-enabled slots per node (tracks `Cluster::set_capacity`).
    enabled: Vec<usize>,
    /// Accumulated busy virtual time per node.
    busy: Vec<TimeNs>,
}

/// Shared handle onto a cluster's live state: per-node busy-time
/// accounting plus the currently-enabled slot counts.
///
/// The cluster is moved into the simulator
/// ([`askel_sim::SimEngine::with_workers`] takes it by value), so its
/// state is surfaced through this handle: keep a clone
/// ([`Cluster::telemetry`]) before handing the cluster over, and read
/// per-node utilization while or after the simulation runs. The
/// `Offload` rule (`askel-adapt`) and [`ProvisioningPolicy`] decide from
/// exactly this view.
#[derive(Clone, Debug)]
pub struct ClusterTelemetry {
    inner: Arc<Mutex<TelemetryInner>>,
}

impl ClusterTelemetry {
    fn for_nodes(nodes: &[NodeSpec]) -> Self {
        ClusterTelemetry {
            inner: Arc::new(Mutex::new(TelemetryInner {
                names: nodes.iter().map(|n| n.name().to_string()).collect(),
                slots: nodes.iter().map(NodeSpec::slots).collect(),
                enabled: nodes.iter().map(NodeSpec::slots).collect(),
                busy: vec![TimeNs::ZERO; nodes.len()],
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TelemetryInner> {
        self.inner.lock().expect("cluster telemetry poisoned")
    }

    fn add(&self, node: usize, busy: TimeNs) {
        let mut inner = self.lock();
        if let Some(t) = inner.busy.get_mut(node) {
            *t += busy;
        }
    }

    fn set_enabled(&self, enabled: Vec<usize>) {
        self.lock().enabled = enabled;
    }

    /// Node names, in slot order.
    pub fn names(&self) -> Vec<String> {
        self.lock().names.clone()
    }

    /// Index (in node order) of the node called `name`.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.lock().names.iter().position(|n| n == name)
    }

    /// Provisioned slots per node.
    pub fn slots_per_node(&self) -> Vec<usize> {
        self.lock().slots.clone()
    }

    /// Currently-enabled slots per node (live: follows every capacity
    /// change, including mid-run LP requests).
    pub fn enabled_per_node(&self) -> Vec<usize> {
        self.lock().enabled.clone()
    }

    /// Total enabled slots — the cluster's current capacity.
    pub fn capacity(&self) -> usize {
        self.lock().enabled.iter().sum()
    }

    /// Accumulated busy virtual time per node, in node order (scaled
    /// muscle durations plus communication round-trips).
    pub fn busy_per_node(&self) -> Vec<TimeNs> {
        self.lock().busy.clone()
    }

    /// Each node's share of the total accumulated busy time, in node
    /// order (`0.0` everywhere while nothing has run). Shares sum to 1
    /// once any work has been accounted; they are what the `Offload`
    /// high/low-water-mark comparisons and the [`ProvisioningPolicy`]
    /// read — a wall-clock-free skew measure that replays
    /// deterministically on the simulator.
    pub fn busy_share(&self) -> Vec<f64> {
        let inner = self.lock();
        let total: f64 = inner.busy.iter().map(|b| b.as_secs_f64()).sum();
        if total <= 0.0 {
            return vec![0.0; inner.busy.len()];
        }
        inner.busy.iter().map(|b| b.as_secs_f64() / total).collect()
    }

    /// `busy / (wall × enabled_slots)` per node — the utilization figures
    /// the dist example and benches print. `enabled` comes from the
    /// cluster that produced this handle (`Cluster::enabled_per_node`).
    pub fn utilization(&self, wall: TimeNs, enabled: &[usize]) -> Vec<f64> {
        self.busy_per_node()
            .iter()
            .zip(enabled)
            .map(|(busy, &slots)| {
                let denom = wall.as_secs_f64() * slots as f64;
                if denom > 0.0 {
                    busy.as_secs_f64() / denom
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// A heterogeneous set of worker nodes behind one centralised controller.
///
/// Implements [`WorkerModel`], so it plugs directly into
/// [`askel_sim::SimEngine::with_workers`]. The controller keeps talking
/// in plain LP numbers; the cluster translates "LP = n" into "the first
/// `n` provisioned slots, in node order", charges each slot its owning
/// node's round-trip, scales durations by the node's speed, and accounts
/// busy time per node (see [`ClusterTelemetry`]). Clones share the
/// telemetry accumulator.
#[derive(Clone, Debug)]
pub struct Cluster {
    nodes: Vec<NodeSpec>,
    /// Slot index where each node's block starts; `starts[i] +
    /// nodes[i].slots()` is the block's end.
    starts: Vec<usize>,
    provisioned: usize,
    capacity: usize,
    telemetry: ClusterTelemetry,
}

impl Cluster {
    /// A cluster over `nodes` (slot blocks in the given order), initially
    /// enabled at full provisioned capacity.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        let mut starts = Vec::with_capacity(nodes.len());
        let mut total = 0usize;
        for n in &nodes {
            starts.push(total);
            total += n.slots();
        }
        let telemetry = ClusterTelemetry::for_nodes(&nodes);
        Cluster {
            nodes,
            starts,
            provisioned: total,
            capacity: total,
            telemetry,
        }
    }

    /// A shared handle onto this cluster's per-node busy-time accounting;
    /// keep a clone before moving the cluster into the simulator.
    pub fn telemetry(&self) -> ClusterTelemetry {
        self.telemetry.clone()
    }

    /// Sets the initially-enabled capacity (clamped to the provisioned
    /// total) — typically the controller's `initial_lp`.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.min(self.provisioned);
        self.sync_telemetry();
        self
    }

    /// Pushes the current enabled-per-node split into the shared
    /// telemetry handle.
    fn sync_telemetry(&self) {
        let enabled = self
            .enabled_per_node()
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        self.telemetry.set_enabled(enabled);
    }

    /// Total provisioned slots across all nodes (the LP ceiling).
    pub fn provisioned(&self) -> usize {
        self.provisioned
    }

    /// The nodes, in slot order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The node owning `slot`, if the slot is provisioned.
    pub fn node_of_slot(&self, slot: usize) -> Option<&NodeSpec> {
        self.node_index_of_slot(slot).map(|i| &self.nodes[i])
    }

    /// Index (in node order) of the node owning `slot`.
    fn node_index_of_slot(&self, slot: usize) -> Option<usize> {
        if slot >= self.provisioned {
            return None;
        }
        // Last node whose block starts at or before `slot`.
        let idx = match self.starts.binary_search(&slot) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        // Blocks of empty nodes share a start; walk to the owning one.
        self.nodes[idx..]
            .iter()
            .zip(&self.starts[idx..])
            .position(|(n, &s)| slot >= s && slot < s + n.slots())
            .map(|offset| idx + offset)
    }

    /// How many of each node's slots are enabled at the current capacity,
    /// as `(node, enabled)` pairs in slot order.
    pub fn enabled_per_node(&self) -> Vec<(&NodeSpec, usize)> {
        self.nodes
            .iter()
            .zip(&self.starts)
            .map(|(n, &start)| {
                let enabled = self.capacity.saturating_sub(start).min(n.slots());
                (n, enabled)
            })
            .collect()
    }

    /// `enabled/provisioned` per node, e.g. `master:2/2 worker:5/12` —
    /// the shape the dist benches print.
    pub fn utilization(&self) -> String {
        self.enabled_per_node()
            .iter()
            .map(|(n, e)| format!("{}:{}/{}", n.name(), e, n.slots()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl WorkerModel for Cluster {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn set_capacity(&mut self, n: usize) {
        self.capacity = n.min(self.provisioned);
        self.sync_telemetry();
    }

    fn chain_overhead(&self, slot: usize) -> TimeNs {
        self.node_of_slot(slot)
            .map(NodeSpec::round_trip)
            .unwrap_or(TimeNs::ZERO)
    }

    fn cost_factor(&self, slot: usize) -> f64 {
        self.node_of_slot(slot)
            .map(NodeSpec::cost_factor)
            .unwrap_or(1.0)
    }

    fn note_busy(&mut self, slot: usize, busy: TimeNs) {
        if let Some(node) = self.node_index_of_slot(slot) {
            self.telemetry.add(node, busy);
        }
    }

    fn slot_matches(&self, slot: usize, placement: &str) -> bool {
        self.node_of_slot(slot)
            .map(|n| n.name() == placement)
            .unwrap_or(false)
    }

    fn placement_enabled(&self, placement: &str) -> bool {
        self.enabled_per_node()
            .iter()
            .any(|(n, enabled)| *enabled > 0 && n.name() == placement)
    }

    fn slot_range(&self, placement: &str) -> Option<(usize, usize)> {
        // Node blocks are contiguous by construction, so the scheduler
        // can place onto a named node in O(log free) instead of probing
        // every free slot. Node names are unique per cluster.
        self.nodes
            .iter()
            .zip(&self.starts)
            .find(|(n, _)| n.name() == placement)
            .map(|(n, &start)| (start, start + n.slots()))
    }
}

/// What a provisioning decision did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProvisionAction {
    /// A node's slot block was brought online.
    Add,
    /// A node's slot block was taken offline.
    Retire,
}

/// One audited provisioning decision — the cluster-level counterpart of
/// `askel-adapt`'s `AdaptRecord`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvisionRecord {
    /// When the decision was taken (virtual or engine time).
    pub at: TimeNs,
    /// The policy's version counter after this change (1, 2, …).
    pub version: u64,
    /// The node that was added or retired.
    pub node: String,
    /// What was done.
    pub action: ProvisionAction,
    /// Enabled capacity (total slots) after the change.
    pub capacity: usize,
    /// The busy-share observations that justified it.
    pub why: String,
}

/// Accumulated **node-time**: the integral of enabled cluster capacity
/// over (virtual) time — `2 slots enabled for 3 s` charges 6 slot-seconds
/// — the cost signal the `askel-adapt` cost concern (`CostGuard`) reads.
/// Clones share the accumulator.
///
/// The meter is fed at explicit observation points:
/// [`observe`](NodeHoursMeter::observe) charges the elapsed time since
/// the previous observation at the capacity that *was* enabled across
/// that interval, then records the new capacity. Wire it into a
/// [`ProvisioningPolicy`] via [`metered`](ProvisioningPolicy::metered)
/// and every review point keeps the meter current — the same safe-point
/// cadence the `Reconfigurator` runs on, so adaptation rules read a
/// spend figure that is never staler than one safe point.
#[derive(Clone, Debug, Default)]
pub struct NodeHoursMeter {
    inner: Arc<Mutex<MeterInner>>,
}

#[derive(Debug, Default)]
struct MeterInner {
    /// Timestamp and enabled capacity at the last observation.
    last: Option<(TimeNs, usize)>,
    /// Slot-time charged so far (slot-seconds, in `TimeNs` units).
    accumulated: TimeNs,
}

impl NodeHoursMeter {
    /// A fresh meter at zero spend.
    pub fn new() -> Self {
        NodeHoursMeter::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MeterInner> {
        self.inner.lock().expect("node-hours meter poisoned")
    }

    /// One observation: charges the interval since the previous
    /// observation at the previously-enabled capacity, then records
    /// `enabled_slots` as current. The first observation charges
    /// nothing (it only anchors the meter). Out-of-order timestamps
    /// charge nothing for the negative interval.
    pub fn observe(&self, now: TimeNs, enabled_slots: usize) {
        let mut inner = self.lock();
        if let Some((at, slots)) = inner.last {
            let elapsed = now.saturating_sub(at);
            inner.accumulated += TimeNs(elapsed.0.saturating_mul(slots as u64));
        }
        inner.last = Some((now, enabled_slots));
    }

    /// Total slot-time charged so far (slot-seconds, as `TimeNs`).
    pub fn node_time(&self) -> TimeNs {
        self.lock().accumulated
    }

    /// Total spend in node-hours (slot-seconds / 3600).
    pub fn node_hours(&self) -> f64 {
        self.node_time().as_secs_f64() / 3600.0
    }
}

/// Dynamic node provisioning from per-node utilization — the ROADMAP's
/// "use the new utilization figures in decisions", and the actuation half
/// of the `Offload` story: the `Offload` rule (`askel-adapt`) moves a
/// subtree's *placement* onto an underloaded node, this policy decides
/// which nodes are *online* at all.
///
/// Capacity is prefix-based (slots come online in node order), so the
/// policy adds and retires whole node blocks at the **tail** of the slot
/// order: when the busiest enabled node's busy share crosses the
/// high-water mark and a later node is still (partly) offline, that
/// node's block is brought fully online; when the *last* enabled node's
/// share sits under the low-water mark, its block is retired. A cooldown
/// (in review points) keeps oscillating load from flapping nodes on and
/// off, exactly like the knob `Hysteresis` policy in `askel-adapt`.
///
/// Shares are **windowed to the last capacity change**: the policy
/// snapshots the per-node busy totals whenever it applies a change and
/// judges each review on the busy time accrued *since* — a freshly
/// added, saturated node is seen at its in-window share (not diluted by
/// the lifetime it spent offline), and a long-retired node's stale
/// history cannot mask a hot node below the high-water mark. (The
/// `Offload` rule, which fires at most once, reads the raw cumulative
/// shares.)
///
/// The policy is driven at explicit review points (typically the same
/// stream safe points that drive a `Reconfigurator`) and never touches
/// the cluster itself: [`review`](ProvisioningPolicy::review) returns the
/// new capacity for the caller to apply through its engine's LP channel
/// (`SimEngine::set_lp`, `SimLpControl::request`) — symmetric to how the
/// WCT controller actuates. Every change is logged as a
/// [`ProvisionRecord`] and, when wired via
/// [`announce_via`](ProvisioningPolicy::announce_via), announced as an
/// `(After, Reconfigured)` event — the same vocabulary as the tree
/// rewrites.
pub struct ProvisioningPolicy {
    high_water: f64,
    low_water: f64,
    cooldown_points: usize,
    min_capacity: usize,
    review_points: usize,
    last_change: Option<usize>,
    /// Per-node busy totals at the last applied change (`None` until
    /// one): the start of the current observation window.
    window_start: Option<Vec<TimeNs>>,
    version: u64,
    log: Vec<ProvisionRecord>,
    announce: Option<ProvisionAnnounce>,
    meter: Option<NodeHoursMeter>,
}

struct ProvisionAnnounce {
    registry: Arc<askel_events::ListenerRegistry>,
    subject: askel_skeletons::NodeId,
    kind: askel_skeletons::KindTag,
}

impl ProvisioningPolicy {
    /// A policy with the given busy-share water marks (clamped to
    /// `[0, 1]`, `low ≤ high`), no cooldown, and a minimum capacity of 1.
    pub fn new(high_water: f64, low_water: f64) -> Self {
        let high_water = high_water.clamp(0.0, 1.0);
        ProvisioningPolicy {
            high_water,
            low_water: low_water.clamp(0.0, high_water),
            cooldown_points: 0,
            min_capacity: 1,
            review_points: 0,
            last_change: None,
            window_start: None,
            version: 0,
            log: Vec::new(),
            announce: None,
            meter: None,
        }
    }

    /// Minimum review points between two capacity changes.
    pub fn cooldown(mut self, points: usize) -> Self {
        self.cooldown_points = points;
        self
    }

    /// Charges enabled capacity to `meter` at every review point, so the
    /// cost concern reads a node-time spend that tracks provisioning
    /// decisions (see [`NodeHoursMeter`]). Keep a clone of the meter.
    pub fn metered(mut self, meter: NodeHoursMeter) -> Self {
        self.meter = Some(meter);
        self
    }

    /// Never retires below this many enabled slots (≥ 1).
    pub fn min_capacity(mut self, n: usize) -> Self {
        self.min_capacity = n.max(1);
        self
    }

    /// Announces every applied change as an `(After, Reconfigured)` event
    /// through `registry`, attributed to the skeleton node `subject` of
    /// kind `kind` (typically the supervised program's root) — symmetric
    /// to the `Reconfigurator`'s tree-rewrite events.
    pub fn announce_via(
        mut self,
        registry: Arc<askel_events::ListenerRegistry>,
        subject: askel_skeletons::NodeId,
        kind: askel_skeletons::KindTag,
    ) -> Self {
        self.announce = Some(ProvisionAnnounce {
            registry,
            subject,
            kind,
        });
        self
    }

    /// Every applied provisioning change, in order.
    pub fn log(&self) -> &[ProvisionRecord] {
        &self.log
    }

    /// Number of applied changes so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// One review point: decides from the cluster's live busy shares
    /// whether to bring the next offline node online or retire the last
    /// online one. Returns the new total capacity for the caller to apply
    /// (`None` = hold). Deterministic: same telemetry, same decision.
    pub fn review(&mut self, telemetry: &ClusterTelemetry, now: TimeNs) -> Option<usize> {
        if let Some(meter) = &self.meter {
            meter.observe(now, telemetry.capacity());
        }
        self.review_points += 1;
        if let Some(last) = self.last_change {
            if self.review_points.saturating_sub(last) < self.cooldown_points {
                return None;
            }
        }
        // Window the shares to the busy time accrued since the last
        // applied change (before the first change, since construction).
        let busy = telemetry.busy_per_node();
        let delta: Vec<f64> = match &self.window_start {
            Some(start) => busy
                .iter()
                .zip(start)
                .map(|(b, s)| b.saturating_sub(*s).as_secs_f64())
                .collect(),
            None => busy.iter().map(|b| b.as_secs_f64()).collect(),
        };
        let total: f64 = delta.iter().sum();
        if total <= 0.0 {
            return None; // nothing observed in this window yet
        }
        let shares: Vec<f64> = delta.iter().map(|d| d / total).collect();
        let enabled = telemetry.enabled_per_node();
        let slots = telemetry.slots_per_node();
        let names = telemetry.names();

        // Add: the busiest enabled node is over the high-water mark and a
        // later block still has offline slots.
        let hottest = shares
            .iter()
            .zip(&enabled)
            .filter(|(_, &e)| e > 0)
            .map(|(s, _)| *s)
            .fold(0.0f64, f64::max);
        if hottest >= self.high_water {
            if let Some(i) = (0..slots.len()).find(|&i| enabled[i] < slots[i]) {
                let new_capacity: usize = slots[..=i].iter().sum();
                self.apply(
                    now,
                    names[i].clone(),
                    ProvisionAction::Add,
                    new_capacity,
                    format!(
                        "hottest enabled node at {:.0}% of windowed busy time >= {:.0}% \
                         high water; bringing `{}` online ({} slots)",
                        hottest * 100.0,
                        self.high_water * 100.0,
                        names[i],
                        slots[i]
                    ),
                    busy,
                );
                return Some(new_capacity);
            }
            // Everything is already online: fall through — the idle
            // tail node may still deserve retirement.
        }

        // Retire: the last enabled node sits under the low-water mark.
        let last = (0..enabled.len()).rev().find(|&i| enabled[i] > 0)?;
        if last == 0 {
            return None; // never retire the first node
        }
        let new_capacity: usize = slots[..last].iter().sum();
        if shares[last] <= self.low_water && new_capacity >= self.min_capacity {
            self.apply(
                now,
                names[last].clone(),
                ProvisionAction::Retire,
                new_capacity,
                format!(
                    "`{}` at {:.0}% of windowed busy time <= {:.0}% low water; \
                     retiring its {} slot(s)",
                    names[last],
                    shares[last] * 100.0,
                    self.low_water * 100.0,
                    slots[last]
                ),
                busy,
            );
            return Some(new_capacity);
        }
        None
    }

    fn apply(
        &mut self,
        now: TimeNs,
        node: String,
        action: ProvisionAction,
        capacity: usize,
        why: String,
        busy_now: Vec<TimeNs>,
    ) {
        self.version += 1;
        self.last_change = Some(self.review_points);
        // Start a fresh observation window at every applied change.
        self.window_start = Some(busy_now);
        if let Some(announce) = &self.announce {
            use askel_events::{Event, EventInfo, Payload, Trace, When, Where};
            let event = Event {
                node: announce.subject,
                kind: announce.kind,
                when: When::After,
                wher: Where::Reconfigured,
                index: askel_skeletons::InstanceId(self.version),
                trace: Trace::root(
                    announce.subject,
                    askel_skeletons::InstanceId(self.version),
                    announce.kind,
                ),
                timestamp: now,
                info: EventInfo::Reconfigured {
                    version: self.version,
                },
            };
            announce.registry.emit(&mut Payload::None, &event);
        }
        self.log.push(ProvisionRecord {
            at: now,
            version: self.version,
            node,
            action,
            capacity,
            why,
        });
    }
}

/// A [`ProvisioningPolicy`] mounted as a discrete-event scheduler
/// [`Component`]: review points fire on **virtual time** instead of being
/// hand-called between stream items, and an accepted decision actuates
/// through the scheduler's LP channel ([`Command::RequestLp`]) — the same
/// path an external controller uses. Review ticks only occur while the
/// simulated machine has work in flight, so an idle cluster is never
/// reviewed (and costs nothing to simulate).
///
/// The policy lives behind a shared handle ([`policy`]) so tests and
/// callers can read its [`ProvisioningPolicy::log`] after (or during) the
/// run.
///
/// [`policy`]: ProvisioningReview::policy
pub struct ProvisioningReview {
    policy: Arc<Mutex<ProvisioningPolicy>>,
    telemetry: ClusterTelemetry,
    every: TimeNs,
    next: Option<TimeNs>,
}

impl ProvisioningReview {
    /// Reviews `policy` against `telemetry` every `every` of virtual
    /// time, starting one interval after the simulation first needs a
    /// tick time.
    pub fn new(policy: ProvisioningPolicy, telemetry: ClusterTelemetry, every: TimeNs) -> Self {
        ProvisioningReview {
            policy: Arc::new(Mutex::new(policy)),
            telemetry,
            every,
            next: None,
        }
    }

    /// Shared handle onto the wrapped policy (decision log, version).
    pub fn policy(&self) -> Arc<Mutex<ProvisioningPolicy>> {
        Arc::clone(&self.policy)
    }
}

impl Component for ProvisioningReview {
    fn next_tick(&self, now: TimeNs) -> Option<TimeNs> {
        Some(self.next.unwrap_or(TimeNs(now.0 + self.every.0.max(1))))
    }

    fn tick(&mut self, now: TimeNs) -> Vec<Command> {
        self.next = Some(TimeNs(now.0 + self.every.0.max(1)));
        let mut policy = self.policy.lock().expect("provisioning policy poisoned");
        policy
            .review(&self.telemetry, now)
            .map(Command::RequestLp)
            .into_iter()
            .collect()
    }
}

impl std::fmt::Display for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster[{} nodes, {}/{} slots enabled: {}]",
            self.nodes.len(),
            self.capacity,
            self.provisioned,
            self.utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Cluster {
        Cluster::new(vec![
            NodeSpec::local("master", 2),
            NodeSpec::remote("worker", 12, TimeNs::from_millis(300)),
        ])
    }

    #[test]
    fn slots_map_to_nodes_in_order() {
        let c = two_node();
        assert_eq!(c.provisioned(), 14);
        assert_eq!(c.node_of_slot(0).unwrap().name(), "master");
        assert_eq!(c.node_of_slot(1).unwrap().name(), "master");
        assert_eq!(c.node_of_slot(2).unwrap().name(), "worker");
        assert_eq!(c.node_of_slot(13).unwrap().name(), "worker");
        assert!(c.node_of_slot(14).is_none());
    }

    #[test]
    fn local_slots_are_free_remote_slots_pay_the_round_trip() {
        let c = two_node();
        assert_eq!(c.chain_overhead(0), TimeNs::ZERO);
        assert_eq!(c.chain_overhead(1), TimeNs::ZERO);
        assert_eq!(c.chain_overhead(2), TimeNs::from_millis(300));
        assert_eq!(c.chain_overhead(13), TimeNs::from_millis(300));
        assert_eq!(c.chain_overhead(99), TimeNs::ZERO);
    }

    #[test]
    fn capacity_clamps_to_provisioned_slots() {
        let mut c = two_node().with_capacity(1);
        assert_eq!(c.capacity(), 1);
        c.set_capacity(9);
        assert_eq!(c.capacity(), 9);
        c.set_capacity(10_000);
        assert_eq!(c.capacity(), 14, "a cluster cannot exceed provisioning");
        c.set_capacity(0);
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn enabled_per_node_splits_capacity_across_blocks() {
        let mut c = two_node();
        c.set_capacity(5);
        let enabled: Vec<(String, usize)> = c
            .enabled_per_node()
            .into_iter()
            .map(|(n, e)| (n.name().to_string(), e))
            .collect();
        assert_eq!(enabled, vec![("master".into(), 2), ("worker".into(), 3)]);
        assert_eq!(c.utilization(), "master:2/2 worker:3/12");
    }

    #[test]
    fn empty_and_zero_slot_nodes_are_harmless() {
        let c = Cluster::new(vec![
            NodeSpec::local("idle", 0),
            NodeSpec::remote("r", 3, TimeNs::from_millis(10)),
        ]);
        assert_eq!(c.provisioned(), 3);
        assert_eq!(c.node_of_slot(0).unwrap().name(), "r");
        let empty = Cluster::new(vec![]);
        assert_eq!(empty.provisioned(), 0);
        assert!(empty.node_of_slot(0).is_none());
    }

    #[test]
    fn speeds_scale_cost_factors_per_slot() {
        let c = Cluster::new(vec![
            NodeSpec::local("fast", 1).with_speed(2.0),
            NodeSpec::remote("slow", 1, TimeNs::from_millis(10)).with_speed(0.5),
            NodeSpec::local("base", 1),
        ]);
        assert_eq!(c.cost_factor(0), 0.5, "2× speed halves durations");
        assert_eq!(c.cost_factor(1), 2.0, "half speed doubles durations");
        assert_eq!(c.cost_factor(2), 1.0);
        assert_eq!(c.cost_factor(99), 1.0, "unprovisioned slots are neutral");
        // Degenerate speeds fall back to baseline.
        assert_eq!(NodeSpec::local("x", 1).with_speed(0.0).speed(), 1.0);
        assert_eq!(NodeSpec::local("x", 1).with_speed(f64::NAN).speed(), 1.0);
    }

    #[test]
    fn telemetry_accumulates_busy_time_per_node() {
        let mut c = two_node();
        let telemetry = c.telemetry();
        c.note_busy(0, TimeNs::from_millis(5)); // master
        c.note_busy(1, TimeNs::from_millis(7)); // master
        c.note_busy(2, TimeNs::from_millis(11)); // worker
        c.note_busy(999, TimeNs::from_millis(100)); // unprovisioned: dropped
        assert_eq!(
            telemetry.busy_per_node(),
            vec![TimeNs::from_millis(12), TimeNs::from_millis(11)]
        );
        // Utilization: 12ms and 11ms over a 12ms wall.
        let enabled: Vec<usize> = c.enabled_per_node().iter().map(|(_, e)| *e).collect();
        let util = telemetry.utilization(TimeNs::from_millis(12), &enabled);
        assert!((util[0] - 0.5).abs() < 1e-9, "12ms over 2 slots × 12ms");
        assert!(util[1] > 0.0 && util[1] < 0.1);
    }

    #[test]
    fn slow_node_runs_simulated_muscles_slower() {
        use askel_sim::cost::TableCost;
        use askel_sim::SimEngine;
        use askel_skeletons::seq;

        let program = seq(|x: i64| x + 1);
        let cost = std::sync::Arc::new(TableCost::new(TimeNs::from_secs(1)));
        // One half-speed slot: a 1s muscle takes 2s of virtual time.
        let cluster = Cluster::new(vec![NodeSpec::local("slow", 1).with_speed(0.5)]);
        let telemetry = cluster.telemetry();
        let mut sim = SimEngine::with_workers(Box::new(cluster), cost);
        let out = sim.run(&program, 1).unwrap();
        assert_eq!(out.result, 2);
        assert_eq!(out.wct, TimeNs::from_secs(2));
        assert_eq!(telemetry.busy_per_node(), vec![TimeNs::from_secs(2)]);
    }

    #[test]
    fn display_summarizes_the_cluster() {
        let c = two_node().with_capacity(3);
        let s = format!("{c}");
        assert!(s.contains("master:2/2"), "{s}");
        assert!(s.contains("worker:1/12"), "{s}");
    }

    #[test]
    fn telemetry_tracks_enabled_slots_and_shares() {
        let mut c = two_node().with_capacity(3);
        let t = c.telemetry();
        assert_eq!(t.names(), vec!["master".to_string(), "worker".into()]);
        assert_eq!(t.node_index("worker"), Some(1));
        assert_eq!(t.node_index("nope"), None);
        assert_eq!(t.slots_per_node(), vec![2, 12]);
        assert_eq!(t.enabled_per_node(), vec![2, 1]);
        assert_eq!(t.capacity(), 3);
        c.set_capacity(14);
        assert_eq!(t.enabled_per_node(), vec![2, 12], "live view");
        assert_eq!(t.busy_share(), vec![0.0, 0.0], "nothing observed yet");
        c.note_busy(0, TimeNs::from_millis(30)); // master
        c.note_busy(2, TimeNs::from_millis(10)); // worker
        let shares = t.busy_share();
        assert!((shares[0] - 0.75).abs() < 1e-9, "{shares:?}");
        assert!((shares[1] - 0.25).abs() < 1e-9, "{shares:?}");
    }

    #[test]
    fn placement_maps_to_named_slots() {
        let mut c = two_node().with_capacity(2);
        assert!(c.slot_matches(0, "master"));
        assert!(!c.slot_matches(0, "worker"));
        assert!(c.slot_matches(5, "worker"));
        assert!(!c.slot_matches(99, "worker"), "unprovisioned slot");
        // Enabled = capacity prefix: the worker block is offline at 2.
        assert!(c.placement_enabled("master"));
        assert!(!c.placement_enabled("worker"));
        c.set_capacity(3);
        assert!(c.placement_enabled("worker"));
        assert!(!c.placement_enabled("unknown-node"));
    }

    #[test]
    fn placed_subtree_runs_on_its_node_in_the_sim() {
        use askel_sim::cost::TableCost;
        use askel_sim::SimEngine;
        use askel_skeletons::{map, seq};

        let program: askel_skeletons::Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0] * 2),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        let run = |placed: bool| {
            let cluster = Cluster::new(vec![
                NodeSpec::local("edge", 1),
                NodeSpec::remote("hub", 2, TimeNs::ZERO),
            ]);
            let telemetry = cluster.telemetry();
            let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
            let mut sim = SimEngine::with_workers(Box::new(cluster), cost);
            let skel = if placed {
                program.placed_at(program.id(), "hub").unwrap()
            } else {
                program.clone()
            };
            let out = sim.run(&skel, vec![1, 2, 3]).unwrap();
            (out.result, telemetry.busy_per_node())
        };
        let (unplaced_result, unplaced_busy) = run(false);
        let (placed_result, placed_busy) = run(true);
        assert_eq!(unplaced_result, 12);
        assert_eq!(placed_result, 12, "placement never changes results");
        assert!(
            unplaced_busy[0] > TimeNs::ZERO,
            "unplaced work uses the lowest slot (edge): {unplaced_busy:?}"
        );
        assert_eq!(
            placed_busy[0],
            TimeNs::ZERO,
            "placed work avoids the edge node entirely: {placed_busy:?}"
        );
        assert!(placed_busy[1] > TimeNs::ZERO);
    }

    #[test]
    fn placement_falls_back_when_its_node_is_offline() {
        use askel_sim::cost::TableCost;
        use askel_sim::SimEngine;
        use askel_skeletons::seq;

        let program = seq(|x: i64| x + 1).labeled("leaf");
        let placed = program.placed_at(program.id(), "hub").unwrap();
        // Capacity 1 = only the edge slot: "hub" names no enabled slot,
        // so the placed task must run on the edge instead of stalling.
        let cluster = Cluster::new(vec![
            NodeSpec::local("edge", 1),
            NodeSpec::remote("hub", 2, TimeNs::ZERO),
        ])
        .with_capacity(1);
        let telemetry = cluster.telemetry();
        let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
        let mut sim = SimEngine::with_workers(Box::new(cluster), cost);
        let out = sim.run(&placed, 41).unwrap();
        assert_eq!(out.result, 42);
        assert!(telemetry.busy_per_node()[0] > TimeNs::ZERO);
        assert_eq!(telemetry.busy_per_node()[1], TimeNs::ZERO);
    }

    #[test]
    fn provisioning_adds_and_retires_tail_nodes_with_cooldown() {
        let c = Cluster::new(vec![
            NodeSpec::local("edge", 1),
            NodeSpec::remote("hub", 3, TimeNs::from_millis(10)),
        ])
        .with_capacity(1);
        let t = c.telemetry();
        let mut policy = ProvisioningPolicy::new(0.8, 0.1).cooldown(3);

        // Nothing observed: hold.
        assert_eq!(policy.review(&t, TimeNs::from_secs(1)), None);

        // All busy time on the edge: over the high-water mark → add hub.
        t.add(0, TimeNs::from_secs(10));
        let cap = policy.review(&t, TimeNs::from_secs(2));
        assert_eq!(cap, Some(4), "edge block (1) + hub block (3)");
        t.set_enabled(vec![1, 3]); // the caller applied it (via set_lp)

        // Still skewed, but everything is online → hold; and the next
        // review is inside the cooldown anyway.
        assert_eq!(policy.review(&t, TimeNs::from_secs(3)), None);

        // Load continues on the edge while the hub stays idle: once the
        // cooldown elapses the hub is retired (windowed shares — the
        // post-add window must see traffic to judge).
        t.add(0, TimeNs::from_secs(5));
        assert_eq!(policy.review(&t, TimeNs::from_secs(4)), None, "cooldown");
        let cap = policy.review(&t, TimeNs::from_secs(5));
        assert_eq!(cap, Some(1), "hub retired, back to the edge block");

        let log = policy.log();
        assert_eq!(log.len(), 2);
        assert_eq!(
            (log[0].action, log[0].node.as_str()),
            (ProvisionAction::Add, "hub")
        );
        assert_eq!(log[0].capacity, 4);
        assert_eq!(
            (log[1].action, log[1].node.as_str()),
            (ProvisionAction::Retire, "hub")
        );
        assert_eq!(log[1].capacity, 1);
        assert_eq!(policy.version(), 2);
        assert!(log.iter().all(|r| !r.why.is_empty()));
    }

    #[test]
    fn provisioning_judges_a_fresh_node_on_its_window_not_its_lifetime() {
        // The flap scenario: the edge accumulated a huge lifetime busy
        // total before the hub came online. Post-add, the hub does all
        // the work — its *lifetime* share is tiny, but its *windowed*
        // share is ~100%, so it must NOT be retired; and the idle edge's
        // stale history must not mask the hub from the high-water check.
        let c = Cluster::new(vec![
            NodeSpec::local("edge", 1),
            NodeSpec::remote("hub", 3, TimeNs::ZERO),
        ])
        .with_capacity(1);
        let t = c.telemetry();
        let mut policy = ProvisioningPolicy::new(0.8, 0.1).cooldown(1);
        t.add(0, TimeNs::from_secs(100)); // long edge-only history
        assert_eq!(policy.review(&t, TimeNs::from_secs(1)), Some(4), "add hub");
        t.set_enabled(vec![1, 3]);
        // The hub now runs saturated; the edge is idle. In-window share:
        // hub 8s / 8s = 100%, edge 0% — lifetime share would be ~7%.
        t.add(1, TimeNs::from_secs(8));
        assert_eq!(
            policy.review(&t, TimeNs::from_secs(2)),
            None,
            "a saturated fresh node is not retired (no add possible either)"
        );
        assert_eq!(policy.log().len(), 1, "no flap: {:?}", policy.log());
    }

    #[test]
    fn provisioning_never_retires_the_first_node_or_goes_below_min() {
        let c = Cluster::new(vec![NodeSpec::local("only", 2)]);
        let t = c.telemetry();
        let mut policy = ProvisioningPolicy::new(0.9, 0.5);
        t.add(0, TimeNs::from_millis(1));
        // Share of "only" is 1.0 ≥ high water but there is nothing to
        // add; and it is the first node, so it can never be retired.
        assert_eq!(policy.review(&t, TimeNs::ZERO), None);
        assert!(policy.log().is_empty());
    }

    #[test]
    fn slot_range_agrees_with_slot_matches() {
        let c = Cluster::new(vec![
            NodeSpec::local("idle", 0),
            NodeSpec::local("master", 2),
            NodeSpec::remote("worker", 12, TimeNs::from_millis(300)),
        ]);
        assert_eq!(c.slot_range("master"), Some((0, 2)));
        assert_eq!(c.slot_range("worker"), Some((2, 14)));
        assert_eq!(c.slot_range("idle"), Some((0, 0)), "empty block");
        assert_eq!(c.slot_range("nope"), None);
        for slot in 0..c.provisioned() {
            for name in ["master", "worker", "idle"] {
                let (lo, hi) = c.slot_range(name).unwrap();
                assert_eq!(
                    c.slot_matches(slot, name),
                    slot >= lo && slot < hi,
                    "slot {slot} vs {name}"
                );
            }
        }
    }

    #[test]
    fn provisioning_review_component_grows_the_cluster_mid_stream() {
        use askel_sim::cost::TableCost;
        use askel_sim::SimEngine;
        use askel_skeletons::seq;

        // One hot edge slot, a hub that can come online: the component
        // reviews every virtual second while items stream and must add
        // the hub without any hand-called review points.
        let cluster = Cluster::new(vec![
            NodeSpec::local("edge", 1),
            NodeSpec::remote("hub", 3, TimeNs::ZERO),
        ])
        .with_capacity(1);
        let telemetry = cluster.telemetry();
        let policy = ProvisioningPolicy::new(0.5, 0.0);
        let review = ProvisioningReview::new(policy, telemetry.clone(), TimeNs::from_secs(1));
        let handle = review.policy();
        let mut components: Vec<Box<dyn Component>> = vec![Box::new(review)];

        let program = seq(|x: i64| x + 1);
        let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
        let mut sim = SimEngine::with_workers(Box::new(cluster), cost);
        let mut results = Vec::new();
        let report = sim.run_stream(
            4,
            |i| (i < 12).then(|| (program.clone(), i as i64)),
            |_i, r| results.push(r.unwrap()),
            &mut components,
        );
        assert_eq!(results.len(), 12);
        assert_eq!(report.items, 12);
        assert!(report.events > 0);
        let log = handle.lock().unwrap();
        assert!(
            log.log()
                .iter()
                .any(|r| r.action == ProvisionAction::Add && r.node == "hub"),
            "the review component must bring the hub online: {:?}",
            log.log()
        );
        assert_eq!(telemetry.capacity(), 4, "capacity actuated via RequestLp");
    }

    #[test]
    fn provisioning_announces_reconfigured_events() {
        use askel_events::{Event, FnListener, Payload, Where};
        use askel_skeletons::KindTag;
        use std::sync::atomic::{AtomicUsize, Ordering};

        let registry = askel_events::ListenerRegistry::new();
        let seen = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&seen);
        registry.add_listener(Arc::new(FnListener(
            move |_: &mut Payload<'_>, e: &Event| {
                if e.wher == Where::Reconfigured {
                    assert_eq!(e.info.reconfigured_version(), Some(1));
                    sink.fetch_add(1, Ordering::SeqCst);
                }
            },
        )));
        let c = Cluster::new(vec![
            NodeSpec::local("edge", 1),
            NodeSpec::remote("hub", 1, TimeNs::ZERO),
        ])
        .with_capacity(1);
        let t = c.telemetry();
        let subject = askel_skeletons::NodeId(7);
        let mut policy = ProvisioningPolicy::new(0.5, 0.0).announce_via(
            Arc::clone(&registry),
            subject,
            KindTag::Map,
        );
        t.add(0, TimeNs::from_secs(1));
        assert_eq!(policy.review(&t, TimeNs::from_secs(1)), Some(2));
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }
}
