//! Distributed worker models for the simulator — the paper's §4/§6
//! future-work direction, realized: "the same autonomic loop over a
//! distributed set of workers, adding or removing workers like adding or
//! removing threads in a centralised manner".
//!
//! A [`Cluster`] is an ordered set of [`NodeSpec`]s, each contributing a
//! block of worker slots to the simulator. Slots come online in node
//! order as the controller raises the LP (the simulator always fills the
//! lowest free slot), so placing local nodes first means remote capacity
//! is only recruited once local capacity is exhausted — and every task
//! chain run on a remote node pays that node's communication round-trip
//! in virtual time, which the controller observes through the ordinary
//! event stream and compensates for by provisioning more workers.
//!
//! In the crate layering (see `docs/ARCHITECTURE.md`), this sits above
//! the simulator: a [`Cluster`] is an `askel_sim` worker model, driven
//! by the same centralised event → analyze → plan → resize loop that
//! scales the threaded engine's work-stealing pool — the paper's
//! "adding or removing workers like adding or removing threads".
//!
//! ```
//! use std::sync::Arc;
//! use askel_dist::{Cluster, NodeSpec};
//! use askel_sim::{cost::TableCost, SimEngine};
//! use askel_skeletons::{map, seq, TimeNs};
//!
//! let cluster = Cluster::new(vec![
//!     NodeSpec::local("master", 2),
//!     NodeSpec::remote("worker-node", 4, TimeNs::from_millis(250)),
//! ])
//! .with_capacity(2); // start on the master only
//!
//! let program = map(
//!     |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
//!     seq(|v: Vec<i64>| v[0]),
//!     |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
//! );
//! let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
//! let mut sim = SimEngine::with_workers(Box::new(cluster), cost);
//! let out = sim.run(&program, vec![1, 2, 3]).unwrap();
//! assert_eq!(out.result, 6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::{Arc, Mutex};

use askel_sim::workers::WorkerModel;
use askel_skeletons::TimeNs;

/// One node of a cluster: a named block of worker slots with a per-task
/// communication round-trip (zero for local nodes) and a relative
/// execution speed (1.0 = baseline).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpec {
    name: String,
    slots: usize,
    round_trip: TimeNs,
    speed: f64,
}

impl NodeSpec {
    /// A local node: `slots` workers with no communication overhead
    /// (threads of the controller's own process).
    pub fn local(name: impl Into<String>, slots: usize) -> Self {
        NodeSpec {
            name: name.into(),
            slots,
            round_trip: TimeNs::ZERO,
            speed: 1.0,
        }
    }

    /// A remote node: `slots` workers, each executed task chain paying
    /// `round_trip` of virtual time for dispatch plus result return.
    pub fn remote(name: impl Into<String>, slots: usize, round_trip: TimeNs) -> Self {
        NodeSpec {
            name: name.into(),
            slots,
            round_trip,
            speed: 1.0,
        }
    }

    /// Sets the node's relative execution speed: 1.0 is the baseline,
    /// 2.0 runs muscles twice as fast (durations halved), 0.5 at half
    /// speed (durations doubled). Non-positive or non-finite values are
    /// treated as the baseline.
    pub fn with_speed(mut self, speed: f64) -> Self {
        self.speed = if speed.is_finite() && speed > 0.0 {
            speed
        } else {
            1.0
        };
        self
    }

    /// The node's relative execution speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The cost multiplier the simulator applies to durations on this
    /// node (`1 / speed`).
    pub fn cost_factor(&self) -> f64 {
        1.0 / self.speed
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Provisioned worker slots on this node.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Communication round-trip charged per task chain (zero ⇒ local).
    pub fn round_trip(&self) -> TimeNs {
        self.round_trip
    }

    /// Whether this node is local (no communication overhead).
    pub fn is_local(&self) -> bool {
        self.round_trip == TimeNs::ZERO
    }
}

/// Shared handle onto a cluster's per-node busy-time accounting.
///
/// The cluster is moved into the simulator
/// ([`askel_sim::SimEngine::with_workers`] takes it by value), so
/// telemetry is surfaced through this handle: keep a clone
/// ([`Cluster::telemetry`]) before handing the cluster over, and read
/// per-node utilization while or after the simulation runs.
#[derive(Clone, Debug, Default)]
pub struct ClusterTelemetry {
    busy: Arc<Mutex<Vec<TimeNs>>>,
}

impl ClusterTelemetry {
    fn for_nodes(n: usize) -> Self {
        ClusterTelemetry {
            busy: Arc::new(Mutex::new(vec![TimeNs::ZERO; n])),
        }
    }

    fn add(&self, node: usize, busy: TimeNs) {
        let mut slots = self.busy.lock().expect("cluster telemetry poisoned");
        if let Some(t) = slots.get_mut(node) {
            *t += busy;
        }
    }

    /// Accumulated busy virtual time per node, in node order (scaled
    /// muscle durations plus communication round-trips).
    pub fn busy_per_node(&self) -> Vec<TimeNs> {
        self.busy
            .lock()
            .expect("cluster telemetry poisoned")
            .clone()
    }

    /// `busy / (wall × enabled_slots)` per node — the utilization figures
    /// the dist example and benches print. `enabled` comes from the
    /// cluster that produced this handle (`Cluster::enabled_per_node`).
    pub fn utilization(&self, wall: TimeNs, enabled: &[usize]) -> Vec<f64> {
        self.busy_per_node()
            .iter()
            .zip(enabled)
            .map(|(busy, &slots)| {
                let denom = wall.as_secs_f64() * slots as f64;
                if denom > 0.0 {
                    busy.as_secs_f64() / denom
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// A heterogeneous set of worker nodes behind one centralised controller.
///
/// Implements [`WorkerModel`], so it plugs directly into
/// [`askel_sim::SimEngine::with_workers`]. The controller keeps talking
/// in plain LP numbers; the cluster translates "LP = n" into "the first
/// `n` provisioned slots, in node order", charges each slot its owning
/// node's round-trip, scales durations by the node's speed, and accounts
/// busy time per node (see [`ClusterTelemetry`]). Clones share the
/// telemetry accumulator.
#[derive(Clone, Debug)]
pub struct Cluster {
    nodes: Vec<NodeSpec>,
    /// Slot index where each node's block starts; `starts[i] +
    /// nodes[i].slots()` is the block's end.
    starts: Vec<usize>,
    provisioned: usize,
    capacity: usize,
    telemetry: ClusterTelemetry,
}

impl Cluster {
    /// A cluster over `nodes` (slot blocks in the given order), initially
    /// enabled at full provisioned capacity.
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        let mut starts = Vec::with_capacity(nodes.len());
        let mut total = 0usize;
        for n in &nodes {
            starts.push(total);
            total += n.slots();
        }
        let telemetry = ClusterTelemetry::for_nodes(nodes.len());
        Cluster {
            nodes,
            starts,
            provisioned: total,
            capacity: total,
            telemetry,
        }
    }

    /// A shared handle onto this cluster's per-node busy-time accounting;
    /// keep a clone before moving the cluster into the simulator.
    pub fn telemetry(&self) -> ClusterTelemetry {
        self.telemetry.clone()
    }

    /// Sets the initially-enabled capacity (clamped to the provisioned
    /// total) — typically the controller's `initial_lp`.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.min(self.provisioned);
        self
    }

    /// Total provisioned slots across all nodes (the LP ceiling).
    pub fn provisioned(&self) -> usize {
        self.provisioned
    }

    /// The nodes, in slot order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The node owning `slot`, if the slot is provisioned.
    pub fn node_of_slot(&self, slot: usize) -> Option<&NodeSpec> {
        self.node_index_of_slot(slot).map(|i| &self.nodes[i])
    }

    /// Index (in node order) of the node owning `slot`.
    fn node_index_of_slot(&self, slot: usize) -> Option<usize> {
        if slot >= self.provisioned {
            return None;
        }
        // Last node whose block starts at or before `slot`.
        let idx = match self.starts.binary_search(&slot) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        // Blocks of empty nodes share a start; walk to the owning one.
        self.nodes[idx..]
            .iter()
            .zip(&self.starts[idx..])
            .position(|(n, &s)| slot >= s && slot < s + n.slots())
            .map(|offset| idx + offset)
    }

    /// How many of each node's slots are enabled at the current capacity,
    /// as `(node, enabled)` pairs in slot order.
    pub fn enabled_per_node(&self) -> Vec<(&NodeSpec, usize)> {
        self.nodes
            .iter()
            .zip(&self.starts)
            .map(|(n, &start)| {
                let enabled = self.capacity.saturating_sub(start).min(n.slots());
                (n, enabled)
            })
            .collect()
    }

    /// `enabled/provisioned` per node, e.g. `master:2/2 worker:5/12` —
    /// the shape the dist benches print.
    pub fn utilization(&self) -> String {
        self.enabled_per_node()
            .iter()
            .map(|(n, e)| format!("{}:{}/{}", n.name(), e, n.slots()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl WorkerModel for Cluster {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn set_capacity(&mut self, n: usize) {
        self.capacity = n.min(self.provisioned);
    }

    fn chain_overhead(&self, slot: usize) -> TimeNs {
        self.node_of_slot(slot)
            .map(NodeSpec::round_trip)
            .unwrap_or(TimeNs::ZERO)
    }

    fn cost_factor(&self, slot: usize) -> f64 {
        self.node_of_slot(slot)
            .map(NodeSpec::cost_factor)
            .unwrap_or(1.0)
    }

    fn note_busy(&mut self, slot: usize, busy: TimeNs) {
        if let Some(node) = self.node_index_of_slot(slot) {
            self.telemetry.add(node, busy);
        }
    }
}

impl std::fmt::Display for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster[{} nodes, {}/{} slots enabled: {}]",
            self.nodes.len(),
            self.capacity,
            self.provisioned,
            self.utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> Cluster {
        Cluster::new(vec![
            NodeSpec::local("master", 2),
            NodeSpec::remote("worker", 12, TimeNs::from_millis(300)),
        ])
    }

    #[test]
    fn slots_map_to_nodes_in_order() {
        let c = two_node();
        assert_eq!(c.provisioned(), 14);
        assert_eq!(c.node_of_slot(0).unwrap().name(), "master");
        assert_eq!(c.node_of_slot(1).unwrap().name(), "master");
        assert_eq!(c.node_of_slot(2).unwrap().name(), "worker");
        assert_eq!(c.node_of_slot(13).unwrap().name(), "worker");
        assert!(c.node_of_slot(14).is_none());
    }

    #[test]
    fn local_slots_are_free_remote_slots_pay_the_round_trip() {
        let c = two_node();
        assert_eq!(c.chain_overhead(0), TimeNs::ZERO);
        assert_eq!(c.chain_overhead(1), TimeNs::ZERO);
        assert_eq!(c.chain_overhead(2), TimeNs::from_millis(300));
        assert_eq!(c.chain_overhead(13), TimeNs::from_millis(300));
        assert_eq!(c.chain_overhead(99), TimeNs::ZERO);
    }

    #[test]
    fn capacity_clamps_to_provisioned_slots() {
        let mut c = two_node().with_capacity(1);
        assert_eq!(c.capacity(), 1);
        c.set_capacity(9);
        assert_eq!(c.capacity(), 9);
        c.set_capacity(10_000);
        assert_eq!(c.capacity(), 14, "a cluster cannot exceed provisioning");
        c.set_capacity(0);
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn enabled_per_node_splits_capacity_across_blocks() {
        let mut c = two_node();
        c.set_capacity(5);
        let enabled: Vec<(String, usize)> = c
            .enabled_per_node()
            .into_iter()
            .map(|(n, e)| (n.name().to_string(), e))
            .collect();
        assert_eq!(enabled, vec![("master".into(), 2), ("worker".into(), 3)]);
        assert_eq!(c.utilization(), "master:2/2 worker:3/12");
    }

    #[test]
    fn empty_and_zero_slot_nodes_are_harmless() {
        let c = Cluster::new(vec![
            NodeSpec::local("idle", 0),
            NodeSpec::remote("r", 3, TimeNs::from_millis(10)),
        ]);
        assert_eq!(c.provisioned(), 3);
        assert_eq!(c.node_of_slot(0).unwrap().name(), "r");
        let empty = Cluster::new(vec![]);
        assert_eq!(empty.provisioned(), 0);
        assert!(empty.node_of_slot(0).is_none());
    }

    #[test]
    fn speeds_scale_cost_factors_per_slot() {
        let c = Cluster::new(vec![
            NodeSpec::local("fast", 1).with_speed(2.0),
            NodeSpec::remote("slow", 1, TimeNs::from_millis(10)).with_speed(0.5),
            NodeSpec::local("base", 1),
        ]);
        assert_eq!(c.cost_factor(0), 0.5, "2× speed halves durations");
        assert_eq!(c.cost_factor(1), 2.0, "half speed doubles durations");
        assert_eq!(c.cost_factor(2), 1.0);
        assert_eq!(c.cost_factor(99), 1.0, "unprovisioned slots are neutral");
        // Degenerate speeds fall back to baseline.
        assert_eq!(NodeSpec::local("x", 1).with_speed(0.0).speed(), 1.0);
        assert_eq!(NodeSpec::local("x", 1).with_speed(f64::NAN).speed(), 1.0);
    }

    #[test]
    fn telemetry_accumulates_busy_time_per_node() {
        let mut c = two_node();
        let telemetry = c.telemetry();
        c.note_busy(0, TimeNs::from_millis(5)); // master
        c.note_busy(1, TimeNs::from_millis(7)); // master
        c.note_busy(2, TimeNs::from_millis(11)); // worker
        c.note_busy(999, TimeNs::from_millis(100)); // unprovisioned: dropped
        assert_eq!(
            telemetry.busy_per_node(),
            vec![TimeNs::from_millis(12), TimeNs::from_millis(11)]
        );
        // Utilization: 12ms and 11ms over a 12ms wall.
        let enabled: Vec<usize> = c.enabled_per_node().iter().map(|(_, e)| *e).collect();
        let util = telemetry.utilization(TimeNs::from_millis(12), &enabled);
        assert!((util[0] - 0.5).abs() < 1e-9, "12ms over 2 slots × 12ms");
        assert!(util[1] > 0.0 && util[1] < 0.1);
    }

    #[test]
    fn slow_node_runs_simulated_muscles_slower() {
        use askel_sim::cost::TableCost;
        use askel_sim::SimEngine;
        use askel_skeletons::seq;

        let program = seq(|x: i64| x + 1);
        let cost = std::sync::Arc::new(TableCost::new(TimeNs::from_secs(1)));
        // One half-speed slot: a 1s muscle takes 2s of virtual time.
        let cluster = Cluster::new(vec![NodeSpec::local("slow", 1).with_speed(0.5)]);
        let telemetry = cluster.telemetry();
        let mut sim = SimEngine::with_workers(Box::new(cluster), cost);
        let out = sim.run(&program, 1).unwrap();
        assert_eq!(out.result, 2);
        assert_eq!(out.wct, TimeNs::from_secs(2));
        assert_eq!(telemetry.busy_per_node(), vec![TimeNs::from_secs(2)]);
    }

    #[test]
    fn display_summarizes_the_cluster() {
        let c = two_node().with_capacity(3);
        let s = format!("{c}");
        assert!(s.contains("master:2/2"), "{s}");
        assert!(s.contains("worker:1/12"), "{s}");
    }
}
