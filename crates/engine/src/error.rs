//! Engine-level failure values.

use askel_skeletons::EvalError;

/// Why a submission failed.
///
/// The engine never unwinds across the pool: muscle panics are caught at
/// the task boundary, converted into `MusclePanic`, and delivered through
/// the submission's future.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A structural error detected while interpreting the AST (same
    /// vocabulary as the sequential reference interpreter).
    Eval(EvalError),
    /// A muscle panicked; the payload is the panic message when it was a
    /// string, or a placeholder otherwise.
    MusclePanic(String),
    /// The engine detected an internal inconsistency (e.g. a fan-out
    /// child completing its join twice after a racing failure). The
    /// submission is poisoned and reports this instead of panicking the
    /// worker thread that noticed.
    Internal(&'static str),
    /// The engine shut down before the submission finished.
    Shutdown,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Eval(e) => write!(f, "structural error: {e}"),
            EngineError::MusclePanic(msg) => write!(f, "muscle panicked: {msg}"),
            EngineError::Internal(msg) => write!(f, "engine internal error: {msg}"),
            EngineError::Shutdown => write!(f, "engine shut down"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

/// Renders a caught panic payload as a message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::NodeId;

    #[test]
    fn display_forms() {
        let e = EngineError::Eval(EvalError::EmptySplit { node: NodeId(1) });
        assert!(e.to_string().contains("structural error"));
        let e = EngineError::MusclePanic("boom".into());
        assert!(e.to_string().contains("boom"));
        assert!(EngineError::Shutdown.to_string().contains("shut down"));
    }

    #[test]
    fn panic_messages_extract_strings() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(p.as_ref()), "owned");
        let p: Box<dyn std::any::Any + Send> = Box::new(42i32);
        assert_eq!(panic_message(p.as_ref()), "<non-string panic payload>");
    }
}
