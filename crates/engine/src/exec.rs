//! The continuation-passing interpreter.
//!
//! Execution discipline (mirrored exactly by the discrete-event simulator,
//! so both engines raise the same event sequences):
//!
//! * kinds that own muscles (`seq`, `map`, `fork`, `d&C`, `while`, `if`)
//!   run each muscle inside **one guarded step**, emitting the
//!   bracketing events on the thread that executes it;
//! * purely structural kinds (`farm`, `pipe`, `for`) emit their
//!   skeleton-level events inline on the scheduling/continuation thread —
//!   they have no muscle for the thread guarantee to bind to;
//! * `map`/`fork`/`d&C` children are fanned out via a [`Join`]; the
//!   merge is started by the last child to finish, on its thread;
//! * every step body (muscle + listeners + continuation) is guarded
//!   ([`SubCtx::guarded`]): a panic poisons the submission and
//!   short-circuits its remaining steps.
//!
//! Dispatch detail: a fan-out hands all children *but the last* to the
//! pool — one direct submit for the binary d&C case, one batch (one
//! queue-lock acquisition, one wake-up sweep) for wider splits — and
//! **descends into the last child inline in the parent's own task**,
//! like rayon's `join`: sequential by default, parallel when workers
//! are idle and steal the batched siblings. Single-continuation steps
//! (pipe stages, while/for iterations, the fan-out merge returned by
//! [`Join::complete`] to its last-completing worker, the last child
//! itself) go through [`run_step`]: inline on the current worker with
//! no closure box and no dispatch while the depth cap allows, then via
//! the pool's TLS next-task slot (`ResizablePool::submit_next`) — one
//! trip through the worker loop that resets the stack — and from
//! non-worker threads (the initial submission) a plain pool submit.
//! Steady-state chains therefore touch neither deque nor injector (see
//! `docs/ARCHITECTURE.md`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use askel_events::{Event, EventInfo, ListenerRegistry, Payload, Trace, When, Where};
use askel_pool::{ResizablePool, Task};
use askel_skeletons::{Clock, Data, EvalError, InstanceId, Node, NodeKind, Skel};

use crate::error::{panic_message, EngineError};
use crate::future::{pair, SkelFuture};
use crate::metrics::{EngineMetrics, SpanProbe};

/// Continuation invoked with a node's result, on the thread that produced
/// it.
///
/// The `Join` variant is the fan-out fast path: instead of boxing a
/// fresh closure (plus `Arc` bumps for the parent node and trace) for
/// every child, a child carries only the shared join handle and its
/// slot index — the parent context lives once, inside the [`Join`].
type BoxedCont = Box<dyn FnOnce(&Arc<SubCtx>, Data) + Send>;

enum Cont {
    /// A boxed general continuation.
    F(BoxedCont),
    /// The k-th child of a fan-out completes into its join.
    Join { join: Arc<Join>, k: usize },
}

impl Cont {
    fn f(f: impl FnOnce(&Arc<SubCtx>, Data) + Send + 'static) -> Self {
        Cont::F(Box::new(f))
    }

    fn run(self, ctx: &Arc<SubCtx>, mut data: Data) {
        match self {
            Cont::F(f) => f(ctx, data),
            Cont::Join { join, k } => {
                ctx.emit(
                    &join.node,
                    &join.trace,
                    join.inst,
                    When::After,
                    Where::NestedSkeleton,
                    EventInfo::ChildIndex(k),
                    &mut Payload::Single(&mut data),
                );
                match join.complete(k, data) {
                    Ok(Some((slots, cont))) => spawn_merge(
                        ctx,
                        Arc::clone(&join.node),
                        join.trace.clone(),
                        join.inst,
                        slots,
                        cont,
                    ),
                    Ok(None) => {}
                    // A racing failure (e.g. a sibling's poisoned retry
                    // path) left the join inconsistent: poison the
                    // submission instead of panicking the worker.
                    Err(msg) => ctx.fail(EngineError::Internal(msg)),
                }
            }
        }
    }
}

/// Per-submission context: engine services plus the poisoning machinery.
struct SubCtx {
    pool: ResizablePool,
    registry: Arc<ListenerRegistry>,
    clock: Arc<dyn Clock>,
    /// Whether any listener was registered when this submission started.
    /// Sampled once at submit time: when false, the whole event path —
    /// instance ids, trace extension (an allocation per scheduled node)
    /// and emission — is skipped for the submission's lifetime.
    tracing: bool,
    /// Shared zero-allocation stand-in trace used when `tracing` is off.
    empty_trace: Trace,
    /// Span probe for the metrics hub, sampled once at submit time like
    /// `tracing`: `None` whenever the hub was disabled, making every
    /// per-step check a plain discriminant test.
    span: Option<SpanProbe>,
    failed: AtomicBool,
    fail_fn: Box<dyn Fn(EngineError) + Send + Sync>,
}

impl SubCtx {
    fn fail(&self, err: EngineError) {
        self.failed.store(true, Ordering::SeqCst);
        if let Some(span) = &self.span {
            span.finish(&*self.clock);
        }
        (self.fail_fn)(err); // the promise keeps only the first resolution
    }

    /// Runs a step now: short-circuits if the submission is poisoned,
    /// poisons it if the body panics. The guard both inline execution
    /// and pool tasks run under — a step behaves identically wherever
    /// it executes.
    fn guarded(self: &Arc<Self>, f: impl FnOnce(&Arc<SubCtx>)) {
        if self.failed.load(Ordering::SeqCst) {
            return;
        }
        if let Some(span) = &self.span {
            span.note_start(&*self.clock);
        }
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(self))) {
            self.fail(EngineError::MusclePanic(panic_message(p.as_ref())));
        }
    }

    /// Wraps a step into a guarded pool task.
    fn task(self: &Arc<Self>, f: impl FnOnce(&Arc<SubCtx>) + Send + 'static) -> Task {
        let ctx = Arc::clone(self);
        Box::new(move || ctx.guarded(f))
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        node: &Node,
        trace: &Trace,
        index: InstanceId,
        when: When,
        wher: Where,
        info: EventInfo,
        payload: &mut Payload<'_>,
    ) {
        if !self.tracing || self.registry.is_empty() {
            return;
        }
        let event = Event {
            node: node.id,
            kind: node.tag(),
            when,
            wher,
            index,
            trace: trace.clone(),
            timestamp: self.clock.now(),
            info,
        };
        self.registry.emit(payload, &event);
    }
}

/// Collects fan-out results in sub-problem order and owns the parent's
/// continuation plus the parent instance's identity (node, trace,
/// instance id) — stored once here rather than cloned into every child;
/// the closer (last child) receives the full result vector together with
/// the continuation.
struct Join {
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    /// Slots, countdown and continuation under **one** lock: a
    /// completing child takes exactly one uncontended lock acquisition
    /// instead of a lock + an atomic (+ two more locks for the closer).
    state: Mutex<JoinState>,
}

struct JoinState {
    slots: Vec<Option<Data>>,
    remaining: usize,
    cont: Option<Cont>,
}

impl Join {
    fn new(n: usize, cont: Cont, node: Arc<Node>, trace: Trace, inst: InstanceId) -> Arc<Self> {
        Arc::new(Join {
            node,
            trace,
            inst,
            state: Mutex::new(JoinState {
                slots: (0..n).map(|_| None).collect(),
                remaining: n,
                cont: Some(cont),
            }),
        })
    }

    /// Records child `k`'s result. For the closing child, returns the
    /// full slot vector (in sub-problem order, every slot filled)
    /// together with the parent's continuation — handed over **as-is**,
    /// without re-collecting into a `Vec<Data>`; the merge consumes it
    /// directly via [`askel_skeletons::MergeFn::call_slots`].
    ///
    /// Inconsistencies (a child completing twice, the continuation
    /// already consumed) are reported as `Err` instead of panicking: the
    /// caller routes them through `SubCtx::fail`, so a race against a
    /// poisoned sibling poisons the submission rather than the worker.
    #[allow(clippy::type_complexity)]
    fn complete(
        &self,
        k: usize,
        value: Data,
    ) -> Result<Option<(Vec<Option<Data>>, Cont)>, &'static str> {
        let mut state = self.state.lock();
        match state.slots.get_mut(k) {
            Some(slot @ None) => *slot = Some(value),
            Some(Some(_)) => return Err("fan-out child completed its join twice"),
            None => return Err("fan-out child index out of join bounds"),
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            let slots = std::mem::take(&mut state.slots);
            match state.cont.take() {
                Some(cont) => Ok(Some((slots, cont))),
                None => Err("fan-out join continuation consumed twice"),
            }
        } else {
            Ok(None)
        }
    }
}

/// Entry point used by [`crate::Engine::submit`].
pub(crate) fn submit<P, R>(
    pool: ResizablePool,
    registry: Arc<ListenerRegistry>,
    clock: Arc<dyn Clock>,
    metrics: Arc<EngineMetrics>,
    skel: &Skel<P, R>,
    input: P,
) -> SkelFuture<R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    let (future, promise) = pair::<R>();
    let fail_promise = promise.clone();
    let tracing = !registry.is_empty();
    let span = metrics.probe(&*clock);
    let ctx = Arc::new(SubCtx {
        pool,
        registry,
        clock,
        tracing,
        empty_trace: Trace::empty(),
        span,
        failed: AtomicBool::new(false),
        fail_fn: Box::new(move |e| fail_promise.fail(e)),
    });
    let root_cont: Cont = Cont::f(move |ctx, data| {
        if let Some(span) = &ctx.span {
            span.finish(&*ctx.clock);
        }
        match data.downcast::<R>() {
            Ok(r) => promise.fulfill(*r),
            Err(_) => promise.fail(EngineError::MusclePanic(
                "internal error: root result had an unexpected type".into(),
            )),
        }
    });
    schedule_node(&ctx, skel.node(), None, Box::new(input), root_cont);
    future
}

/// Entry point used by [`crate::Engine::submit_batch`].
///
/// Each input gets its own submission context, future and promise —
/// poisoning stays per item, exactly as with [`submit`] — but instead of
/// scheduling each root step individually (one injector push and one
/// worker wake per item), the whole batch is handed to the pool through
/// one `ResizablePool::submit_batch` call. The root step (including a
/// structural root's inline recursion) therefore runs on a worker rather
/// than the submitting thread; structural kinds carry no muscle-thread
/// guarantee, so the event contract is unchanged.
pub(crate) fn submit_batch<P, R>(
    pool: ResizablePool,
    registry: Arc<ListenerRegistry>,
    clock: Arc<dyn Clock>,
    metrics: Arc<EngineMetrics>,
    skel: &Skel<P, R>,
    inputs: Vec<P>,
) -> Vec<SkelFuture<R>>
where
    P: Send + 'static,
    R: Send + 'static,
{
    let tracing = !registry.is_empty();
    // One enabled check and one clock read for the whole batch; every
    // item's span shares the submit timestamp.
    let submitted_at = if metrics.enabled() {
        Some(clock.now().0.max(1))
    } else {
        None
    };
    let mut futures = Vec::with_capacity(inputs.len());
    let mut tasks: Vec<Task> = Vec::with_capacity(inputs.len());
    for input in inputs {
        let (future, promise) = pair::<R>();
        let fail_promise = promise.clone();
        let ctx = Arc::new(SubCtx {
            pool: pool.clone(),
            registry: Arc::clone(&registry),
            clock: Arc::clone(&clock),
            tracing,
            empty_trace: Trace::empty(),
            span: submitted_at.map(|at| metrics.probe_at(at)),
            failed: AtomicBool::new(false),
            fail_fn: Box::new(move |e| fail_promise.fail(e)),
        });
        let root_cont: Cont = Cont::f(move |ctx, data| {
            if let Some(span) = &ctx.span {
                span.finish(&*ctx.clock);
            }
            match data.downcast::<R>() {
                Ok(r) => promise.fulfill(*r),
                Err(_) => promise.fail(EngineError::MusclePanic(
                    "internal error: root result had an unexpected type".into(),
                )),
            }
        });
        let node = Arc::clone(skel.node());
        tasks
            .push(ctx.task(move |ctx| schedule_node(ctx, &node, None, Box::new(input), root_cont)));
        futures.push(future);
    }
    pool.submit_batch(tasks);
    futures
}

/// Allocates the instance identity (fresh id + extended trace) for one
/// scheduled node — or the shared zero-cost stand-ins when no listener
/// can observe this submission.
fn instance(ctx: &Arc<SubCtx>, node: &Arc<Node>, parent: Option<&Trace>) -> (InstanceId, Trace) {
    if ctx.tracing {
        let inst = InstanceId::fresh();
        let trace = match parent {
            Some(t) => t.child(node.id, inst, node.tag()),
            None => Trace::root(node.id, inst, node.tag()),
        };
        (inst, trace)
    } else {
        // No listener can observe this submission: skip the id and the
        // per-node trace allocation entirely.
        (InstanceId(0), ctx.empty_trace.clone())
    }
}

/// Runs the entry step of a muscle-owning kind. Must not be called for
/// structural kinds — the dispatchers below route those to `exec_*`.
fn muscle_step(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) {
    match node.tag() {
        askel_skeletons::KindTag::Seq => step_seq(ctx, node, trace, inst, data, cont),
        askel_skeletons::KindTag::While => step_while(ctx, node, trace, inst, data, cont, 0),
        askel_skeletons::KindTag::If => step_if(ctx, node, trace, inst, data, cont),
        askel_skeletons::KindTag::Map => step_map(ctx, node, trace, inst, data, cont),
        askel_skeletons::KindTag::Fork => step_fork(ctx, node, trace, inst, data, cont),
        askel_skeletons::KindTag::DivideConquer => step_dac(ctx, node, trace, inst, data, cont),
        tag => unreachable!("muscle_step on structural kind {tag:?}"),
    }
}

/// Where a scheduled muscle-kind step goes. Structural kinds always
/// execute inline regardless of the sink; this only picks the path for
/// the entry step of muscle-owning kinds.
enum Sink<'a> {
    /// Run inline on the current worker when the depth cap allows,
    /// else defer via the TLS next-task slot / a plain submit
    /// ([`run_step`]) — the tail-position single-continuation path.
    Run,
    /// Submit straight to the pool (a binary fan-out's lone sibling).
    Submit,
    /// Push into a fan-out batch for one bulk submission.
    Batch(&'a mut Vec<Task>),
}

/// Schedules the execution of `node` on `data` into `sink`; `cont`
/// receives the result.
///
/// Structural kinds (`farm`, `pipe`, `for`) emit their events and
/// recurse inline, as always. For muscle kinds, [`Sink::Run`] call
/// sites are tail positions scheduling exactly one follow-on step (a
/// pipe's next stage, an if/farm/d&C-leaf body, a for iteration, a
/// fan-out's last child): on a worker the step runs inline in the
/// current task — no closure box, no dispatch — deferring to the TLS
/// next-task slot past the depth cap, and from outside the pool (the
/// initial submission) it becomes a plain injector submit, keeping
/// `Engine::submit` non-blocking. Fan-out siblings use
/// [`Sink::Submit`]/[`Sink::Batch`] so thieves can take them.
fn schedule_node_to(
    ctx: &Arc<SubCtx>,
    node: &Arc<Node>,
    parent: Option<&Trace>,
    data: Data,
    cont: Cont,
    sink: Sink<'_>,
) {
    let (inst, trace) = instance(ctx, node, parent);
    let node = Arc::clone(node);
    match node.tag() {
        askel_skeletons::KindTag::Farm => exec_farm(ctx, node, trace, inst, data, cont),
        askel_skeletons::KindTag::Pipe => exec_pipe(ctx, node, trace, inst, data, cont),
        askel_skeletons::KindTag::For => exec_for(ctx, node, trace, inst, data, cont),
        _ => {
            let step = move |ctx: &Arc<SubCtx>| muscle_step(ctx, node, trace, inst, data, cont);
            match sink {
                Sink::Run => run_step(ctx, step),
                Sink::Submit => ctx.pool.submit(ctx.task(step)),
                Sink::Batch(batch) => batch.push(ctx.task(step)),
            }
        }
    }
}

/// [`schedule_node_to`] with the [`Sink::Run`] path — the common
/// single-continuation case.
fn schedule_node(
    ctx: &Arc<SubCtx>,
    node: &Arc<Node>,
    parent: Option<&Trace>,
    data: Data,
    cont: Cont,
) {
    schedule_node_to(ctx, node, parent, data, cont, Sink::Run);
}

fn step_seq(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) {
    let mut data = data;
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let NodeKind::Seq { fe } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let mut out = fe.call(data);
    ctx.emit(
        &node,
        &trace,
        inst,
        When::After,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut out),
    );
    cont.run(ctx, out);
}

fn exec_farm(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
) {
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::ChildIndex(0),
        &mut Payload::Single(&mut data),
    );
    let NodeKind::Farm { inner } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let inner = Arc::clone(inner);
    // The closing wrapper only emits events; with no listener the
    // parent's continuation passes through without a fresh box.
    let cont = if ctx.tracing {
        let trace2 = trace.clone();
        let node2 = Arc::clone(&node);
        Cont::f(move |ctx, mut out| {
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::NestedSkeleton,
                EventInfo::ChildIndex(0),
                &mut Payload::Single(&mut out),
            );
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::Skeleton,
                EventInfo::None,
                &mut Payload::Single(&mut out),
            );
            cont.run(ctx, out);
        })
    } else {
        cont
    };
    schedule_node(ctx, &inner, Some(&trace), data, cont);
}

fn exec_pipe(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
) {
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    pipe_stage(ctx, node, trace, inst, data, cont, 0);
}

fn pipe_stage(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
    k: usize,
) {
    let NodeKind::Pipe { stages } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    if k == stages.len() {
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        cont.run(ctx, data);
        return;
    }
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::ChildIndex(k),
        &mut Payload::Single(&mut data),
    );
    let stage = Arc::clone(&stages[k]);
    let node2 = Arc::clone(&node);
    let trace2 = trace.clone();
    schedule_node(
        ctx,
        &stage,
        Some(&trace),
        data,
        Cont::f(move |ctx, mut out| {
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::NestedSkeleton,
                EventInfo::ChildIndex(k),
                &mut Payload::Single(&mut out),
            );
            pipe_stage(ctx, node2, trace2, inst, out, cont, k + 1);
        }),
    );
}

fn step_while(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
    iter: usize,
) {
    let mut data = data;
    if iter == 0 {
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
    }
    let NodeKind::While { fc, inner } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Condition,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let verdict = fc.call(&data);
    ctx.emit(
        &node,
        &trace,
        inst,
        When::After,
        Where::Condition,
        EventInfo::ConditionResult(verdict),
        &mut Payload::Single(&mut data),
    );
    if verdict {
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::NestedSkeleton,
            EventInfo::ChildIndex(iter),
            &mut Payload::Single(&mut data),
        );
        let inner = Arc::clone(inner);
        let node2 = Arc::clone(&node);
        let trace2 = trace.clone();
        schedule_node(
            ctx,
            &inner,
            Some(&trace),
            data,
            Cont::f(move |ctx, mut out| {
                ctx.emit(
                    &node2,
                    &trace2,
                    inst,
                    When::After,
                    Where::NestedSkeleton,
                    EventInfo::ChildIndex(iter),
                    &mut Payload::Single(&mut out),
                );
                run_step(ctx, move |ctx| {
                    step_while(ctx, node2, trace2, inst, out, cont, iter + 1)
                });
            }),
        );
    } else {
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        cont.run(ctx, data);
    }
}

fn step_if(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) {
    let mut data = data;
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let NodeKind::If {
        fc,
        then_branch,
        else_branch,
    } = &node.kind
    else {
        unreachable!("tag checked by dispatcher")
    };
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Condition,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let verdict = fc.call(&data);
    ctx.emit(
        &node,
        &trace,
        inst,
        When::After,
        Where::Condition,
        EventInfo::ConditionResult(verdict),
        &mut Payload::Single(&mut data),
    );
    let (branch, k) = if verdict {
        (Arc::clone(then_branch), 0)
    } else {
        (Arc::clone(else_branch), 1)
    };
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::ChildIndex(k),
        &mut Payload::Single(&mut data),
    );
    // Branch-closing wrapper: identity without a listener.
    let cont = if ctx.tracing {
        let node2 = Arc::clone(&node);
        let trace2 = trace.clone();
        Cont::f(move |ctx, mut out| {
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::NestedSkeleton,
                EventInfo::ChildIndex(k),
                &mut Payload::Single(&mut out),
            );
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::Skeleton,
                EventInfo::None,
                &mut Payload::Single(&mut out),
            );
            cont.run(ctx, out);
        })
    } else {
        cont
    };
    schedule_node(ctx, &branch, Some(&trace), data, cont);
}

fn exec_for(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
) {
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let NodeKind::For { n, .. } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let n = *n;
    if n == 0 {
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        cont.run(ctx, data);
        return;
    }
    for_iteration(ctx, node, trace, inst, data, cont, 0, n);
}

#[allow(clippy::too_many_arguments)]
fn for_iteration(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
    k: usize,
    n: usize,
) {
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::Iteration(k),
        &mut Payload::Single(&mut data),
    );
    let NodeKind::For { inner, .. } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let inner = Arc::clone(inner);
    let node2 = Arc::clone(&node);
    let trace2 = trace.clone();
    schedule_node(
        ctx,
        &inner,
        Some(&trace),
        data,
        Cont::f(move |ctx, mut out| {
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::NestedSkeleton,
                EventInfo::Iteration(k),
                &mut Payload::Single(&mut out),
            );
            if k + 1 < n {
                for_iteration(ctx, node2, trace2, inst, out, cont, k + 1, n);
            } else {
                ctx.emit(
                    &node2,
                    &trace2,
                    inst,
                    When::After,
                    Where::Skeleton,
                    EventInfo::None,
                    &mut Payload::Single(&mut out),
                );
                cont.run(ctx, out);
            }
        }),
    );
}

fn step_map(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) {
    let mut data = data;
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let NodeKind::Map { fs, .. } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Split,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let mut parts = fs.call(data);
    ctx.emit(
        &node,
        &trace,
        inst,
        When::After,
        Where::Split,
        EventInfo::SplitCardinality(parts.len()),
        &mut Payload::Many(&mut parts),
    );
    fan_out(
        ctx,
        Arc::clone(&node),
        trace.clone(),
        inst,
        parts,
        cont,
        |node, _| {
            let NodeKind::Map { inner, .. } = &node.kind else {
                unreachable!()
            };
            Arc::clone(inner)
        },
    );
}

fn step_fork(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) {
    let mut data = data;
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let NodeKind::Fork { fs, inners, .. } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Split,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let mut parts = fs.call(data);
    ctx.emit(
        &node,
        &trace,
        inst,
        When::After,
        Where::Split,
        EventInfo::SplitCardinality(parts.len()),
        &mut Payload::Many(&mut parts),
    );
    if parts.len() != inners.len() {
        ctx.fail(EngineError::Eval(EvalError::ForkArityMismatch {
            node: node.id,
            branches: inners.len(),
            produced: parts.len(),
        }));
        return;
    }
    fan_out(
        ctx,
        Arc::clone(&node),
        trace.clone(),
        inst,
        parts,
        cont,
        |node, k| {
            let NodeKind::Fork { inners, .. } = &node.kind else {
                unreachable!()
            };
            Arc::clone(&inners[k])
        },
    );
}

fn step_dac(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) {
    let mut data = data;
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let NodeKind::DivideConquer { fc, fs, inner, .. } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Condition,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let divide = fc.call(&data);
    ctx.emit(
        &node,
        &trace,
        inst,
        When::After,
        Where::Condition,
        EventInfo::ConditionResult(divide),
        &mut Payload::Single(&mut data),
    );
    if divide {
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Split,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let mut parts = fs.call(data);
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Split,
            EventInfo::SplitCardinality(parts.len()),
            &mut Payload::Many(&mut parts),
        );
        if parts.is_empty() {
            ctx.fail(EngineError::Eval(EvalError::EmptySplit { node: node.id }));
            return;
        }
        // Children are new instances of this same d&C node.
        fan_out(
            ctx,
            Arc::clone(&node),
            trace.clone(),
            inst,
            parts,
            cont,
            |node, _| Arc::clone(node),
        );
    } else {
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::NestedSkeleton,
            EventInfo::ChildIndex(0),
            &mut Payload::Single(&mut data),
        );
        let inner = Arc::clone(inner);
        // The base-case wrapper exists only to emit the closing events;
        // with no listener it is the identity, so the parent's
        // continuation passes through without a fresh box.
        let cont = if ctx.tracing {
            let node2 = Arc::clone(&node);
            let trace2 = trace.clone();
            Cont::f(move |ctx, mut out| {
                ctx.emit(
                    &node2,
                    &trace2,
                    inst,
                    When::After,
                    Where::NestedSkeleton,
                    EventInfo::ChildIndex(0),
                    &mut Payload::Single(&mut out),
                );
                ctx.emit(
                    &node2,
                    &trace2,
                    inst,
                    When::After,
                    Where::Skeleton,
                    EventInfo::None,
                    &mut Payload::Single(&mut out),
                );
                cont.run(ctx, out);
            })
        } else {
            cont
        };
        schedule_node(ctx, &inner, Some(&trace), data, cont);
    }
}

/// How deep inline continuation execution may nest on one worker before
/// deferring to the pool's next-task slot. Balanced d&C recursions stay
/// logarithmic and never get near this; the cap keeps degenerate shapes
/// (a one-element-per-level split, a long while/pipe chain) from
/// growing the worker's stack without bound — past it, the chain takes
/// one slot round-trip through the worker loop and the depth resets.
const MAX_INLINE_DEPTH: usize = 64;

thread_local! {
    /// Current inline nesting depth on this thread.
    static INLINE_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Executes a step **inline in the current task** when the calling
/// thread is a pool worker and the depth cap allows — guarded, but with
/// no closure box and no dispatch — and otherwise boxes it and defers
/// to the pool ([`ResizablePool::submit_next`]: the worker's TLS slot
/// on a worker, a plain submit elsewhere — the latter keeps
/// `Engine::submit` non-blocking on the caller's thread).
///
/// Inline execution behaves exactly like pool execution: the same
/// poison short-circuit and panic guard apply, and the enclosing pool
/// task is still running, so `wait_idle` cannot miss it.
fn run_step(ctx: &Arc<SubCtx>, step: impl FnOnce(&Arc<SubCtx>) + Send + 'static) {
    if ctx.pool.on_worker_thread() {
        let depth = INLINE_DEPTH.get();
        if depth < MAX_INLINE_DEPTH {
            INLINE_DEPTH.set(depth + 1);
            ctx.guarded(step);
            INLINE_DEPTH.set(depth);
            return;
        }
    }
    ctx.pool.submit_next(ctx.task(step));
}

/// Fans `parts` out to child skeletons chosen by `pick_child(node, k)`,
/// joins the results in order, then schedules the merge task which also
/// closes the parent instance (`After, Merge` then `After, Skeleton`).
///
/// All children but the last are handed to the pool as **one batch**
/// (structural children still start inline), so a wide split costs one
/// queue-lock acquisition instead of one per child. The **last child
/// runs inline in the parent's task**: the parent would otherwise die
/// right after submitting it, and under LIFO scheduling this worker
/// would pop that exact task next anyway — inlining skips the
/// queue round-trip entirely while idle workers steal the batched
/// siblings. Inline nesting is depth-capped ([`MAX_INLINE_DEPTH`]); past
/// the cap the last child is submitted like its siblings.
fn fan_out(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    parts: Vec<Data>,
    cont: Cont,
    pick_child: impl Fn(&Arc<Node>, usize) -> Arc<Node> + Copy,
) {
    if parts.is_empty() {
        spawn_merge(ctx, node, trace, inst, Vec::new(), cont);
        return;
    }
    let n = parts.len();
    let join = Join::new(n, cont, node, trace, inst);
    // A binary fan-out (every recursive d&C) has exactly one batched
    // sibling: submit it directly and skip the batch vector.
    let mut batch: Vec<Task> = if n > 2 {
        Vec::with_capacity(n - 1)
    } else {
        Vec::new()
    };
    let mut last: Option<(Arc<Node>, Data)> = None;
    for (k, mut part) in parts.into_iter().enumerate() {
        ctx.emit(
            &join.node,
            &join.trace,
            inst,
            When::Before,
            Where::NestedSkeleton,
            EventInfo::ChildIndex(k),
            &mut Payload::Single(&mut part),
        );
        let child = pick_child(&join.node, k);
        if k + 1 == n {
            // Held back: the last child starts only after its siblings
            // are in the pool for thieves, then runs inline here.
            last = Some((child, part));
        } else {
            let child_cont = Cont::Join {
                join: Arc::clone(&join),
                k,
            };
            if n == 2 {
                schedule_node_to(
                    ctx,
                    &child,
                    Some(&join.trace),
                    part,
                    child_cont,
                    Sink::Submit,
                );
            } else {
                schedule_node_to(
                    ctx,
                    &child,
                    Some(&join.trace),
                    part,
                    child_cont,
                    Sink::Batch(&mut batch),
                );
            }
        }
    }
    ctx.pool.submit_batch(batch);
    if let Some((child, part)) = last {
        let child_cont = Cont::Join {
            join: Arc::clone(&join),
            k: n - 1,
        };
        schedule_node(ctx, &child, Some(&join.trace), part, child_cont);
    }
}

/// Runs the merge on the worker that closed the join — inline in the
/// closing child's task when the depth cap allows, via the pool's TLS
/// slot otherwise. Either way the merge is started by the last child
/// and runs on its thread (the paper's discipline and its listener
/// thread guarantee); inlining merely merges the task identities.
fn spawn_merge(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    slots: Vec<Option<Data>>,
    cont: Cont,
) {
    run_step(ctx, move |ctx| {
        let fm = match &node.kind {
            NodeKind::Map { fm, .. }
            | NodeKind::Fork { fm, .. }
            | NodeKind::DivideConquer { fm, .. } => fm,
            _ => unreachable!("merge scheduled on a kind without a merge muscle"),
        };
        let mut out = if ctx.tracing {
            // Listeners may transform the partial results, so the
            // event payload needs the plain vector shape.
            let mut results: Vec<Data> = slots
                .into_iter()
                .map(|s| s.expect("fan-out result slot unfilled at merge"))
                .collect();
            ctx.emit(
                &node,
                &trace,
                inst,
                When::Before,
                Where::Merge,
                EventInfo::None,
                &mut Payload::Many(&mut results),
            );
            fm.call(results)
        } else {
            // No listener can observe this submission: the join's slot
            // vector feeds the merge muscle as-is, with no re-collect.
            fm.call_slots(slots)
        };
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Merge,
            EventInfo::None,
            &mut Payload::Single(&mut out),
        );
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut out),
        );
        cont.run(ctx, out);
    });
}
