//! The continuation-passing interpreter.
//!
//! Execution discipline (mirrored exactly by the discrete-event simulator,
//! so both engines raise the same event sequences):
//!
//! * kinds that own muscles (`seq`, `map`, `fork`, `d&C`, `while`, `if`)
//!   run each muscle inside **one pool task**, emitting the bracketing
//!   events on that task's thread;
//! * purely structural kinds (`farm`, `pipe`, `for`) emit their
//!   skeleton-level events inline on the scheduling/continuation thread —
//!   they have no muscle for the thread guarantee to bind to;
//! * `map`/`fork`/`d&C` children are fanned out via a join counter; the
//!   merge runs as a fresh task scheduled by the last child to finish;
//! * the whole task body (muscle + listeners + continuation) is guarded:
//!   a panic poisons the submission and short-circuits its remaining
//!   tasks.
//!
//! Dispatch detail: a muscle kind's entry step is built as a plain pool
//! task value ([`node_task`]) rather than submitted eagerly, so fan-out
//! hands all children to the pool in **one batch** (one queue-lock
//! acquisition, one wake-up sweep) instead of a submit per child. Tasks
//! scheduled from a worker land on that worker's own deque and run LIFO,
//! which keeps `split → executes → merge` chains on a warm cache; idle
//! workers steal the oldest children, giving the paper's fan-out
//! parallelism without a central queue (see `docs/ARCHITECTURE.md`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use askel_events::{Event, EventInfo, ListenerRegistry, Payload, Trace, When, Where};
use askel_pool::{ResizablePool, Task};
use askel_skeletons::{Clock, Data, EvalError, InstanceId, Node, NodeKind, Skel};

use crate::error::{panic_message, EngineError};
use crate::future::{pair, SkelFuture};

/// Continuation invoked with a node's result, on the thread that produced
/// it.
///
/// The `Join` variant is the fan-out fast path: instead of boxing a
/// fresh closure (plus `Arc` bumps for the parent node and trace) for
/// every child, a child carries only the shared join handle and its
/// slot index — the parent context lives once, inside the [`Join`].
type BoxedCont = Box<dyn FnOnce(&Arc<SubCtx>, Data) + Send>;

enum Cont {
    /// A boxed general continuation.
    F(BoxedCont),
    /// The k-th child of a fan-out completes into its join.
    Join { join: Arc<Join>, k: usize },
}

impl Cont {
    fn f(f: impl FnOnce(&Arc<SubCtx>, Data) + Send + 'static) -> Self {
        Cont::F(Box::new(f))
    }

    fn run(self, ctx: &Arc<SubCtx>, mut data: Data) {
        match self {
            Cont::F(f) => f(ctx, data),
            Cont::Join { join, k } => {
                ctx.emit(
                    &join.node,
                    &join.trace,
                    join.inst,
                    When::After,
                    Where::NestedSkeleton,
                    EventInfo::ChildIndex(k),
                    &mut Payload::Single(&mut data),
                );
                if let Some((results, cont)) = join.complete(k, data) {
                    spawn_merge(
                        ctx,
                        Arc::clone(&join.node),
                        join.trace.clone(),
                        join.inst,
                        results,
                        cont,
                    );
                }
            }
        }
    }
}

/// Per-submission context: engine services plus the poisoning machinery.
struct SubCtx {
    pool: ResizablePool,
    registry: Arc<ListenerRegistry>,
    clock: Arc<dyn Clock>,
    /// Whether any listener was registered when this submission started.
    /// Sampled once at submit time: when false, the whole event path —
    /// instance ids, trace extension (an allocation per scheduled node)
    /// and emission — is skipped for the submission's lifetime.
    tracing: bool,
    /// Shared zero-allocation stand-in trace used when `tracing` is off.
    empty_trace: Trace,
    failed: AtomicBool,
    fail_fn: Box<dyn Fn(EngineError) + Send + Sync>,
}

impl SubCtx {
    fn fail(&self, err: EngineError) {
        self.failed.store(true, Ordering::SeqCst);
        (self.fail_fn)(err); // the promise keeps only the first resolution
    }

    /// Wraps a step into a pool task that short-circuits if the
    /// submission is poisoned and poisons it if the body panics.
    fn task(self: &Arc<Self>, f: impl FnOnce(&Arc<SubCtx>) + Send + 'static) -> Task {
        let ctx = Arc::clone(self);
        Box::new(move || {
            if ctx.failed.load(Ordering::SeqCst) {
                return;
            }
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                ctx.fail(EngineError::MusclePanic(panic_message(p.as_ref())));
            }
        })
    }

    /// Builds and immediately schedules one guarded task.
    fn spawn(self: &Arc<Self>, f: impl FnOnce(&Arc<SubCtx>) + Send + 'static) {
        let task = self.task(f);
        self.pool.submit(task);
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        &self,
        node: &Node,
        trace: &Trace,
        index: InstanceId,
        when: When,
        wher: Where,
        info: EventInfo,
        payload: &mut Payload<'_>,
    ) {
        if !self.tracing || self.registry.is_empty() {
            return;
        }
        let event = Event {
            node: node.id,
            kind: node.tag(),
            when,
            wher,
            index,
            trace: trace.clone(),
            timestamp: self.clock.now(),
            info,
        };
        self.registry.emit(payload, &event);
    }
}

/// Collects fan-out results in sub-problem order and owns the parent's
/// continuation plus the parent instance's identity (node, trace,
/// instance id) — stored once here rather than cloned into every child;
/// the closer (last child) receives the full result vector together with
/// the continuation.
struct Join {
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    slots: Mutex<Vec<Option<Data>>>,
    remaining: AtomicUsize,
    cont: Mutex<Option<Cont>>,
}

impl Join {
    fn new(n: usize, cont: Cont, node: Arc<Node>, trace: Trace, inst: InstanceId) -> Arc<Self> {
        Arc::new(Join {
            node,
            trace,
            inst,
            slots: Mutex::new((0..n).map(|_| None).collect()),
            remaining: AtomicUsize::new(n),
            cont: Mutex::new(Some(cont)),
        })
    }

    fn complete(&self, k: usize, value: Data) -> Option<(Vec<Data>, Cont)> {
        {
            let mut slots = self.slots.lock();
            debug_assert!(slots[k].is_none(), "child {k} completed twice");
            slots[k] = Some(value);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let slots = std::mem::take(&mut *self.slots.lock());
            let cont = self.cont.lock().take().expect("join completed twice");
            Some((
                slots
                    .into_iter()
                    .map(|s| s.expect("join closed with missing slot"))
                    .collect(),
                cont,
            ))
        } else {
            None
        }
    }
}

/// Entry point used by [`crate::Engine::submit`].
pub(crate) fn submit<P, R>(
    pool: ResizablePool,
    registry: Arc<ListenerRegistry>,
    clock: Arc<dyn Clock>,
    skel: &Skel<P, R>,
    input: P,
) -> SkelFuture<R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    let (future, promise) = pair::<R>();
    let fail_promise = promise.clone();
    let tracing = !registry.is_empty();
    let ctx = Arc::new(SubCtx {
        pool,
        registry,
        clock,
        tracing,
        empty_trace: Trace::empty(),
        failed: AtomicBool::new(false),
        fail_fn: Box::new(move |e| fail_promise.fail(e)),
    });
    let root_cont: Cont = Cont::f(move |_ctx, data| match data.downcast::<R>() {
        Ok(r) => promise.fulfill(*r),
        Err(_) => promise.fail(EngineError::MusclePanic(
            "internal error: root result had an unexpected type".into(),
        )),
    });
    schedule_node(&ctx, skel.node(), None, Box::new(input), root_cont);
    future
}

/// Schedules the execution of `node` on `data`; `cont` receives the result.
fn schedule_node(
    ctx: &Arc<SubCtx>,
    node: &Arc<Node>,
    parent: Option<&Trace>,
    data: Data,
    cont: Cont,
) {
    if let Some(task) = node_task(ctx, node, parent, data, cont) {
        ctx.pool.submit(task);
    }
}

/// Like [`schedule_node`], but muscle kinds push their entry task into
/// `batch` instead of submitting it, so the caller can hand a whole
/// fan-out to the pool at once. Structural kinds still execute inline.
fn schedule_node_into(
    ctx: &Arc<SubCtx>,
    node: &Arc<Node>,
    parent: Option<&Trace>,
    data: Data,
    cont: Cont,
    batch: &mut Vec<Task>,
) {
    if let Some(task) = node_task(ctx, node, parent, data, cont) {
        batch.push(task);
    }
}

/// Builds the entry step for `node`.
///
/// Muscle-owning kinds (`seq`, `while`, `if`, `map`, `fork`, `d&C`)
/// return their first pool task; structural kinds (`farm`, `pipe`,
/// `for`) emit their events inline, recurse, and return `None`.
fn node_task(
    ctx: &Arc<SubCtx>,
    node: &Arc<Node>,
    parent: Option<&Trace>,
    data: Data,
    cont: Cont,
) -> Option<Task> {
    let (inst, trace) = if ctx.tracing {
        let inst = InstanceId::fresh();
        let trace = match parent {
            Some(t) => t.child(node.id, inst, node.tag()),
            None => Trace::root(node.id, inst, node.tag()),
        };
        (inst, trace)
    } else {
        // No listener can observe this submission: skip the id and the
        // per-node trace allocation entirely.
        (InstanceId(0), ctx.empty_trace.clone())
    };
    let node = Arc::clone(node);
    match node.tag() {
        askel_skeletons::KindTag::Seq => Some(task_seq(ctx, node, trace, inst, data, cont)),
        askel_skeletons::KindTag::While => Some(task_while(ctx, node, trace, inst, data, cont, 0)),
        askel_skeletons::KindTag::If => Some(task_if(ctx, node, trace, inst, data, cont)),
        askel_skeletons::KindTag::Map => Some(task_map(ctx, node, trace, inst, data, cont)),
        askel_skeletons::KindTag::Fork => Some(task_fork(ctx, node, trace, inst, data, cont)),
        askel_skeletons::KindTag::DivideConquer => {
            Some(task_dac(ctx, node, trace, inst, data, cont))
        }
        askel_skeletons::KindTag::Farm => {
            exec_farm(ctx, node, trace, inst, data, cont);
            None
        }
        askel_skeletons::KindTag::Pipe => {
            exec_pipe(ctx, node, trace, inst, data, cont);
            None
        }
        askel_skeletons::KindTag::For => {
            exec_for(ctx, node, trace, inst, data, cont);
            None
        }
    }
}

fn task_seq(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) -> Task {
    ctx.task(move |ctx| {
        let mut data = data;
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let NodeKind::Seq { fe } = &node.kind else {
            unreachable!("tag checked by dispatcher")
        };
        let mut out = fe.call(data);
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut out),
        );
        cont.run(ctx, out);
    })
}

fn exec_farm(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
) {
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::ChildIndex(0),
        &mut Payload::Single(&mut data),
    );
    let NodeKind::Farm { inner } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let inner = Arc::clone(inner);
    let trace2 = trace.clone();
    let node2 = Arc::clone(&node);
    schedule_node(
        ctx,
        &inner,
        Some(&trace),
        data,
        Cont::f(move |ctx, mut out| {
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::NestedSkeleton,
                EventInfo::ChildIndex(0),
                &mut Payload::Single(&mut out),
            );
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::Skeleton,
                EventInfo::None,
                &mut Payload::Single(&mut out),
            );
            cont.run(ctx, out);
        }),
    );
}

fn exec_pipe(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
) {
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    pipe_stage(ctx, node, trace, inst, data, cont, 0);
}

fn pipe_stage(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
    k: usize,
) {
    let NodeKind::Pipe { stages } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    if k == stages.len() {
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        cont.run(ctx, data);
        return;
    }
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::ChildIndex(k),
        &mut Payload::Single(&mut data),
    );
    let stage = Arc::clone(&stages[k]);
    let node2 = Arc::clone(&node);
    let trace2 = trace.clone();
    schedule_node(
        ctx,
        &stage,
        Some(&trace),
        data,
        Cont::f(move |ctx, mut out| {
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::NestedSkeleton,
                EventInfo::ChildIndex(k),
                &mut Payload::Single(&mut out),
            );
            pipe_stage(ctx, node2, trace2, inst, out, cont, k + 1);
        }),
    );
}

fn task_while(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
    iter: usize,
) -> Task {
    ctx.task(move |ctx| {
        let mut data = data;
        if iter == 0 {
            ctx.emit(
                &node,
                &trace,
                inst,
                When::Before,
                Where::Skeleton,
                EventInfo::None,
                &mut Payload::Single(&mut data),
            );
        }
        let NodeKind::While { fc, inner } = &node.kind else {
            unreachable!("tag checked by dispatcher")
        };
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Condition,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let verdict = fc.call(&data);
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Condition,
            EventInfo::ConditionResult(verdict),
            &mut Payload::Single(&mut data),
        );
        if verdict {
            ctx.emit(
                &node,
                &trace,
                inst,
                When::Before,
                Where::NestedSkeleton,
                EventInfo::ChildIndex(iter),
                &mut Payload::Single(&mut data),
            );
            let inner = Arc::clone(inner);
            let node2 = Arc::clone(&node);
            let trace2 = trace.clone();
            schedule_node(
                ctx,
                &inner,
                Some(&trace),
                data,
                Cont::f(move |ctx, mut out| {
                    ctx.emit(
                        &node2,
                        &trace2,
                        inst,
                        When::After,
                        Where::NestedSkeleton,
                        EventInfo::ChildIndex(iter),
                        &mut Payload::Single(&mut out),
                    );
                    let next = task_while(ctx, node2, trace2, inst, out, cont, iter + 1);
                    ctx.pool.submit(next);
                }),
            );
        } else {
            ctx.emit(
                &node,
                &trace,
                inst,
                When::After,
                Where::Skeleton,
                EventInfo::None,
                &mut Payload::Single(&mut data),
            );
            cont.run(ctx, data);
        }
    })
}

fn task_if(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) -> Task {
    ctx.task(move |ctx| {
        let mut data = data;
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let NodeKind::If {
            fc,
            then_branch,
            else_branch,
        } = &node.kind
        else {
            unreachable!("tag checked by dispatcher")
        };
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Condition,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let verdict = fc.call(&data);
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Condition,
            EventInfo::ConditionResult(verdict),
            &mut Payload::Single(&mut data),
        );
        let (branch, k) = if verdict {
            (Arc::clone(then_branch), 0)
        } else {
            (Arc::clone(else_branch), 1)
        };
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::NestedSkeleton,
            EventInfo::ChildIndex(k),
            &mut Payload::Single(&mut data),
        );
        let node2 = Arc::clone(&node);
        let trace2 = trace.clone();
        schedule_node(
            ctx,
            &branch,
            Some(&trace),
            data,
            Cont::f(move |ctx, mut out| {
                ctx.emit(
                    &node2,
                    &trace2,
                    inst,
                    When::After,
                    Where::NestedSkeleton,
                    EventInfo::ChildIndex(k),
                    &mut Payload::Single(&mut out),
                );
                ctx.emit(
                    &node2,
                    &trace2,
                    inst,
                    When::After,
                    Where::Skeleton,
                    EventInfo::None,
                    &mut Payload::Single(&mut out),
                );
                cont.run(ctx, out);
            }),
        );
    })
}

fn exec_for(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
) {
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut Payload::Single(&mut data),
    );
    let NodeKind::For { n, .. } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let n = *n;
    if n == 0 {
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        cont.run(ctx, data);
        return;
    }
    for_iteration(ctx, node, trace, inst, data, cont, 0, n);
}

#[allow(clippy::too_many_arguments)]
fn for_iteration(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: Cont,
    k: usize,
    n: usize,
) {
    ctx.emit(
        &node,
        &trace,
        inst,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::Iteration(k),
        &mut Payload::Single(&mut data),
    );
    let NodeKind::For { inner, .. } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let inner = Arc::clone(inner);
    let node2 = Arc::clone(&node);
    let trace2 = trace.clone();
    schedule_node(
        ctx,
        &inner,
        Some(&trace),
        data,
        Cont::f(move |ctx, mut out| {
            ctx.emit(
                &node2,
                &trace2,
                inst,
                When::After,
                Where::NestedSkeleton,
                EventInfo::Iteration(k),
                &mut Payload::Single(&mut out),
            );
            if k + 1 < n {
                for_iteration(ctx, node2, trace2, inst, out, cont, k + 1, n);
            } else {
                ctx.emit(
                    &node2,
                    &trace2,
                    inst,
                    When::After,
                    Where::Skeleton,
                    EventInfo::None,
                    &mut Payload::Single(&mut out),
                );
                cont.run(ctx, out);
            }
        }),
    );
}

fn task_map(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) -> Task {
    ctx.task(move |ctx| {
        let mut data = data;
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let NodeKind::Map { fs, .. } = &node.kind else {
            unreachable!("tag checked by dispatcher")
        };
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Split,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let mut parts = fs.call(data);
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Split,
            EventInfo::SplitCardinality(parts.len()),
            &mut Payload::Many(&mut parts),
        );
        fan_out(
            ctx,
            Arc::clone(&node),
            trace.clone(),
            inst,
            parts,
            cont,
            |node, _| {
                let NodeKind::Map { inner, .. } = &node.kind else {
                    unreachable!()
                };
                Arc::clone(inner)
            },
        );
    })
}

fn task_fork(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) -> Task {
    ctx.task(move |ctx| {
        let mut data = data;
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let NodeKind::Fork { fs, inners, .. } = &node.kind else {
            unreachable!("tag checked by dispatcher")
        };
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Split,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let mut parts = fs.call(data);
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Split,
            EventInfo::SplitCardinality(parts.len()),
            &mut Payload::Many(&mut parts),
        );
        if parts.len() != inners.len() {
            ctx.fail(EngineError::Eval(EvalError::ForkArityMismatch {
                node: node.id,
                branches: inners.len(),
                produced: parts.len(),
            }));
            return;
        }
        fan_out(
            ctx,
            Arc::clone(&node),
            trace.clone(),
            inst,
            parts,
            cont,
            |node, k| {
                let NodeKind::Fork { inners, .. } = &node.kind else {
                    unreachable!()
                };
                Arc::clone(&inners[k])
            },
        );
    })
}

fn task_dac(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: Cont,
) -> Task {
    ctx.task(move |ctx| {
        let mut data = data;
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let NodeKind::DivideConquer { fc, fs, inner, .. } = &node.kind else {
            unreachable!("tag checked by dispatcher")
        };
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Condition,
            EventInfo::None,
            &mut Payload::Single(&mut data),
        );
        let divide = fc.call(&data);
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Condition,
            EventInfo::ConditionResult(divide),
            &mut Payload::Single(&mut data),
        );
        if divide {
            ctx.emit(
                &node,
                &trace,
                inst,
                When::Before,
                Where::Split,
                EventInfo::None,
                &mut Payload::Single(&mut data),
            );
            let mut parts = fs.call(data);
            ctx.emit(
                &node,
                &trace,
                inst,
                When::After,
                Where::Split,
                EventInfo::SplitCardinality(parts.len()),
                &mut Payload::Many(&mut parts),
            );
            if parts.is_empty() {
                ctx.fail(EngineError::Eval(EvalError::EmptySplit { node: node.id }));
                return;
            }
            // Children are new instances of this same d&C node.
            fan_out(
                ctx,
                Arc::clone(&node),
                trace.clone(),
                inst,
                parts,
                cont,
                |node, _| Arc::clone(node),
            );
        } else {
            ctx.emit(
                &node,
                &trace,
                inst,
                When::Before,
                Where::NestedSkeleton,
                EventInfo::ChildIndex(0),
                &mut Payload::Single(&mut data),
            );
            let inner = Arc::clone(inner);
            let node2 = Arc::clone(&node);
            let trace2 = trace.clone();
            schedule_node(
                ctx,
                &inner,
                Some(&trace),
                data,
                Cont::f(move |ctx, mut out| {
                    ctx.emit(
                        &node2,
                        &trace2,
                        inst,
                        When::After,
                        Where::NestedSkeleton,
                        EventInfo::ChildIndex(0),
                        &mut Payload::Single(&mut out),
                    );
                    ctx.emit(
                        &node2,
                        &trace2,
                        inst,
                        When::After,
                        Where::Skeleton,
                        EventInfo::None,
                        &mut Payload::Single(&mut out),
                    );
                    cont.run(ctx, out);
                }),
            );
        }
    })
}

/// Fans `parts` out to child skeletons chosen by `pick_child(node, k)`,
/// joins the results in order, then schedules the merge task which also
/// closes the parent instance (`After, Merge` then `After, Skeleton`).
///
/// Muscle-kind children are submitted to the pool as **one batch** after
/// the loop (structural children still start inline), so a wide split
/// costs one queue-lock acquisition instead of one per child.
fn fan_out(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    parts: Vec<Data>,
    cont: Cont,
    pick_child: impl Fn(&Arc<Node>, usize) -> Arc<Node> + Copy,
) {
    if parts.is_empty() {
        spawn_merge(ctx, node, trace, inst, Vec::new(), cont);
        return;
    }
    let n = parts.len();
    let join = Join::new(n, cont, node, trace, inst);
    let mut batch: Vec<Task> = Vec::with_capacity(n);
    for (k, mut part) in parts.into_iter().enumerate() {
        ctx.emit(
            &join.node,
            &join.trace,
            inst,
            When::Before,
            Where::NestedSkeleton,
            EventInfo::ChildIndex(k),
            &mut Payload::Single(&mut part),
        );
        let child = pick_child(&join.node, k);
        schedule_node_into(
            ctx,
            &child,
            Some(&join.trace),
            part,
            Cont::Join {
                join: Arc::clone(&join),
                k,
            },
            &mut batch,
        );
    }
    ctx.pool.submit_batch(batch);
}

/// Schedules the merge as its own pool task (the paper's discipline: the
/// merge is one more "active thread", started by the last child).
fn spawn_merge(
    ctx: &Arc<SubCtx>,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    results: Vec<Data>,
    cont: Cont,
) {
    ctx.spawn(move |ctx| {
        let mut results = results;
        ctx.emit(
            &node,
            &trace,
            inst,
            When::Before,
            Where::Merge,
            EventInfo::None,
            &mut Payload::Many(&mut results),
        );
        let fm = match &node.kind {
            NodeKind::Map { fm, .. }
            | NodeKind::Fork { fm, .. }
            | NodeKind::DivideConquer { fm, .. } => fm,
            _ => unreachable!("merge scheduled on a kind without a merge muscle"),
        };
        let mut out = fm.call(results);
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Merge,
            EventInfo::None,
            &mut Payload::Single(&mut out),
        );
        ctx.emit(
            &node,
            &trace,
            inst,
            When::After,
            Where::Skeleton,
            EventInfo::None,
            &mut Payload::Single(&mut out),
        );
        cont.run(ctx, out);
    });
}
