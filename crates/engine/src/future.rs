//! The result future returned by [`Engine::submit`](crate::Engine::submit).

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::EngineError;

/// How many lock-check/yield rounds [`SkelFuture::get`] spins before
/// parking on the condvar.
const SPIN_CHECKS: u32 = 32;

struct Shared<R> {
    slot: Mutex<Option<Result<R, EngineError>>>,
    cond: Condvar,
}

/// A blocking future for one skeleton submission — the Rust shape of the
/// paper's `Future<R> future = skeleton.input(p); … R r = future.get();`.
pub struct SkelFuture<R> {
    shared: Arc<Shared<R>>,
}

/// The write side handed to the engine internals. The first `fulfill` or
/// `fail` wins; later calls are ignored (a poisoned submission may race its
/// own completion).
pub struct Promise<R> {
    shared: Arc<Shared<R>>,
}

impl<R> Clone for Promise<R> {
    fn clone(&self) -> Self {
        Promise {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Creates a connected (future, promise) pair.
pub fn pair<R>() -> (SkelFuture<R>, Promise<R>) {
    let shared = Arc::new(Shared {
        slot: Mutex::new(None),
        cond: Condvar::new(),
    });
    (
        SkelFuture {
            shared: Arc::clone(&shared),
        },
        Promise { shared },
    )
}

impl<R> Promise<R> {
    /// Resolves the future with a value (first write wins).
    pub fn fulfill(&self, value: R) {
        self.set(Ok(value));
    }

    /// Resolves the future with an error (first write wins).
    pub fn fail(&self, err: EngineError) {
        self.set(Err(err));
    }

    fn set(&self, result: Result<R, EngineError>) {
        let mut slot = self.shared.slot.lock();
        if slot.is_none() {
            *slot = Some(result);
            self.shared.cond.notify_all();
        }
    }
}

impl<R> std::fmt::Debug for SkelFuture<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkelFuture")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl<R> SkelFuture<R> {
    /// Blocks until the submission finishes; returns the result or the
    /// failure that poisoned it.
    ///
    /// Briefly spins (yielding the core to the workers) before blocking
    /// on the condvar: short skeletons resolve within microseconds, and
    /// skipping the futex sleep/wake round-trip for them measurably
    /// lowers engine latency; long runs park as before.
    pub fn get(self) -> Result<R, EngineError> {
        for _ in 0..SPIN_CHECKS {
            {
                let mut slot = self.shared.slot.lock();
                if slot.is_some() {
                    return slot.take().expect("checked above");
                }
            }
            std::thread::yield_now();
        }
        let mut slot = self.shared.slot.lock();
        while slot.is_none() {
            self.shared.cond.wait(&mut slot);
        }
        slot.take().expect("checked by loop")
    }

    /// Blocks up to `timeout`; `Err(self)` gives the future back on
    /// timeout so the caller can keep waiting.
    ///
    /// Waits against a deadline, re-arming the condition wait until the
    /// full `timeout` has elapsed: a spurious wakeup (or a `notify` that
    /// lost the race with a concurrent resolution) re-checks the slot
    /// and keeps waiting for the remaining time instead of returning
    /// `Err(self)` early.
    pub fn get_timeout(self, timeout: Duration) -> Result<Result<R, EngineError>, Self> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.shared.slot.lock();
        while slot.is_none() {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            self.shared.cond.wait_for(&mut slot, remaining);
        }
        match slot.take() {
            Some(r) => Ok(r),
            None => {
                drop(slot);
                Err(self)
            }
        }
    }

    /// `true` once the submission has finished (ok or poisoned).
    pub fn is_ready(&self) -> bool {
        self.shared.slot.lock().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fulfilled_future_returns_value() {
        let (f, p) = pair::<i32>();
        assert!(!f.is_ready());
        p.fulfill(7);
        assert!(f.is_ready());
        assert_eq!(f.get().unwrap(), 7);
    }

    #[test]
    fn first_resolution_wins() {
        let (f, p) = pair::<i32>();
        p.fail(EngineError::MusclePanic("first".into()));
        p.fulfill(7);
        match f.get() {
            Err(EngineError::MusclePanic(m)) => assert_eq!(m, "first"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_blocks_until_resolution_from_another_thread() {
        let (f, p) = pair::<String>();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            p.fulfill("done".into());
        });
        assert_eq!(f.get().unwrap(), "done");
        t.join().unwrap();
    }

    #[test]
    fn get_timeout_returns_future_on_timeout() {
        let (f, p) = pair::<i32>();
        let f = match f.get_timeout(Duration::from_millis(10)) {
            Err(f) => f,
            Ok(_) => panic!("should have timed out"),
        };
        p.fulfill(1);
        assert_eq!(f.get_timeout(Duration::from_secs(5)).unwrap().unwrap(), 1);
    }

    #[test]
    fn get_timeout_survives_spurious_wakeups() {
        // Pound the condvar with notifications that resolve nothing: a
        // single `wait_for` would wake on the first notify and return
        // `Err(self)` long before the timeout. The documented contract
        // is "blocks up to `timeout`", so the deadline loop must absorb
        // them and keep waiting.
        let (f, _p) = pair::<i32>();
        let shared = Arc::clone(&f.shared);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let noise = std::thread::spawn(move || {
            while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                shared.cond.notify_all();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let timeout = Duration::from_millis(250);
        let start = Instant::now();
        let result = f.get_timeout(timeout);
        let elapsed = start.elapsed();
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        noise.join().unwrap();
        assert!(result.is_err(), "nothing resolved the future");
        assert!(
            elapsed >= timeout,
            "returned after {elapsed:?}, before the {timeout:?} timeout elapsed"
        );
    }
}
