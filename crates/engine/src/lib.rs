//! Multithreaded execution engine for algorithmic skeletons.
//!
//! This crate is the Rust counterpart of Skandium's runtime: it interprets
//! the type-erased skeleton AST (`askel-skeletons`) over the resizable
//! worker pool (`askel-pool`), emitting the full event vocabulary of
//! `askel-events` around every muscle, **on the thread that executes the
//! muscle** (the paper's thread guarantee for listeners).
//!
//! Execution is continuation-passing over the pool's sharded
//! work-stealing queue (see `docs/ARCHITECTURE.md`). Data-parallel
//! kinds (`map`, `fork`, `d&C`) fan their children out through a join
//! counter: all children but the last go to the pool as one batch for
//! idle workers to steal, while the **last child — and each
//! single-continuation step (pipe stages, while/for iterations, the
//! join's merge) — runs inline on the worker that produced it**
//! (depth-capped, deferring to the pool's TLS next-task slot past the
//! cap). Steady-state chains therefore never touch the ready queue;
//! the pool's active-task count still tracks the paper's "number of
//! active threads" at fan-out/steal boundaries, and raising the LP
//! mid-run immediately gives new workers the batched children to take.
//!
//! The listener set is sampled when a submission starts: if no listener
//! is registered at that moment, the submission skips the entire event
//! path (instance ids, traces, emission) for its lifetime. Register
//! listeners before submitting.
//!
//! ```
//! use askel_engine::Engine;
//! use askel_skeletons::{map, seq};
//!
//! let engine = Engine::new(2);
//! let program = map(
//!     |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
//!     seq(|v: Vec<i64>| v[0] * 10),
//!     |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
//! );
//! let future = engine.submit(&program, vec![1, 2, 3]);
//! assert_eq!(future.get().unwrap(), 60);
//! ```
//!
//! Failure model: a panicking muscle (or a structural error such as a
//! `fork` arity mismatch) *poisons the submission* — the future resolves to
//! an [`EngineError`], outstanding sibling tasks of that submission
//! short-circuit, and the pool workers survive.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
mod exec;
pub mod future;
mod metrics;
pub mod stream;

use std::sync::Arc;

use askel_events::ListenerRegistry;
use askel_obs::MetricsHub;
use askel_pool::ResizablePool;
use askel_skeletons::{Clock, RealClock, Skel};

use metrics::EngineMetrics;

pub use error::EngineError;
pub use future::SkelFuture;
pub use stream::StreamSession;

/// The skeleton execution engine: a pool, a clock, and a listener registry.
///
/// Cloning shares the engine: clones submit to the same pool, emit
/// through the same listener registry and read the same clock. The pool
/// shuts down when the engine created by
/// [`Engine::new`]/[`Engine::with_clock`] is dropped — clones are
/// non-owning handles, which is what lets long-lived owned sessions
/// (`StreamSession`, the serving layer's per-tenant sessions) share one
/// engine without pinning a borrow.
pub struct Engine {
    pool: ResizablePool,
    registry: Arc<ListenerRegistry>,
    clock: Arc<dyn Clock>,
    metrics: Arc<EngineMetrics>,
}

impl Clone for Engine {
    fn clone(&self) -> Self {
        Engine {
            pool: self.pool.clone(),
            registry: Arc::clone(&self.registry),
            clock: Arc::clone(&self.clock),
            metrics: Arc::clone(&self.metrics),
        }
    }
}

impl Engine {
    /// Creates an engine with `workers` initial workers (the initial LP)
    /// and a real wall clock starting at zero.
    pub fn new(workers: usize) -> Self {
        Self::with_clock(workers, Arc::new(RealClock::new()))
    }

    /// Creates an engine over an explicit clock (tests use a manual one).
    pub fn with_clock(workers: usize, clock: Arc<dyn Clock>) -> Self {
        let pool = ResizablePool::with_clock(workers, Arc::clone(&clock));
        let metrics = EngineMetrics::register(pool.metrics_hub());
        Engine {
            pool,
            registry: ListenerRegistry::new(),
            clock,
            metrics,
        }
    }

    /// The listener registry; register non-functional concerns here.
    ///
    /// Register listeners **before** submitting: each submission samples
    /// the registry once when it starts (see [`Engine::submit`]), so a
    /// listener added while a submission is in flight observes no events
    /// from it — only from submissions started afterwards.
    pub fn registry(&self) -> &Arc<ListenerRegistry> {
        &self.registry
    }

    /// The worker pool (telemetry, direct task submission).
    pub fn pool(&self) -> &ResizablePool {
        &self.pool
    }

    /// The metrics hub shared by the pool and this engine.
    ///
    /// Disabled by default; call `set_enabled(true)` to start recording
    /// pool counters and engine span histograms
    /// (`engine_queue_delay_ns` / `engine_service_ns` /
    /// `engine_span_ns`). Like the listener registry, the enabled flag
    /// is sampled once per submission: submissions already in flight
    /// when the flag flips keep their sampled decision.
    pub fn metrics_hub(&self) -> &Arc<MetricsHub> {
        self.pool.metrics_hub()
    }

    /// The engine clock (shared with pool telemetry and event timestamps).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    /// Current level of parallelism (worker target).
    pub fn lp(&self) -> usize {
        self.pool.target_workers()
    }

    /// Changes the level of parallelism while skeletons run: growth is
    /// immediate, shrink is cooperative (running muscles finish).
    pub fn set_lp(&self, lp: usize) {
        self.pool.set_target_workers(lp);
    }

    /// Submits one input to a skeleton; returns immediately with a future
    /// (the paper's `skeleton.input(p) → Future<R>`).
    ///
    /// Multiple submissions may be in flight concurrently; they share the
    /// pool, so pipeline stages of different inputs overlap naturally.
    ///
    /// The listener set is sampled **now, once for the submission's whole
    /// lifetime**: a submission started while the registry is empty emits
    /// no events, even if listeners are registered later while it runs.
    /// (This is deliberate — an empty registry lets the submission skip
    /// instance ids, trace extension and emission entirely.) Register
    /// listeners before submitting.
    pub fn submit<P, R>(&self, skel: &Skel<P, R>, input: P) -> SkelFuture<R>
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        exec::submit(
            self.pool.clone(),
            Arc::clone(&self.registry),
            Arc::clone(&self.clock),
            Arc::clone(&self.metrics),
            skel,
            input,
        )
    }

    /// Submits a batch of inputs to one skeleton in a single pool
    /// transaction, returning one future per input (in input order).
    ///
    /// Semantically identical to calling [`Engine::submit`] once per
    /// input, but the root steps of all inputs are handed to the pool
    /// through one `ResizablePool::submit_batch` call — one queue-lock
    /// acquisition and one worker wake-up sweep for the whole batch —
    /// amortizing the per-submission dispatch floor across items. The
    /// listener registry is sampled once for the batch; as with
    /// `submit`, register listeners before submitting.
    pub fn submit_batch<P, R>(&self, skel: &Skel<P, R>, inputs: Vec<P>) -> Vec<SkelFuture<R>>
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        exec::submit_batch(
            self.pool.clone(),
            Arc::clone(&self.registry),
            Arc::clone(&self.clock),
            Arc::clone(&self.metrics),
            skel,
            inputs,
        )
    }

    /// Shuts the pool down, finishing queued work first.
    pub fn shutdown(&self) {
        self.pool.shutdown_and_join();
    }
}
