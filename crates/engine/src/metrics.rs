//! Engine-level span metrics on the pool's metrics hub.
//!
//! Each submission (single or batched) is wrapped in one **span probe**
//! that cuts the submission's lifetime at two points — the first guarded
//! step picking the work up, and the root continuation (or failure)
//! resolving the future — and records three histograms plus a counter:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `engine_submissions_total` | counter | submissions started while metrics were enabled |
//! | `engine_queue_delay_ns` | histogram | submit → first step pickup |
//! | `engine_service_ns` | histogram | first step pickup → future resolution |
//! | `engine_span_ns` | histogram | submit → future resolution (end to end) |
//!
//! The probe follows the same sampling discipline as the listener
//! registry: the hub's enabled flag is read **once per submission**.
//! When disabled, no probe is allocated, no clocks are read, and each
//! step pays only an `Option` discriminant check; when enabled, the
//! whole span costs three clock reads (submit, first step, finish)
//! regardless of how many steps the skeleton expands into.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use askel_obs::{Counter, Histogram, MetricsHub};
use askel_skeletons::Clock;

/// The engine's metric handles, registered once per engine on the
/// pool's hub (see the module docs for the inventory).
pub(crate) struct EngineMetrics {
    hub: Arc<MetricsHub>,
    submissions: Counter,
    queue_delay: Histogram,
    service: Histogram,
    span: Histogram,
}

impl EngineMetrics {
    /// Registers (or re-binds, idempotently) the engine metrics on `hub`.
    pub(crate) fn register(hub: &Arc<MetricsHub>) -> Arc<Self> {
        Arc::new(EngineMetrics {
            hub: Arc::clone(hub),
            submissions: hub.counter("engine_submissions_total"),
            queue_delay: hub.histogram("engine_queue_delay_ns"),
            service: hub.histogram("engine_service_ns"),
            span: hub.histogram("engine_span_ns"),
        })
    }

    /// Starts a span probe for one submission — `None` when the hub is
    /// disabled, so the submission carries no probe state at all.
    pub(crate) fn probe(self: &Arc<Self>, clock: &dyn Clock) -> Option<SpanProbe> {
        if !self.hub.enabled() {
            return None;
        }
        Some(self.probe_at(clock.now().0.max(1)))
    }

    /// Starts a span probe with an explicit submit timestamp — the batch
    /// path reads the clock once and stamps every item with it.
    pub(crate) fn probe_at(self: &Arc<Self>, submitted_at: u64) -> SpanProbe {
        self.submissions.inc();
        SpanProbe {
            metrics: Arc::clone(self),
            submitted_at,
            started_at: AtomicU64::new(0),
            finished: AtomicBool::new(false),
        }
    }

    /// Whether the underlying hub is currently enabled (batch-path gate).
    pub(crate) fn enabled(&self) -> bool {
        self.hub.enabled()
    }
}

/// One submission's span: stamps first-step pickup and resolution.
///
/// Lives inside the submission context (`SubCtx`), so it is dropped with
/// the last step of the submission. Both stamping operations are
/// idempotent — fan-out steps race to `note_start` and only the first
/// wins; the success and failure paths race to `finish` and only the
/// first records.
pub(crate) struct SpanProbe {
    metrics: Arc<EngineMetrics>,
    /// Submit-side clock reading (ns, clamped ≥ 1).
    submitted_at: u64,
    /// First-step clock reading; 0 until the first guarded step runs.
    started_at: AtomicU64,
    finished: AtomicBool,
}

impl SpanProbe {
    /// Stamps the first guarded step of the submission. Steps after the
    /// first pay one relaxed load and skip the clock read.
    pub(crate) fn note_start(&self, clock: &dyn Clock) {
        if self.started_at.load(Ordering::Relaxed) != 0 {
            return;
        }
        let now = clock.now().0.max(1);
        let _ = self
            .started_at
            .compare_exchange(0, now, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Records the three span histograms exactly once (first caller
    /// wins), on either the success or the failure path.
    pub(crate) fn finish(&self, clock: &dyn Clock) {
        if self.finished.swap(true, Ordering::Relaxed) {
            return;
        }
        let end = clock.now().0;
        let started = match self.started_at.load(Ordering::Relaxed) {
            // Poisoned before any step ran: the whole span was queueing.
            0 => end,
            at => at,
        };
        self.metrics
            .queue_delay
            .record(started.saturating_sub(self.submitted_at));
        self.metrics.service.record(end.saturating_sub(started));
        self.metrics
            .span
            .record(end.saturating_sub(self.submitted_at));
    }
}
