//! Stream processing: many inputs through one skeleton.
//!
//! Skandium's `farm` and `pipe` earn their parallelism from *streams*: a
//! farm replicates its nested skeleton across concurrent inputs, and a
//! pipe overlaps different inputs' stages. The engine supports this
//! naturally (every submission is independent); [`StreamSession`] packages
//! the pattern: feed inputs as they arrive, bound how many are in flight,
//! and collect results **in submission order**.

use std::collections::VecDeque;

use askel_skeletons::Skel;

use crate::error::EngineError;
use crate::future::SkelFuture;
use crate::Engine;

/// An ordered stream of inputs through one skeleton.
///
/// Each [`feed`](StreamSession::feed) is an independent
/// [`Engine::submit`], so the engine's listener snapshot applies per
/// input: an item fed while the registry is empty emits no events even
/// if listeners are registered later. Register listeners before feeding.
///
/// ```
/// use askel_engine::{Engine, StreamSession};
/// use askel_skeletons::{farm, seq};
///
/// let engine = Engine::new(2);
/// let program = farm(seq(|x: i64| x * 2));
/// let mut stream = StreamSession::new(&engine, &program).max_in_flight(8);
/// for x in 0..100 {
///     stream.feed(x);
/// }
/// let doubled: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
/// assert_eq!(doubled[99], 198);
/// engine.shutdown();
/// ```
pub struct StreamSession<'e, P, R> {
    engine: &'e Engine,
    skel: Skel<P, R>,
    in_flight: VecDeque<SkelFuture<R>>,
    ready: VecDeque<Result<R, EngineError>>,
    max_in_flight: usize,
    fed: usize,
    collected: usize,
}

impl<'e, P, R> StreamSession<'e, P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// A session feeding `skel` on `engine`, with unbounded in-flight
    /// inputs by default.
    pub fn new(engine: &'e Engine, skel: &Skel<P, R>) -> Self {
        StreamSession {
            engine,
            skel: skel.clone(),
            in_flight: VecDeque::new(),
            ready: VecDeque::new(),
            max_in_flight: usize::MAX,
            fed: 0,
            collected: 0,
        }
    }

    /// Bounds how many inputs may be in flight; `feed` blocks on the
    /// oldest submission when the bound is reached (backpressure).
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// Submits one input. Blocks only when the in-flight bound is hit.
    pub fn feed(&mut self, input: P) {
        while self.in_flight.len() >= self.max_in_flight {
            let oldest = self.in_flight.pop_front().expect("non-empty by bound");
            self.ready.push_back(oldest.get());
        }
        self.in_flight
            .push_back(self.engine.submit(&self.skel, input));
        self.fed += 1;
    }

    /// The next result in submission order, blocking until it is ready.
    /// `None` once every fed input has been collected.
    pub fn next_result(&mut self) -> Option<Result<R, EngineError>> {
        if let Some(r) = self.ready.pop_front() {
            self.collected += 1;
            return Some(r);
        }
        let f = self.in_flight.pop_front()?;
        self.collected += 1;
        Some(f.get())
    }

    /// Blocks for every outstanding result, in submission order.
    pub fn drain(mut self) -> impl Iterator<Item = Result<R, EngineError>> {
        let mut out: Vec<Result<R, EngineError>> = Vec::new();
        while let Some(r) = self.next_result() {
            out.push(r);
        }
        out.into_iter()
    }

    /// Inputs fed so far.
    pub fn fed(&self) -> usize {
        self.fed
    }

    /// Results collected so far.
    pub fn collected(&self) -> usize {
        self.collected
    }

    /// Inputs currently in flight (submitted, not yet collected or
    /// buffered).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::{farm, pipe, seq};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_submission_order() {
        let engine = Engine::new(3);
        // Earlier inputs sleep longer: completion order ≠ submission order.
        let program = farm(seq(|x: i64| {
            std::thread::sleep(Duration::from_millis((20 - x).max(0) as u64));
            x * 10
        }));
        let mut stream = StreamSession::new(&engine, &program);
        for x in 0..20 {
            stream.feed(x);
        }
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..20).map(|x| x * 10).collect::<Vec<_>>());
        engine.shutdown();
    }

    #[test]
    fn pipe_stages_overlap_across_stream_items() {
        // With 2 workers and a 2-stage pipe, both stages must be busy
        // simultaneously for different items at some point.
        let engine = Engine::new(2);
        let program = pipe(
            seq(|x: i64| {
                std::thread::sleep(Duration::from_millis(3));
                x + 1
            }),
            seq(|x: i64| {
                std::thread::sleep(Duration::from_millis(3));
                x * 2
            }),
        );
        let mut stream = StreamSession::new(&engine, &program);
        for x in 0..16 {
            stream.feed(x);
        }
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..16).map(|x| (x + 1) * 2).collect::<Vec<_>>());
        assert!(
            engine.pool().telemetry().peak_active() >= 2,
            "stages of different items should overlap"
        );
        engine.shutdown();
    }

    #[test]
    fn backpressure_bounds_in_flight() {
        let engine = Engine::new(1);
        let running = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&running);
        let program = farm(seq(move |x: i64| {
            r.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(1));
            x
        }));
        let mut stream = StreamSession::new(&engine, &program).max_in_flight(4);
        for x in 0..32 {
            stream.feed(x);
            assert!(stream.in_flight() <= 4, "bound violated");
        }
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 32);
        assert_eq!(running.load(Ordering::SeqCst), 32);
        engine.shutdown();
    }

    #[test]
    fn a_poisoned_item_does_not_poison_its_neighbours() {
        let engine = Engine::new(2);
        let program = farm(seq(|x: i64| {
            if x == 7 {
                panic!("item 7 is cursed");
            }
            x
        }));
        let mut stream = StreamSession::new(&engine, &program);
        for x in 0..10 {
            stream.feed(x);
        }
        let results: Vec<Result<i64, EngineError>> = stream.drain().collect();
        assert_eq!(results.len(), 10);
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as i64);
            }
        }
        engine.shutdown();
    }

    #[test]
    fn interleaved_feed_and_collect() {
        let engine = Engine::new(2);
        let program = farm(seq(|x: i64| x + 100));
        let mut stream = StreamSession::new(&engine, &program);
        stream.feed(1);
        stream.feed(2);
        assert_eq!(stream.next_result().unwrap().unwrap(), 101);
        stream.feed(3);
        assert_eq!(stream.next_result().unwrap().unwrap(), 102);
        assert_eq!(stream.next_result().unwrap().unwrap(), 103);
        assert!(stream.next_result().is_none());
        assert_eq!(stream.fed(), 3);
        assert_eq!(stream.collected(), 3);
        engine.shutdown();
    }
}
