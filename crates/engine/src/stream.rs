//! Stream processing: many inputs through one skeleton.
//!
//! Skandium's `farm` and `pipe` earn their parallelism from *streams*: a
//! farm replicates its nested skeleton across concurrent inputs, and a
//! pipe overlaps different inputs' stages. The engine supports this
//! naturally (every submission is independent); [`StreamSession`] packages
//! the pattern: feed inputs as they arrive, bound how many are in flight,
//! and collect results **in submission order**.

use std::collections::VecDeque;

use askel_skeletons::Skel;

use crate::error::EngineError;
use crate::future::SkelFuture;
use crate::Engine;

/// An ordered stream of inputs through one skeleton.
///
/// **Listener snapshots are per item, not per session.** Each
/// [`feed`](StreamSession::feed) is an independent [`Engine::submit`],
/// which re-samples the listener registry: a listener registered *after*
/// the first feed observes every item fed afterwards (regression-tested
/// below). Only the item in flight at registration time keeps its original
/// (possibly empty) snapshot — register listeners before feeding when every
/// item must be observed.
///
/// The skeleton itself may be swapped between items with
/// [`swap_skel`](StreamSession::swap_skel): subsequent feeds use the new
/// version while in-flight items finish on the old one. This is the
/// safe-point primitive the self-configuration runtime (`askel-adapt`)
/// builds on.
///
/// ```
/// use askel_engine::{Engine, StreamSession};
/// use askel_skeletons::{farm, seq};
///
/// let engine = Engine::new(2);
/// let program = farm(seq(|x: i64| x * 2));
/// let mut stream = StreamSession::new(&engine, &program).max_in_flight(8);
/// for x in 0..100 {
///     stream.feed(x);
/// }
/// let doubled: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
/// assert_eq!(doubled[99], 198);
/// engine.shutdown();
/// ```
pub struct StreamSession<P, R> {
    engine: Engine,
    skel: Skel<P, R>,
    in_flight: VecDeque<SkelFuture<R>>,
    ready: VecDeque<Result<R, EngineError>>,
    max_in_flight: usize,
    fed: usize,
    collected: usize,
}

impl<P, R> StreamSession<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// A session feeding `skel` on `engine`, with unbounded in-flight
    /// inputs by default.
    ///
    /// The session keeps an owned (non-owning) clone of the engine, so
    /// it can outlive the caller's borrow and be moved across threads —
    /// many sessions may share one engine (the serving layer's tenant
    /// registry does exactly that).
    pub fn new(engine: &Engine, skel: &Skel<P, R>) -> Self {
        StreamSession {
            engine: engine.clone(),
            skel: skel.clone(),
            in_flight: VecDeque::new(),
            ready: VecDeque::new(),
            max_in_flight: usize::MAX,
            fed: 0,
            collected: 0,
        }
    }

    /// Bounds how many inputs may be in flight; `feed` blocks on the
    /// oldest submission when the bound is reached (backpressure).
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// Atomically swaps the skeleton used by *subsequent* feeds. Items
    /// already in flight keep executing their original (shared, immutable)
    /// skeleton version — a swap between two feeds can therefore never be
    /// observed mid-item. Results still arrive in submission order.
    ///
    /// The caller asserts the new skeleton computes the same `P → R`
    /// signature, which the type parameters enforce.
    pub fn swap_skel(&mut self, skel: &Skel<P, R>) {
        self.skel = skel.clone();
    }

    /// The skeleton that the next [`feed`](StreamSession::feed) will use.
    pub fn skel(&self) -> &Skel<P, R> {
        &self.skel
    }

    /// Non-blocking harvest: moves every already-finished leading
    /// submission (in submission order, stopping at the first unfinished
    /// one) into the internal ready buffer, where
    /// [`next_result`](StreamSession::next_result) pops it without
    /// blocking. Returns how many results were buffered by this call.
    pub fn poll_ready(&mut self) -> usize {
        let mut buffered = 0;
        while self.in_flight.front().is_some_and(SkelFuture::is_ready) {
            let f = self.in_flight.pop_front().expect("checked non-empty");
            self.ready.push_back(f.get());
            buffered += 1;
        }
        buffered
    }

    /// Submits one input. Blocks only when the in-flight bound is hit.
    pub fn feed(&mut self, input: P) {
        while self.in_flight.len() >= self.max_in_flight {
            let oldest = self.in_flight.pop_front().expect("non-empty by bound");
            self.ready.push_back(oldest.get());
        }
        self.in_flight
            .push_back(self.engine.submit(&self.skel, input));
        self.fed += 1;
    }

    /// Submits a batch of inputs through [`Engine::submit_batch`]: one
    /// pool transaction per chunk instead of one per item, amortizing
    /// the per-submission dispatch floor. Result order is unchanged —
    /// batched items collect in submission order, exactly as if fed one
    /// by one.
    ///
    /// The in-flight bound still holds: a batch larger than the
    /// remaining room is split into bound-sized chunks, blocking on the
    /// oldest submission between chunks (backpressure).
    pub fn feed_batch(&mut self, inputs: Vec<P>) {
        let mut inputs = inputs;
        while !inputs.is_empty() {
            while self.in_flight.len() >= self.max_in_flight {
                let oldest = self.in_flight.pop_front().expect("non-empty by bound");
                self.ready.push_back(oldest.get());
            }
            let room = self.max_in_flight - self.in_flight.len();
            let rest = if inputs.len() > room {
                inputs.split_off(room)
            } else {
                Vec::new()
            };
            self.fed += inputs.len();
            self.in_flight
                .extend(self.engine.submit_batch(&self.skel, inputs));
            inputs = rest;
        }
    }

    /// The next result in submission order, blocking until it is ready.
    /// `None` once every fed input has been collected.
    pub fn next_result(&mut self) -> Option<Result<R, EngineError>> {
        if let Some(r) = self.ready.pop_front() {
            self.collected += 1;
            return Some(r);
        }
        let f = self.in_flight.pop_front()?;
        self.collected += 1;
        Some(f.get())
    }

    /// Blocks for every outstanding result, in submission order.
    pub fn drain(mut self) -> impl Iterator<Item = Result<R, EngineError>> {
        let mut out: Vec<Result<R, EngineError>> = Vec::new();
        while let Some(r) = self.next_result() {
            out.push(r);
        }
        out.into_iter()
    }

    /// Inputs fed so far.
    pub fn fed(&self) -> usize {
        self.fed
    }

    /// Results collected so far.
    pub fn collected(&self) -> usize {
        self.collected
    }

    /// Inputs currently in flight (submitted, not yet collected or
    /// buffered).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::{farm, pipe, seq};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_submission_order() {
        let engine = Engine::new(3);
        // Earlier inputs sleep longer: completion order ≠ submission order.
        let program = farm(seq(|x: i64| {
            std::thread::sleep(Duration::from_millis((20 - x).max(0) as u64));
            x * 10
        }));
        let mut stream = StreamSession::new(&engine, &program);
        for x in 0..20 {
            stream.feed(x);
        }
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..20).map(|x| x * 10).collect::<Vec<_>>());
        engine.shutdown();
    }

    #[test]
    fn pipe_stages_overlap_across_stream_items() {
        // With 2 workers and a 2-stage pipe, both stages must be busy
        // simultaneously for different items at some point.
        let engine = Engine::new(2);
        let program = pipe(
            seq(|x: i64| {
                std::thread::sleep(Duration::from_millis(3));
                x + 1
            }),
            seq(|x: i64| {
                std::thread::sleep(Duration::from_millis(3));
                x * 2
            }),
        );
        let mut stream = StreamSession::new(&engine, &program);
        for x in 0..16 {
            stream.feed(x);
        }
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..16).map(|x| (x + 1) * 2).collect::<Vec<_>>());
        assert!(
            engine.pool().telemetry().peak_active() >= 2,
            "stages of different items should overlap"
        );
        engine.shutdown();
    }

    #[test]
    fn backpressure_bounds_in_flight() {
        let engine = Engine::new(1);
        let running = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&running);
        let program = farm(seq(move |x: i64| {
            r.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(1));
            x
        }));
        let mut stream = StreamSession::new(&engine, &program).max_in_flight(4);
        for x in 0..32 {
            stream.feed(x);
            assert!(stream.in_flight() <= 4, "bound violated");
        }
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 32);
        assert_eq!(running.load(Ordering::SeqCst), 32);
        engine.shutdown();
    }

    #[test]
    fn a_poisoned_item_does_not_poison_its_neighbours() {
        let engine = Engine::new(2);
        let program = farm(seq(|x: i64| {
            if x == 7 {
                panic!("item 7 is cursed");
            }
            x
        }));
        let mut stream = StreamSession::new(&engine, &program);
        for x in 0..10 {
            stream.feed(x);
        }
        let results: Vec<Result<i64, EngineError>> = stream.drain().collect();
        assert_eq!(results.len(), 10);
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as i64);
            }
        }
        engine.shutdown();
    }

    #[test]
    fn listener_registered_after_first_feed_sees_later_items() {
        use askel_events::{Event, FnListener, Payload, When, Where};
        use askel_skeletons::KindTag;

        let engine = Engine::new(1);
        let program = farm(seq(|x: i64| x + 1));
        let mut stream = StreamSession::new(&engine, &program);
        stream.feed(0);
        // Let the first item finish so it cannot race the registration.
        assert_eq!(stream.next_result().unwrap().unwrap(), 1);

        let seen = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&seen);
        engine.registry().add_listener(Arc::new(FnListener(
            move |_: &mut Payload<'_>, e: &Event| {
                if e.is(KindTag::Seq, When::After, Where::Skeleton) {
                    s.fetch_add(1, Ordering::SeqCst);
                }
            },
        )));

        for x in 1..=5 {
            stream.feed(x);
        }
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![2, 3, 4, 5, 6]);
        assert_eq!(
            seen.load(Ordering::SeqCst),
            5,
            "each feed re-samples the registry, so all 5 post-registration items emit"
        );
        engine.shutdown();
    }

    #[test]
    fn swap_skel_applies_to_subsequent_feeds_only() {
        let engine = Engine::new(2);
        let v1 = farm(seq(|x: i64| x + 1));
        let v2 = farm(seq(|x: i64| x + 100));
        let mut stream = StreamSession::new(&engine, &v1);
        stream.feed(0);
        stream.feed(1);
        stream.swap_skel(&v2);
        stream.feed(2);
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![1, 2, 102]);
        engine.shutdown();
    }

    #[test]
    fn poll_ready_buffers_finished_leading_items_without_blocking() {
        let engine = Engine::new(1);
        let program = farm(seq(|x: i64| x));
        let mut stream = StreamSession::new(&engine, &program);
        assert_eq!(stream.poll_ready(), 0, "empty session has nothing ready");
        for x in 0..4 {
            stream.feed(x);
        }
        // Wait for everything to finish, then harvest without blocking.
        engine.pool().wait_idle();
        assert_eq!(stream.poll_ready(), 4);
        assert_eq!(stream.in_flight(), 0);
        let got: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        engine.shutdown();
    }

    #[test]
    fn feed_batch_matches_item_feeds_under_a_bound() {
        let engine = Engine::new(2);
        let program = farm(seq(|x: i64| x * 3));
        let mut batched = StreamSession::new(&engine, &program).max_in_flight(4);
        let mut plain = StreamSession::new(&engine, &program).max_in_flight(4);
        batched.feed_batch((0..32).collect());
        assert!(batched.in_flight() <= 4, "bound holds across chunks");
        for x in 0..32 {
            plain.feed(x);
        }
        let b: Vec<i64> = batched.drain().map(|r| r.unwrap()).collect();
        let p: Vec<i64> = plain.drain().map(|r| r.unwrap()).collect();
        assert_eq!(b, p);
        assert_eq!(b, (0..32).map(|x| x * 3).collect::<Vec<_>>());
        engine.shutdown();
    }

    #[test]
    fn a_batched_poisoned_item_stays_contained() {
        let engine = Engine::new(2);
        let program = farm(seq(|x: i64| {
            if x == 3 {
                panic!("cursed");
            }
            x
        }));
        let mut stream = StreamSession::new(&engine, &program);
        stream.feed_batch((0..6).collect());
        let results: Vec<Result<i64, EngineError>> = stream.drain().collect();
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                assert!(r.is_err());
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as i64);
            }
        }
        engine.shutdown();
    }

    #[test]
    fn owned_session_moves_across_threads_and_outlives_the_borrow() {
        let engine = Engine::new(2);
        let program = farm(seq(|x: i64| x + 1));
        let mut stream = StreamSession::new(&engine, &program);
        stream.feed(41);
        let handle = std::thread::spawn(move || {
            stream.feed(1);
            stream.drain().map(|r| r.unwrap()).sum::<i64>()
        });
        assert_eq!(handle.join().unwrap(), 44);
        engine.shutdown();
    }

    #[test]
    fn interleaved_feed_and_collect() {
        let engine = Engine::new(2);
        let program = farm(seq(|x: i64| x + 100));
        let mut stream = StreamSession::new(&engine, &program);
        stream.feed(1);
        stream.feed(2);
        assert_eq!(stream.next_result().unwrap().unwrap(), 101);
        stream.feed(3);
        assert_eq!(stream.next_result().unwrap().unwrap(), 102);
        assert_eq!(stream.next_result().unwrap().unwrap(), 103);
        assert!(stream.next_result().is_none());
        assert_eq!(stream.fed(), 3);
        assert_eq!(stream.collected(), 3);
        engine.shutdown();
    }
}
