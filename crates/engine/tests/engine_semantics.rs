//! Functional semantics of the threaded engine: every skeleton kind must
//! agree with the sequential reference interpreter, failures must poison
//! futures without killing workers, and LP changes must be safe mid-run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use askel_engine::{Engine, EngineError};
use askel_skeletons::{dac, farm, fork, map, pipe, seq, sfor, sif, swhile, EvalError, Skel};

fn get<R: Send + 'static>(engine: &Engine, skel: &Skel<i64, R>, input: i64) -> R {
    engine
        .submit(skel, input)
        .get_timeout(Duration::from_secs(30))
        .expect("skeleton timed out")
        .expect("skeleton failed")
}

#[test]
fn seq_runs_on_pool() {
    let engine = Engine::new(2);
    let s = seq(|x: i64| x * 2);
    assert_eq!(get(&engine, &s, 21), 42);
    engine.shutdown();
}

#[test]
fn nested_map_matches_reference() {
    let engine = Engine::new(3);
    let inner = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.chunks(3).map(|c| c.to_vec()).collect::<Vec<_>>(),
        inner,
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let input: Vec<i64> = (1..=20).collect();
    let expected = program.apply(input.clone());
    let got = engine
        .submit(&program, input)
        .get_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap();
    assert_eq!(got, expected);
    assert_eq!(got, (1..=20).map(|x| x * x).sum::<i64>());
    engine.shutdown();
}

#[test]
fn while_if_for_pipe_farm_agree_with_reference() {
    let engine = Engine::new(2);
    let program: Skel<i64, i64> = pipe(
        swhile(|x: &i64| *x < 100, seq(|x: i64| x + 13)),
        pipe(
            sif(
                |x: &i64| x % 2 == 0,
                seq(|x: i64| x / 2),
                seq(|x: i64| 3 * x + 1),
            ),
            farm(sfor(3, seq(|x: i64| x + 7))),
        ),
    );
    for input in [-5, 0, 1, 7, 50, 99, 100, 12345] {
        assert_eq!(get(&engine, &program, input), program.apply(input));
    }
    engine.shutdown();
}

#[test]
fn fork_applies_distinct_branches() {
    let engine = Engine::new(2);
    let program: Skel<i64, (i64, i64)> = fork(
        |x: i64| vec![x, x],
        vec![seq(|x: i64| x + 1), seq(|x: i64| x * 10)],
        |parts: Vec<i64>| (parts[0], parts[1]),
    );
    assert_eq!(get(&engine, &program, 4), (5, 40));
    engine.shutdown();
}

#[test]
fn dac_mergesort_parallel() {
    let engine = Engine::new(4);
    let sort: Skel<Vec<i64>, Vec<i64>> = dac(
        |v: &Vec<i64>| v.len() > 8,
        |v: Vec<i64>| {
            let mid = v.len() / 2;
            let (a, b) = v.split_at(mid);
            vec![a.to_vec(), b.to_vec()]
        },
        seq(|mut v: Vec<i64>| {
            v.sort_unstable();
            v
        }),
        |parts: Vec<Vec<i64>>| {
            let mut out: Vec<i64> = parts.into_iter().flatten().collect();
            out.sort_unstable();
            out
        },
    );
    let input: Vec<i64> = (0..200).map(|i| (i * 7919) % 1000).collect();
    let mut expected = input.clone();
    expected.sort_unstable();
    let got = engine
        .submit(&sort, input)
        .get_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap();
    assert_eq!(got, expected);
    engine.shutdown();
}

#[test]
fn map_children_actually_run_concurrently() {
    // With 4 workers, 4 children that all wait for each other can only
    // finish if they run at the same time.
    let engine = Engine::new(4);
    let barrier = Arc::new(std::sync::Barrier::new(4));
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq({
            let barrier = Arc::clone(&barrier);
            move |v: Vec<i64>| {
                barrier.wait();
                v[0]
            }
        }),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let got = engine
        .submit(&program, vec![1, 2, 3, 4])
        .get_timeout(Duration::from_secs(30))
        .expect("children deadlocked: no concurrency")
        .unwrap();
    assert_eq!(got, 10);
    assert!(engine.pool().telemetry().peak_active() >= 4);
    engine.shutdown();
}

#[test]
fn muscle_panic_poisons_future_not_engine() {
    let engine = Engine::new(2);
    let bad: Skel<i64, i64> = seq(|_: i64| -> i64 { panic!("intentional muscle failure") });
    let err = engine
        .submit(&bad, 1)
        .get_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap_err();
    match err {
        EngineError::MusclePanic(msg) => assert!(msg.contains("intentional")),
        other => panic!("unexpected error {other:?}"),
    }
    // The engine still works afterwards.
    let ok = seq(|x: i64| x + 1);
    assert_eq!(get(&engine, &ok, 1), 2);
    engine.shutdown();
}

#[test]
fn panic_in_one_map_child_poisons_the_submission() {
    let engine = Engine::new(2);
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| {
            if v[0] == 3 {
                panic!("child 3 exploded")
            }
            v[0]
        }),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let err = engine
        .submit(&program, vec![1, 2, 3, 4, 5])
        .get_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap_err();
    assert!(matches!(err, EngineError::MusclePanic(_)));
    engine.shutdown();
}

#[test]
fn panic_in_one_dac_child_while_sibling_completes_poisons_cleanly() {
    // One d&C half panics while the other (often the inline-run last
    // child on the same worker) completes into the shared join. The
    // submission must resolve to an error — never a worker-thread panic
    // from the join bookkeeping — and the engine must stay usable.
    for _ in 0..50 {
        let engine = Engine::new(2);
        let program: Skel<Vec<i64>, Vec<i64>> = dac(
            |v: &Vec<i64>| v.len() > 2,
            |v: Vec<i64>| {
                let mid = v.len() / 2;
                let (a, b) = v.split_at(mid);
                vec![a.to_vec(), b.to_vec()]
            },
            seq(|v: Vec<i64>| {
                if v.contains(&13) {
                    panic!("unlucky leaf")
                }
                v
            }),
            |parts: Vec<Vec<i64>>| parts.into_iter().flatten().collect(),
        );
        let err = engine
            .submit(&program, (0..32).collect())
            .get_timeout(Duration::from_secs(30))
            .expect("poisoned submission must still resolve")
            .unwrap_err();
        assert!(
            matches!(err, EngineError::MusclePanic(_)),
            "unexpected error {err:?}"
        );
        // The sibling's completion path must not have corrupted the
        // engine: a fresh submission still works.
        let ok = seq(|x: i64| x + 1);
        assert_eq!(get(&engine, &ok, 1), 2);
        engine.shutdown();
    }
}

#[test]
fn deep_unbalanced_dac_does_not_blow_the_stack() {
    // A degenerate split peels one element off per level, driving the
    // inline last-child recursion as deep as the input is long; past
    // MAX_INLINE_DEPTH the engine must fall back to pool submission
    // instead of growing the worker's stack without bound.
    let engine = Engine::new(2);
    let program: Skel<Vec<i64>, Vec<i64>> = dac(
        |v: &Vec<i64>| v.len() > 1,
        |v: Vec<i64>| {
            let (head, tail) = v.split_at(1);
            vec![head.to_vec(), tail.to_vec()]
        },
        seq(|v: Vec<i64>| v),
        |parts: Vec<Vec<i64>>| parts.into_iter().flatten().collect(),
    );
    let input: Vec<i64> = (0..2000).collect();
    let got = engine
        .submit(&program, input.clone())
        .get_timeout(Duration::from_secs(60))
        .unwrap()
        .unwrap();
    assert_eq!(got, input);
    engine.shutdown();
}

#[test]
fn fork_arity_mismatch_is_a_structural_error() {
    let engine = Engine::new(2);
    let program: Skel<i64, i64> = fork(
        |x: i64| vec![x; 3],
        vec![seq(|x: i64| x), seq(|x: i64| x)],
        |parts: Vec<i64>| parts.into_iter().sum(),
    );
    let err = engine
        .submit(&program, 1)
        .get_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap_err();
    match err {
        EngineError::Eval(EvalError::ForkArityMismatch {
            branches, produced, ..
        }) => {
            assert_eq!((branches, produced), (2, 3));
        }
        other => panic!("unexpected error {other:?}"),
    }
    engine.shutdown();
}

#[test]
fn empty_dac_split_is_a_structural_error() {
    let engine = Engine::new(2);
    let program: Skel<i64, i64> = dac(
        |_: &i64| true,
        |_: i64| Vec::<i64>::new(),
        seq(|x: i64| x),
        |parts: Vec<i64>| parts.into_iter().sum(),
    );
    let err = engine
        .submit(&program, 1)
        .get_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Eval(EvalError::EmptySplit { .. })
    ));
    engine.shutdown();
}

#[test]
fn empty_map_split_merges_nothing() {
    let engine = Engine::new(2);
    let program: Skel<Vec<i64>, i64> = map(
        |_: Vec<i64>| Vec::<Vec<i64>>::new(),
        seq(|v: Vec<i64>| v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let got = engine
        .submit(&program, vec![])
        .get_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap();
    assert_eq!(got, 0);
    engine.shutdown();
}

#[test]
fn lp_can_change_mid_run() {
    let engine = Engine::new(1);
    let counter = Arc::new(AtomicUsize::new(0));
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq({
            let counter = Arc::clone(&counter);
            move |v: Vec<i64>| {
                counter.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
                v[0]
            }
        }),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let fut = engine.submit(&program, (1..=64).collect());
    // Grow, then shrink, while children run.
    engine.set_lp(6);
    std::thread::sleep(Duration::from_millis(10));
    engine.set_lp(2);
    let got = fut.get_timeout(Duration::from_secs(60)).unwrap().unwrap();
    assert_eq!(got, (1..=64).sum::<i64>());
    assert_eq!(counter.load(Ordering::Relaxed), 64);
    engine.shutdown();
}

#[test]
fn concurrent_submissions_share_the_pool() {
    let engine = Engine::new(3);
    let program: Skel<i64, i64> = seq(|x: i64| {
        std::thread::sleep(Duration::from_millis(1));
        x * 2
    });
    let futures: Vec<_> = (0..32).map(|i| engine.submit(&program, i)).collect();
    for (i, f) in futures.into_iter().enumerate() {
        assert_eq!(
            f.get_timeout(Duration::from_secs(30)).unwrap().unwrap(),
            i as i64 * 2
        );
    }
    engine.shutdown();
}

#[test]
fn deep_while_loop_does_not_blow_the_stack() {
    let engine = Engine::new(1);
    let program = swhile(|x: &i64| *x < 20_000, seq(|x: i64| x + 1));
    assert_eq!(get(&engine, &program, 0), 20_000);
    engine.shutdown();
}
