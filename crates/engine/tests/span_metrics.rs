//! Engine span metrics: submit→start→finish histograms on the pool's
//! metrics hub, sampled per submission like the listener registry.

use askel_engine::Engine;
use askel_skeletons::{map, seq};

fn program() -> askel_skeletons::Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * 10),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

#[test]
fn disabled_hub_records_no_spans() {
    let engine = Engine::new(2);
    assert!(!engine.metrics_hub().enabled());
    for _ in 0..8 {
        assert_eq!(engine.submit(&program(), vec![1, 2, 3]).get().unwrap(), 60);
    }
    let snap = engine.metrics_hub().snapshot();
    assert_eq!(snap.counter("engine_submissions_total"), Some(0));
    let span = snap.histogram("engine_span_ns").expect("registered");
    assert_eq!(span.count(), 0);
    engine.shutdown();
}

#[test]
fn enabled_hub_records_one_span_per_submission() {
    let engine = Engine::new(2);
    engine.metrics_hub().set_enabled(true);
    for _ in 0..5 {
        assert_eq!(engine.submit(&program(), vec![1, 2, 3]).get().unwrap(), 60);
    }
    let futures = engine.submit_batch(&program(), vec![vec![1, 2, 3]; 7]);
    for f in futures {
        assert_eq!(f.get().unwrap(), 60);
    }
    let snap = engine.metrics_hub().snapshot();
    assert_eq!(snap.counter("engine_submissions_total"), Some(12));
    for name in [
        "engine_queue_delay_ns",
        "engine_service_ns",
        "engine_span_ns",
    ] {
        let h = snap.histogram(name).expect("registered");
        assert_eq!(
            h.count(),
            12,
            "{name} should have one sample per submission"
        );
    }
    // End-to-end spans dominate their components.
    let span = snap.histogram("engine_span_ns").unwrap();
    let service = snap.histogram("engine_service_ns").unwrap();
    assert!(span.max() >= service.max() / 2);
    engine.shutdown();
}

#[test]
fn failed_submissions_still_close_their_span() {
    let engine = Engine::new(2);
    engine.metrics_hub().set_enabled(true);
    let boom = seq(|_: i64| -> i64 { panic!("kaboom") });
    assert!(engine.submit(&boom, 1).get().is_err());
    let snap = engine.metrics_hub().snapshot();
    assert_eq!(snap.counter("engine_submissions_total"), Some(1));
    assert_eq!(snap.histogram("engine_span_ns").unwrap().count(), 1);
    engine.shutdown();
}
