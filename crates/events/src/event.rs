//! Event values raised during skeleton execution.
//!
//! The paper writes events as `∆@event(information)`; ours are structured as
//! *(when, where)* pairs relative to a skeleton instance, so the full event
//! vocabulary is:
//!
//! | skeleton | events (paper notation → ours) |
//! |----------|--------------------------------|
//! | `seq`    | `@b`/`@a` → (Before/After, Skeleton) |
//! | `map`    | `@b`, `@bs`/`@as`, nested before/after, `@bm`/`@am`, `@a` → (Before/After, Skeleton / Split / NestedSkeleton / Merge) |
//! | `while`, `if`, `d&C` | additionally (Before/After, Condition) per test |
//! | all others | (Before/After, Skeleton) plus their muscles' pairs |
//!
//! Every event carries the instance index `i` (see
//! [`askel_skeletons::InstanceId`]), the trace, a timestamp from
//! the engine's [`Clock`](askel_skeletons::Clock), and the extra runtime
//! information the paper mentions (e.g. "Map After Split provides the number
//! of sub-problems created").

use askel_skeletons::{InstanceId, KindTag, NodeId, TimeNs};

use crate::trace::Trace;

/// Is the event raised before or after the thing it brackets?
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum When {
    /// Raised immediately before (muscle about to run on this thread).
    Before,
    /// Raised immediately after (muscle just ran on this thread).
    After,
}

impl std::fmt::Display for When {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            When::Before => "before",
            When::After => "after",
        })
    }
}

/// Which part of the skeleton instance the event brackets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Where {
    /// The whole skeleton instance (its begin/end).
    Skeleton,
    /// The split muscle.
    Split,
    /// The merge muscle.
    Merge,
    /// The condition muscle.
    Condition,
    /// One nested-skeleton execution (the parent's view of a child).
    NestedSkeleton,
    /// A structural self-configuration: the skeleton was rewritten at a
    /// safe point (the `askel-adapt` runtime emits these with
    /// [`When::After`] once the new version is in place for subsequent
    /// submissions).
    Reconfigured,
}

impl std::fmt::Display for Where {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Where::Skeleton => "skeleton",
            Where::Split => "split",
            Where::Merge => "merge",
            Where::Condition => "condition",
            Where::NestedSkeleton => "nested",
            Where::Reconfigured => "reconfigured",
        })
    }
}

/// Extra runtime information attached to specific events.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EventInfo {
    /// No extra information.
    #[default]
    None,
    /// `(After, Split)`: number of sub-problems produced (the paper's
    /// `fsCard` parameter of `map(...)@as(i, fsCard)`).
    SplitCardinality(usize),
    /// `(After, Condition)`: the condition muscle's verdict.
    ConditionResult(bool),
    /// `(Before/After, NestedSkeleton)`: which child (0-based) of the
    /// parent instance this is.
    ChildIndex(usize),
    /// `(Before/After, Skeleton)` on a `for` node: which iteration is
    /// bracketed.
    Iteration(usize),
    /// `(After, Reconfigured)`: a structural rewrite was applied at a safe
    /// point; `version` is the skeleton version the rewrite produced (the
    /// first rewrite of a session produces version 1).
    Reconfigured {
        /// Version of the skeleton after this rewrite.
        version: u64,
    },
}

impl EventInfo {
    /// The split cardinality, if this is that kind of info.
    pub fn split_cardinality(&self) -> Option<usize> {
        match self {
            EventInfo::SplitCardinality(n) => Some(*n),
            _ => None,
        }
    }

    /// The condition verdict, if this is that kind of info.
    pub fn condition_result(&self) -> Option<bool> {
        match self {
            EventInfo::ConditionResult(b) => Some(*b),
            _ => None,
        }
    }

    /// The post-rewrite skeleton version, if this is that kind of info.
    pub fn reconfigured_version(&self) -> Option<u64> {
        match self {
            EventInfo::Reconfigured { version } => Some(*version),
            _ => None,
        }
    }
}

/// One event raised during skeleton execution.
#[derive(Clone, Debug)]
pub struct Event {
    /// Node that raised the event.
    pub node: NodeId,
    /// Kind of that node (so listeners can dispatch without the AST).
    pub kind: KindTag,
    /// Before or after.
    pub when: When,
    /// Which part of the instance.
    pub wher: Where,
    /// The instance index `i`, correlating Before/After pairs and state
    /// machine transitions.
    pub index: InstanceId,
    /// Path from the root instance to the raising instance.
    pub trace: Trace,
    /// Engine timestamp (real or virtual nanoseconds).
    pub timestamp: TimeNs,
    /// Extra runtime information.
    pub info: EventInfo,
}

impl Event {
    /// `true` if this is the event `(when, wher)` on a node of `kind`.
    pub fn is(&self, kind: KindTag, when: When, wher: Where) -> bool {
        self.kind == kind && self.when == when && self.wher == wher
    }

    /// Paper-style rendering, e.g. `map@as(i42, card=3)`.
    pub fn paper_notation(&self) -> String {
        let suffix = match (self.when, self.wher) {
            (When::Before, Where::Skeleton) => "b".to_string(),
            (When::After, Where::Skeleton) => "a".to_string(),
            (When::Before, Where::Split) => "bs".to_string(),
            (When::After, Where::Split) => "as".to_string(),
            (When::Before, Where::Merge) => "bm".to_string(),
            (When::After, Where::Merge) => "am".to_string(),
            (When::Before, Where::Condition) => "bc".to_string(),
            (When::After, Where::Condition) => "ac".to_string(),
            (When::Before, Where::NestedSkeleton) => "bn".to_string(),
            (When::After, Where::NestedSkeleton) => "an".to_string(),
            (When::Before, Where::Reconfigured) => "brc".to_string(),
            (When::After, Where::Reconfigured) => "rc".to_string(),
        };
        let mut s = format!("{}@{}({}", self.kind, suffix, self.index);
        match self.info {
            EventInfo::None => {}
            EventInfo::SplitCardinality(n) => s.push_str(&format!(", card={n}")),
            EventInfo::ConditionResult(b) => s.push_str(&format!(", cond={b}")),
            EventInfo::ChildIndex(k) => s.push_str(&format!(", child={k}")),
            EventInfo::Iteration(k) => s.push_str(&format!(", iter={k}")),
            EventInfo::Reconfigured { version } => s.push_str(&format!(", v={version}")),
        }
        s.push(')');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: KindTag, when: When, wher: Where, info: EventInfo) -> Event {
        Event {
            node: NodeId(1),
            kind,
            when,
            wher,
            index: InstanceId(42),
            trace: Trace::root(NodeId(1), InstanceId(42), kind),
            timestamp: TimeNs::from_millis(5),
            info,
        }
    }

    #[test]
    fn paper_notation_matches_the_paper() {
        let e = event(
            KindTag::Map,
            When::After,
            Where::Split,
            EventInfo::SplitCardinality(3),
        );
        assert_eq!(e.paper_notation(), "map@as(i42, card=3)");

        let e = event(KindTag::Seq, When::Before, Where::Skeleton, EventInfo::None);
        assert_eq!(e.paper_notation(), "seq@b(i42)");
    }

    #[test]
    fn is_matches_exactly() {
        let e = event(KindTag::Map, When::After, Where::Split, EventInfo::None);
        assert!(e.is(KindTag::Map, When::After, Where::Split));
        assert!(!e.is(KindTag::Map, When::Before, Where::Split));
        assert!(!e.is(KindTag::Seq, When::After, Where::Split));
    }

    #[test]
    fn reconfigured_notation_and_accessor() {
        let e = event(
            KindTag::Map,
            When::After,
            Where::Reconfigured,
            EventInfo::Reconfigured { version: 2 },
        );
        assert_eq!(e.paper_notation(), "map@rc(i42, v=2)");
        assert_eq!(e.info.reconfigured_version(), Some(2));
        assert_eq!(EventInfo::None.reconfigured_version(), None);
    }

    #[test]
    fn info_accessors() {
        assert_eq!(EventInfo::SplitCardinality(7).split_cardinality(), Some(7));
        assert_eq!(EventInfo::None.split_cardinality(), None);
        assert_eq!(
            EventInfo::ConditionResult(true).condition_result(),
            Some(true)
        );
        assert_eq!(EventInfo::ChildIndex(1).condition_result(), None);
    }
}
