//! Event-driven separation of concerns for algorithmic skeletons.
//!
//! This crate implements the event layer of Pabón & Leyton (PDP 2012) that
//! Pabón & Henrio's autonomic skeletons (PMAM 2014) are built on. Skeletons
//! use inversion of control, which hides the execution flow from the
//! programmer; events give that flow back *without* weaving non-functional
//! code into the muscles:
//!
//! * every skeleton kind has a statically-defined set of events (e.g. `seq`
//!   has `seq(fe)@b(i)` and `seq(fe)@a(i)`; `map` has eight — skeleton
//!   begin/end, split before/after, nested-skeleton before/after, merge
//!   before/after);
//! * events carry the *skeleton trace* (the path of `(node, instance)` pairs
//!   from the root), the instance index `i` correlating Before/After pairs,
//!   a timestamp, and extra runtime information such as the split
//!   cardinality;
//! * listeners are registered on a [`registry::ListenerRegistry`], run
//!   **synchronously on the thread that executes the related muscle**, and
//!   may inspect *and transform* the partial solution (the paper's example:
//!   encrypting partial results in flight).
//!
//! The autonomic layer (`askel-core`) is just a listener; so are the logger
//! and collector utilities in [`util`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod listener;
pub mod registry;
pub mod trace;
pub mod util;

pub use event::{Event, EventInfo, When, Where};
pub use listener::{EventFilter, FnListener, Listener, Payload};
pub use registry::ListenerRegistry;
pub use trace::{Trace, TraceEntry};
