//! Listeners: the non-functional code attached to skeleton events.
//!
//! A [`Listener`] runs synchronously on the thread that executes the related
//! muscle (the paper guarantees exactly this: "the handler is executed on
//! the same thread than the related muscle"). It receives the partial
//! solution through a [`Payload`] and may *transform* it in place — the
//! paper's motivating example is encrypting partial solutions before they
//! cross a communication boundary.

use askel_skeletons::{Data, KindTag, NodeId};

use crate::event::{Event, When, Where};

/// Mutable view of the partial solution at the event point.
///
/// * `Single` — one value (before/after execute, before split, after merge,
///   around conditions and nested skeletons);
/// * `Many` — the sub-problem (or sub-result) list (after split, before
///   merge);
/// * `None` — no data is in flight at this point.
pub enum Payload<'a> {
    /// One value in flight.
    Single(&'a mut Data),
    /// A list of values in flight.
    Many(&'a mut Vec<Data>),
    /// No data at this event point.
    None,
}

impl<'a> Payload<'a> {
    /// Typed read access to a `Single` payload.
    pub fn downcast_ref<T: 'static>(&self) -> Option<&T> {
        match self {
            Payload::Single(d) => d.downcast_ref::<T>(),
            _ => None,
        }
    }

    /// Typed write access to a `Single` payload.
    pub fn downcast_mut<T: 'static>(&mut self) -> Option<&mut T> {
        match self {
            Payload::Single(d) => d.downcast_mut::<T>(),
            _ => None,
        }
    }

    /// Replaces a `Single` payload with a new value of the *same* type
    /// (replacing with a different type would break the skeleton's typing;
    /// the old value is returned so the caller can decide).
    ///
    /// Returns `Err(new_value)` if the payload is not `Single` or the
    /// current value is not a `T`.
    pub fn replace<T: Send + 'static>(&mut self, new_value: T) -> Result<T, T> {
        match self {
            Payload::Single(d) if d.is::<T>() => {
                let old = std::mem::replace(*d, Box::new(new_value));
                Ok(*old.downcast::<T>().expect("checked by is::<T>"))
            }
            _ => Err(new_value),
        }
    }

    /// Number of values in flight (1 for `Single`, list length for `Many`,
    /// 0 for `None`).
    pub fn len(&self) -> usize {
        match self {
            Payload::Single(_) => 1,
            Payload::Many(v) => v.len(),
            Payload::None => 0,
        }
    }

    /// `true` if no data is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Non-functional code attached to skeleton events.
pub trait Listener: Send + Sync {
    /// Handles one event. Runs on the muscle's thread; keep it fast.
    fn on_event(&self, payload: &mut Payload<'_>, event: &Event);
}

/// Adapter turning a closure into a [`Listener`].
pub struct FnListener<F>(pub F);

impl<F> Listener for FnListener<F>
where
    F: Fn(&mut Payload<'_>, &Event) + Send + Sync,
{
    fn on_event(&self, payload: &mut Payload<'_>, event: &Event) {
        (self.0)(payload, event)
    }
}

/// Registration-time filter: a listener only sees events matching every
/// populated field (Skandium's `addListener` variants offer the same
/// narrowing).
#[derive(Clone, Copy, Default, Debug)]
pub struct EventFilter {
    /// Only events from this node.
    pub node: Option<NodeId>,
    /// Only events from nodes of this kind.
    pub kind: Option<KindTag>,
    /// Only Before or only After events.
    pub when: Option<When>,
    /// Only events at this position.
    pub wher: Option<Where>,
}

impl EventFilter {
    /// Matches every event (a *generic listener* in the paper's terms).
    pub fn all() -> Self {
        EventFilter::default()
    }

    /// Restricts to one node.
    pub fn node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Restricts to one skeleton kind.
    pub fn kind(mut self, kind: KindTag) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts to Before or After.
    pub fn when(mut self, when: When) -> Self {
        self.when = Some(when);
        self
    }

    /// Restricts to one event position.
    pub fn wher(mut self, wher: Where) -> Self {
        self.wher = Some(wher);
        self
    }

    /// Does the event pass the filter?
    pub fn matches(&self, e: &Event) -> bool {
        self.node.is_none_or(|n| e.node == n)
            && self.kind.is_none_or(|k| e.kind == k)
            && self.when.is_none_or(|w| e.when == w)
            && self.wher.is_none_or(|w| e.wher == w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use askel_skeletons::{InstanceId, TimeNs};

    fn sample_event() -> Event {
        Event {
            node: NodeId(3),
            kind: KindTag::Map,
            when: When::After,
            wher: Where::Split,
            index: InstanceId(1),
            trace: Trace::root(NodeId(3), InstanceId(1), KindTag::Map),
            timestamp: TimeNs::ZERO,
            info: Default::default(),
        }
    }

    #[test]
    fn filter_all_matches_everything() {
        assert!(EventFilter::all().matches(&sample_event()));
    }

    #[test]
    fn filter_fields_narrow() {
        let e = sample_event();
        assert!(EventFilter::all().node(NodeId(3)).matches(&e));
        assert!(!EventFilter::all().node(NodeId(4)).matches(&e));
        assert!(EventFilter::all().kind(KindTag::Map).matches(&e));
        assert!(!EventFilter::all().kind(KindTag::Seq).matches(&e));
        assert!(EventFilter::all().when(When::After).matches(&e));
        assert!(!EventFilter::all().when(When::Before).matches(&e));
        assert!(EventFilter::all().wher(Where::Split).matches(&e));
        assert!(!EventFilter::all().wher(Where::Merge).matches(&e));
        assert!(EventFilter::all()
            .node(NodeId(3))
            .kind(KindTag::Map)
            .when(When::After)
            .wher(Where::Split)
            .matches(&e));
    }

    #[test]
    fn payload_typed_access() {
        let mut d: Data = Box::new(10i64);
        let mut p = Payload::Single(&mut d);
        assert_eq!(p.downcast_ref::<i64>(), Some(&10));
        *p.downcast_mut::<i64>().unwrap() += 1;
        assert_eq!(p.downcast_ref::<i64>(), Some(&11));
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn payload_replace_same_type() {
        let mut d: Data = Box::new(10i64);
        let mut p = Payload::Single(&mut d);
        let old = p.replace(99i64).unwrap();
        assert_eq!(old, 10);
        assert_eq!(*d.downcast::<i64>().unwrap(), 99);
    }

    #[test]
    fn payload_replace_wrong_type_is_refused() {
        let mut d: Data = Box::new(10i64);
        let mut p = Payload::Single(&mut d);
        assert!(p.replace("nope").is_err());
        assert_eq!(*d.downcast::<i64>().unwrap(), 10);
    }

    #[test]
    fn payload_many_and_none() {
        let mut v: Vec<Data> = vec![Box::new(1i64), Box::new(2i64)];
        let p = Payload::Many(&mut v);
        assert_eq!(p.len(), 2);
        assert!(p.downcast_ref::<i64>().is_none());
        let p = Payload::None;
        assert!(p.is_empty());
    }

    #[test]
    fn fn_listener_runs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let l = FnListener(|_p: &mut Payload<'_>, _e: &Event| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        l.on_event(&mut Payload::None, &sample_event());
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
