//! The listener registry: where engines publish events and non-functional
//! concerns subscribe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::event::Event;
use crate::listener::{EventFilter, Listener, Payload};

struct Entry {
    filter: EventFilter,
    listener: Arc<dyn Listener>,
}

/// A set of listeners with their registration filters.
///
/// Engines call [`emit`](ListenerRegistry::emit) around every muscle; the
/// registry dispatches synchronously, in registration order, on the calling
/// thread. Registration is cheap and may happen while skeletons run; the
/// listener list is copy-on-read (short read-lock, no lock held during
/// handler execution — handlers may themselves register listeners).
#[derive(Default)]
pub struct ListenerRegistry {
    entries: RwLock<Vec<Entry>>,
    // Cached count so engines can skip event construction entirely when
    // nobody listens (the common fast path measured by overhead_events).
    count: AtomicUsize,
}

impl ListenerRegistry {
    /// An empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a *generic* listener (sees every event).
    pub fn add_listener(&self, listener: Arc<dyn Listener>) {
        self.add_filtered(EventFilter::all(), listener);
    }

    /// Registers a listener restricted by `filter`.
    pub fn add_filtered(&self, filter: EventFilter, listener: Arc<dyn Listener>) {
        self.entries.write().push(Entry { filter, listener });
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Removes every registration of a listener (pointer identity).
    /// Returns how many registrations were removed.
    pub fn remove_listener(&self, listener: &Arc<dyn Listener>) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|e| !Arc::ptr_eq(&e.listener, listener));
        let removed = before - entries.len();
        self.count.fetch_sub(removed, Ordering::Release);
        removed
    }

    /// Number of registrations.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// `true` when no listener is registered — engines use this to skip
    /// event construction.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dispatches an event to every matching listener, synchronously on the
    /// calling thread, in registration order.
    pub fn emit(&self, payload: &mut Payload<'_>, event: &Event) {
        if self.is_empty() {
            return;
        }
        // Snapshot the matching listeners so no lock is held during
        // handler execution.
        let matching: Vec<Arc<dyn Listener>> = {
            let entries = self.entries.read();
            entries
                .iter()
                .filter(|e| e.filter.matches(event))
                .map(|e| Arc::clone(&e.listener))
                .collect()
        };
        for l in matching {
            l.on_event(payload, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventInfo, When, Where};
    use crate::listener::FnListener;
    use crate::trace::Trace;
    use askel_skeletons::{Data, InstanceId, KindTag, NodeId, TimeNs};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    fn ev(node: u64, when: When, wher: Where) -> Event {
        Event {
            node: NodeId(node),
            kind: KindTag::Seq,
            when,
            wher,
            index: InstanceId(1),
            trace: Trace::root(NodeId(node), InstanceId(1), KindTag::Seq),
            timestamp: TimeNs::ZERO,
            info: EventInfo::None,
        }
    }

    #[test]
    fn empty_registry_is_a_noop() {
        let reg = ListenerRegistry::new();
        assert!(reg.is_empty());
        reg.emit(&mut Payload::None, &ev(1, When::Before, Where::Skeleton));
    }

    #[test]
    fn listeners_run_in_registration_order() {
        let reg = ListenerRegistry::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        for tag in ["first", "second", "third"] {
            let order = Arc::clone(&order);
            reg.add_listener(Arc::new(FnListener(
                move |_: &mut Payload<'_>, _: &Event| {
                    order.lock().unwrap().push(tag);
                },
            )));
        }
        reg.emit(&mut Payload::None, &ev(1, When::Before, Where::Skeleton));
        assert_eq!(*order.lock().unwrap(), vec!["first", "second", "third"]);
    }

    #[test]
    fn filters_narrow_dispatch() {
        let reg = ListenerRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        reg.add_filtered(
            EventFilter::all().when(When::After),
            Arc::new(FnListener(move |_: &mut Payload<'_>, _: &Event| {
                h.fetch_add(1, Ordering::Relaxed);
            })),
        );
        reg.emit(&mut Payload::None, &ev(1, When::Before, Where::Skeleton));
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        reg.emit(&mut Payload::None, &ev(1, When::After, Where::Skeleton));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn listeners_can_transform_payload() {
        let reg = ListenerRegistry::new();
        reg.add_listener(Arc::new(FnListener(|p: &mut Payload<'_>, _: &Event| {
            if let Some(x) = p.downcast_mut::<i64>() {
                *x *= 2;
            }
        })));
        let mut d: Data = Box::new(21i64);
        reg.emit(
            &mut Payload::Single(&mut d),
            &ev(1, When::After, Where::Skeleton),
        );
        assert_eq!(*d.downcast::<i64>().unwrap(), 42);
    }

    #[test]
    fn remove_listener_by_identity() {
        let reg = ListenerRegistry::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let l: Arc<dyn Listener> = Arc::new(FnListener(move |_: &mut Payload<'_>, _: &Event| {
            h.fetch_add(1, Ordering::Relaxed);
        }));
        reg.add_listener(Arc::clone(&l));
        reg.add_filtered(EventFilter::all().when(When::After), Arc::clone(&l));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.remove_listener(&l), 2);
        assert!(reg.is_empty());
        reg.emit(&mut Payload::None, &ev(1, When::After, Where::Skeleton));
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn handlers_may_register_more_listeners() {
        let reg = ListenerRegistry::new();
        let reg2 = Arc::clone(&reg);
        reg.add_listener(Arc::new(FnListener(
            move |_: &mut Payload<'_>, _: &Event| {
                reg2.add_listener(Arc::new(FnListener(|_: &mut Payload<'_>, _: &Event| {})));
            },
        )));
        reg.emit(&mut Payload::None, &ev(1, When::Before, Where::Skeleton));
        assert_eq!(reg.len(), 2);
    }
}
