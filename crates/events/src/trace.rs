//! Skeleton traces: the runtime path from the root skeleton instance to the
//! instance that raised an event.
//!
//! The paper's listeners receive a `Skeleton[]` trace; ours additionally
//! carries the *instance* id of every level, which is what lets the
//! autonomic state-machine tracker route an event to the state machine of
//! the right skeleton instance (the `[idx == i]` guards of Figs. 3–4 need
//! the parent instance, not just the parent node).

use std::sync::Arc;

use askel_skeletons::{InstanceId, KindTag, NodeId};

/// One level of a trace: a node plus the runtime instance of it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceEntry {
    /// The AST node.
    pub node: NodeId,
    /// Which runtime instance of that node.
    pub instance: InstanceId,
    /// The node's kind (carried so listeners need not consult the AST).
    pub kind: KindTag,
}

/// An immutable path of [`TraceEntry`] values from the root instance
/// (first) to the raising instance (last).
///
/// Cloning is an `Arc` bump; extending copies the (short) path once.
#[derive(Clone, Debug)]
pub struct Trace(Arc<[TraceEntry]>);

impl Trace {
    /// A trace containing only the root instance.
    pub fn root(node: NodeId, instance: InstanceId, kind: KindTag) -> Self {
        Trace(Arc::from(vec![TraceEntry {
            node,
            instance,
            kind,
        }]))
    }

    /// An empty trace (used only as a neutral placeholder in tests).
    pub fn empty() -> Self {
        Trace(Arc::from(Vec::new()))
    }

    /// The trace extended with one more (deeper) level.
    pub fn child(&self, node: NodeId, instance: InstanceId, kind: KindTag) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(TraceEntry {
            node,
            instance,
            kind,
        });
        Trace(Arc::from(v))
    }

    /// The entries, root first.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.0
    }

    /// The innermost (raising) entry; `None` for the empty trace.
    pub fn leaf(&self) -> Option<&TraceEntry> {
        self.0.last()
    }

    /// The entry one above the leaf, i.e. the parent instance.
    pub fn parent(&self) -> Option<&TraceEntry> {
        self.0.len().checked_sub(2).map(|i| &self.0[i])
    }

    /// Nesting depth of the raising instance (root = 1).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Does this trace pass through the given instance?
    pub fn contains_instance(&self, instance: InstanceId) -> bool {
        self.0.iter().any(|e| e.instance == instance)
    }
}

impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            write!(f, "{}[{}#{}]", e.kind, e.node, e.instance)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_ids(t: &Trace) -> Vec<u64> {
        t.entries().iter().map(|e| e.instance.0).collect()
    }

    #[test]
    fn child_extends_without_mutating_parent() {
        let root = Trace::root(NodeId(1), InstanceId(10), KindTag::Map);
        let deeper = root.child(NodeId(2), InstanceId(11), KindTag::Seq);
        assert_eq!(entry_ids(&root), vec![10]);
        assert_eq!(entry_ids(&deeper), vec![10, 11]);
        assert_eq!(deeper.parent().unwrap().instance, InstanceId(10));
        assert_eq!(deeper.leaf().unwrap().instance, InstanceId(11));
        assert_eq!(deeper.depth(), 2);
    }

    #[test]
    fn contains_instance_checks_whole_path() {
        let t = Trace::root(NodeId(1), InstanceId(10), KindTag::Map)
            .child(NodeId(2), InstanceId(11), KindTag::Map)
            .child(NodeId(3), InstanceId(12), KindTag::Seq);
        assert!(t.contains_instance(InstanceId(10)));
        assert!(t.contains_instance(InstanceId(12)));
        assert!(!t.contains_instance(InstanceId(99)));
    }

    #[test]
    fn display_is_readable() {
        let t = Trace::root(NodeId(1), InstanceId(10), KindTag::Map).child(
            NodeId(2),
            InstanceId(11),
            KindTag::Seq,
        );
        assert_eq!(t.to_string(), "map[n1#i10]/seq[n2#i11]");
    }

    #[test]
    fn empty_trace_has_no_leaf() {
        let t = Trace::empty();
        assert!(t.leaf().is_none());
        assert!(t.parent().is_none());
        assert_eq!(t.depth(), 0);
    }
}
