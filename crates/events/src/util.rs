//! Ready-made listeners: the paper's logger (Listing 2), plus collectors
//! used throughout the test suites and benches.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use askel_skeletons::{InstanceId, KindTag, NodeId, TimeNs};

use crate::event::{Event, EventInfo, When, Where};
use crate::listener::{Listener, Payload};

/// A line-oriented logger listener, equivalent to the paper's Listing 2:
/// logs the current skeleton, when/where, the index `i`, and the partial
/// solution's presence — on the muscle's thread.
///
/// The sink is any `Fn(String)`, so tests can capture lines and
/// applications can forward to their logging framework.
pub struct LoggerListener<S> {
    sink: S,
}

impl<S> LoggerListener<S>
where
    S: Fn(String) + Send + Sync,
{
    /// Creates a logger writing lines through `sink`.
    pub fn new(sink: S) -> Self {
        LoggerListener { sink }
    }
}

impl<S> Listener for LoggerListener<S>
where
    S: Fn(String) + Send + Sync,
{
    fn on_event(&self, payload: &mut Payload<'_>, event: &Event) {
        let line = format!(
            "CURRSKEL: {} | WHEN/WHERE: {}/{} | INDEX: {} | TRACE: {} | PAYLOAD: {} item(s) | T: {}",
            event.kind,
            event.when,
            event.wher,
            event.index,
            event.trace,
            payload.len(),
            event.timestamp,
        );
        (self.sink)(line);
    }
}

/// A compact record of one event, cheap to store by the million.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedEvent {
    /// Raising node.
    pub node: NodeId,
    /// Node kind.
    pub kind: KindTag,
    /// Before/After.
    pub when: When,
    /// Position.
    pub wher: Where,
    /// Instance index `i`.
    pub index: InstanceId,
    /// Parent instance (from the trace), if any.
    pub parent: Option<InstanceId>,
    /// Timestamp.
    pub timestamp: TimeNs,
    /// Extra info.
    pub info: EventInfo,
}

impl RecordedEvent {
    /// Projects an [`Event`] down to its recordable core.
    pub fn from_event(e: &Event) -> Self {
        RecordedEvent {
            node: e.node,
            kind: e.kind,
            when: e.when,
            wher: e.wher,
            index: e.index,
            parent: e.trace.parent().map(|p| p.instance),
            timestamp: e.timestamp,
            info: e.info,
        }
    }
}

/// Records every event it sees; the workhorse of the integration tests.
#[derive(Default)]
pub struct EventCollector {
    events: Mutex<Vec<RecordedEvent>>,
}

impl EventCollector {
    /// An empty collector.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of everything recorded so far (in arrival order per
    /// thread; total order is the engine's emission order under the sim,
    /// or an interleaving under the threaded engine).
    pub fn snapshot(&self) -> Vec<RecordedEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl Listener for EventCollector {
    fn on_event(&self, _payload: &mut Payload<'_>, event: &Event) {
        self.events.lock().push(RecordedEvent::from_event(event));
    }
}

/// Counts events without storing them (for overhead benches).
#[derive(Default)]
pub struct CountingListener {
    count: AtomicUsize,
}

impl CountingListener {
    /// A zeroed counter.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Events seen so far.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }
}

impl Listener for CountingListener {
    fn on_event(&self, _payload: &mut Payload<'_>, _event: &Event) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;

    fn ev(when: When, wher: Where) -> Event {
        Event {
            node: NodeId(1),
            kind: KindTag::Map,
            when,
            wher,
            index: InstanceId(7),
            trace: Trace::root(NodeId(9), InstanceId(3), KindTag::Map).child(
                NodeId(1),
                InstanceId(7),
                KindTag::Map,
            ),
            timestamp: TimeNs::from_millis(1),
            info: EventInfo::SplitCardinality(3),
        }
    }

    #[test]
    fn logger_emits_one_line_per_event() {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let logger = LoggerListener::new(move |l| sink_lines.lock().push(l));
        logger.on_event(&mut Payload::None, &ev(When::After, Where::Split));
        let lines = lines.lock();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("WHEN/WHERE: after/split"));
        assert!(lines[0].contains("INDEX: i7"));
    }

    #[test]
    fn collector_records_parent_from_trace() {
        let c = EventCollector::new();
        c.on_event(&mut Payload::None, &ev(When::Before, Where::Skeleton));
        let snap = c.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].parent, Some(InstanceId(3)));
        assert_eq!(snap[0].info.split_cardinality(), Some(3));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn counting_listener_counts() {
        let c = CountingListener::new();
        for _ in 0..5 {
            c.on_event(&mut Payload::None, &ev(When::Before, Where::Skeleton));
        }
        assert_eq!(c.count(), 5);
    }
}
