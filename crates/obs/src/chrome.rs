//! Chrome trace-event timeline writer (`chrome://tracing` / Perfetto).
//!
//! [`ChromeTrace`] collects counter, instant, and complete events and
//! renders them as a JSON object-format trace (`{"traceEvents": [...]}`)
//! through [`askel_core::json`]. Events may be pushed in any order;
//! [`render`](ChromeTrace::render) sorts by timestamp, so the emitted
//! file always has monotonic `ts` fields — what the viewers expect.
//!
//! Feeding it is the caller's job, because the sample sources live
//! upstream: the pool converts its
//! `TelemetrySample` stream into `active`/`target` counter tracks, and
//! the adapt layer turns its decision log into instant events, so a
//! whole run — thread activity, LP retargets, rule fires — lands on one
//! zoomable timeline.

use askel_core::json::Json;
use askel_skeletons::TimeNs;

/// One trace event in the Chrome trace-event object format.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (the label shown on the timeline).
    pub name: String,
    /// Comma-free category string (viewers group and filter by it).
    pub cat: String,
    /// Phase: `C` counter, `i` instant, `X` complete.
    pub ph: char,
    /// Timestamp.
    pub ts: TimeNs,
    /// Duration, for complete (`X`) events.
    pub dur: Option<u64>,
    /// Process id (one trace can interleave several components).
    pub pid: u64,
    /// Thread id (lane within the process).
    pub tid: u64,
    /// Event arguments: counter series values, rule details, ...
    pub args: Vec<(String, Json)>,
}

/// A growable trace; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Events collected so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a raw event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Adds a counter sample: the series `name` had `value` at `at`.
    /// Counter tracks render as stacked area charts in the viewer.
    pub fn counter(&mut self, at: TimeNs, name: &str, value: f64) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: "counter".to_string(),
            ph: 'C',
            ts: at,
            dur: None,
            pid: 1,
            tid: 0,
            args: vec![("value".to_string(), Json::Num(value))],
        });
    }

    /// Adds an instant event (a vertical marker on the timeline).
    pub fn instant(&mut self, at: TimeNs, name: &str, cat: &str) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'i',
            ts: at,
            dur: None,
            pid: 1,
            tid: 0,
            args: Vec::new(),
        });
    }

    /// Adds a complete event: a bar from `at` for `dur_ns` on lane
    /// `tid`.
    pub fn complete(&mut self, at: TimeNs, dur_ns: u64, name: &str, cat: &str, tid: u64) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts: at,
            dur: Some(dur_ns),
            pid: 1,
            tid,
            args: Vec::new(),
        });
    }

    /// Renders the object-format trace JSON, events sorted by timestamp
    /// (stable, so same-instant events keep insertion order).
    pub fn render(&self) -> String {
        let mut sorted: Vec<&TraceEvent> = self.events.iter().collect();
        sorted.sort_by_key(|e| e.ts);
        let events = sorted
            .into_iter()
            .map(|e| {
                let mut obj = vec![
                    ("name".to_string(), Json::Str(e.name.clone())),
                    ("cat".to_string(), Json::Str(e.cat.clone())),
                    ("ph".to_string(), Json::Str(e.ph.to_string())),
                    // Trace-event timestamps are microseconds; keep ns
                    // resolution via the fractional part.
                    ("ts".to_string(), Json::Num(e.ts.0 as f64 / 1_000.0)),
                    ("pid".to_string(), Json::Num(e.pid as f64)),
                    ("tid".to_string(), Json::Num(e.tid as f64)),
                ];
                if let Some(d) = e.dur {
                    obj.push(("dur".to_string(), Json::Num(d as f64 / 1_000.0)));
                }
                if e.ph == 'i' {
                    // Instant scope: thread-local marker.
                    obj.push(("s".to_string(), Json::Str("t".to_string())));
                }
                if !e.args.is_empty() {
                    obj.push(("args".to_string(), Json::Obj(e.args.clone())));
                }
                Json::Obj(obj)
            })
            .collect();
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        ])
        .render()
    }

    /// Renders and writes the trace to `path` (open the file via
    /// `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_sorts_timestamps_monotonically() {
        let mut t = ChromeTrace::new();
        t.counter(TimeNs(3_000), "active", 2.0);
        t.instant(TimeNs(1_000), "rule fired", "adapt");
        t.complete(TimeNs(2_000), 500, "span", "engine", 1);
        let text = t.render();
        let json = Json::parse(&text).expect("trace is valid JSON");
        let events = json.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 3);
        let ts: Vec<f64> = events
            .iter()
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts must be monotonic");
        assert_eq!(ts, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn counter_events_carry_their_value() {
        let mut t = ChromeTrace::new();
        t.counter(TimeNs(500), "target_workers", 4.0);
        let json = Json::parse(&t.render()).unwrap();
        let e = &json.get("traceEvents").unwrap().as_array().unwrap()[0];
        assert_eq!(e.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            e.get("args").unwrap().get("value").unwrap().as_f64(),
            Some(4.0)
        );
    }
}
