//! Log-bucketed latency histograms, HDR-style.
//!
//! Two flavours share one bucket scheme:
//!
//! * [`Histogram`] — a shared, lock-free recorder (atomic bucket array)
//!   handed out by the [`MetricsHub`](crate::MetricsHub). Recording is a
//!   handful of relaxed atomic ops; when the hub is disabled the whole
//!   record is one relaxed load and a branch.
//! * [`HistogramSnapshot`] — a plain, owned histogram. It is what
//!   [`Histogram::snapshot`] returns, but it also records and **merges**
//!   on its own, so cheap single-writer call sites (one per serve tenant,
//!   a bench's latency series) can use it directly without atomics.
//!   Merge is element-wise bucket addition: associative, commutative,
//!   and count-conserving (the proptests in `tests/hist_props.rs` pin
//!   this down).
//!
//! The bucket scheme is logarithmic with [`SUB_BITS`]-bit linear
//! sub-buckets per octave: values below 2^SUB_BITS get exact unit
//! buckets, above that each octave is split into 2^SUB_BITS equal
//! sub-buckets, so any recorded value lands in a bucket whose width is
//! at most `value / 2^SUB_BITS` — a relative quantization error of
//! ≤ 1/2^SUB_BITS (≈3.1% at 5 bits). Percentile queries report the
//! bucket's upper bound (clamped to the exactly-tracked max), so a
//! reported pXX never understates the observed latency.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: 2^SUB_BITS linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total buckets needed to cover the full `u64` range.
const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB;

/// The bucket a value lands in.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((v >> shift) as usize) & (SUB - 1);
        (shift as usize + 1) * SUB + sub
    }
}

/// The largest value mapping to bucket `i` (its upper bound).
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let shift = (i / SUB - 1) as u32;
        let sub = (i % SUB) as u128;
        // The top octave's bound exceeds u64; clamp (values still land
        // in it correctly, the bound is only used for reporting).
        let high = ((SUB as u128 + sub + 1) << shift) - 1;
        high.min(u64::MAX as u128) as u64
    }
}

/// A shared, lock-free log-bucketed histogram (see the module docs).
///
/// Cloning shares the recorder. All recording is relaxed-atomic; readers
/// take a [`snapshot`](Histogram::snapshot) and query that.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

struct HistInner {
    /// Shared with the owning hub: one relaxed load gates every record.
    enabled: Arc<AtomicBool>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    pub(crate) fn new(enabled: Arc<AtomicBool>) -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistInner {
                enabled,
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value. A no-op (one relaxed load) while the owning
    /// hub is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let i = &self.inner;
        i.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.min.fetch_min(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A plain copy of the current state (trimmed to touched buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let i = &self.inner;
        let mut snap = HistogramSnapshot::new();
        // Read count first: recorders bump the bucket before the count,
        // so buckets read afterwards can only show >= `count` entries —
        // a torn concurrent read never invents counted-but-unbucketed
        // values.
        snap.count = i.count.load(Ordering::Acquire);
        snap.sum = i.sum.load(Ordering::Relaxed) as u128;
        let min = i.min.load(Ordering::Relaxed);
        snap.min = if min == u64::MAX { 0 } else { min };
        snap.max = i.max.load(Ordering::Relaxed);
        let mut remaining = snap.count;
        for (idx, b) in i.buckets.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            let c = b.load(Ordering::Relaxed).min(remaining);
            if c > 0 {
                *snap.slot(idx) += c;
                remaining -= c;
            }
        }
        snap.count -= remaining; // racy stragglers not yet bucketed
        snap
    }
}

/// A plain, owned, mergeable histogram (see the module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket index of `buckets[0]`; the vector covers only the touched
    /// index range, so a tight latency distribution stays small.
    base: usize,
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty histogram.
    pub fn new() -> Self {
        HistogramSnapshot::default()
    }

    /// The mutable tally slot for bucket index `idx`, growing the
    /// covered range as needed.
    fn slot(&mut self, idx: usize) -> &mut u64 {
        if self.buckets.is_empty() {
            self.base = idx;
            self.buckets.push(0);
        } else if idx < self.base {
            let grow = self.base - idx;
            self.buckets.splice(0..0, std::iter::repeat_n(0, grow));
            self.base = idx;
        } else if idx >= self.base + self.buckets.len() {
            self.buckets.resize(idx - self.base + 1, 0);
        }
        &mut self.buckets[idx - self.base]
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.slot(bucket_index(v)) += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum += v as u128 * n as u128;
    }

    /// Merges `other` into `self`: element-wise bucket addition, so the
    /// result is exactly the histogram of both input series combined.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        for (k, &c) in other.buckets.iter().enumerate() {
            if c > 0 {
                *self.slot(other.base + k) += c;
            }
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p` in `[0, 1]`: the upper bound of the
    /// bucket holding the ⌈p·count⌉-th smallest observation, clamped to
    /// the exactly-tracked max (so `percentile(1.0) == max()`). Returns
    /// 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(self.base + k).min(self.max);
            }
        }
        self.max
    }

    /// The touched buckets as `(bucket upper bound, count)` pairs, in
    /// ascending value order (zero-count buckets omitted).
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (bucket_high(self.base + k), c))
    }

    /// Raw representation for the JSON exporter: `(base, buckets)`.
    pub(crate) fn raw(&self) -> (usize, &[u64]) {
        (self.base, &self.buckets)
    }

    /// Rebuilds a snapshot from exporter fields; `None` if inconsistent
    /// (bucket tallies must sum to `count`).
    pub(crate) fn from_raw(
        base: usize,
        buckets: Vec<u64>,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Option<Self> {
        if base + buckets.len() > BUCKETS {
            return None;
        }
        let count: u64 = buckets.iter().sum();
        Some(HistogramSnapshot {
            base,
            buckets,
            count,
            sum,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_contiguous_and_monotonic() {
        // Unit buckets below SUB, then each index's high bound is the
        // predecessor of the next bucket's first value.
        let mut prev_high = None;
        for v in 0..(SUB as u64 * 8) {
            let i = bucket_index(v);
            assert!(v <= bucket_high(i), "value above its bucket bound");
            if let Some(ph) = prev_high {
                assert!(bucket_high(i) >= ph);
            }
            prev_high = Some(bucket_high(i));
        }
        for &v in &[1u64, 100, 10_000, 1 << 30, u64::MAX / 3, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(bucket_high(i) >= v);
            // Relative error bound: bucket width ≤ value / SUB above SUB.
            if v >= SUB as u64 {
                let err = bucket_high(i) - v;
                assert!(err as f64 <= v as f64 / SUB as f64 + 1.0);
            }
        }
    }

    #[test]
    fn percentiles_are_exact_on_unit_values() {
        let mut h = HistogramSnapshot::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.percentile(0.5), 5);
        assert_eq!(h.percentile(1.0), 10);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert_eq!(h.sum(), 55);
    }

    #[test]
    fn percentile_error_is_bounded() {
        let mut h = HistogramSnapshot::new();
        for v in [1_000u64, 2_000, 3_000, 4_000, 1_000_000] {
            h.record(v);
        }
        // Nearest-rank p50 of 5 values is the 3rd smallest (3000).
        let p50 = h.percentile(0.5) as f64;
        assert!((3_000.0..=3_000.0 * (1.0 + 1.0 / SUB as f64) + 1.0).contains(&p50));
        assert_eq!(h.percentile(1.0), 1_000_000);
    }

    #[test]
    fn merge_combines_series() {
        let mut a = HistogramSnapshot::new();
        let mut b = HistogramSnapshot::new();
        for v in 0..100u64 {
            a.record(v * 7);
            b.record(v * 1000);
        }
        let mut both = HistogramSnapshot::new();
        for v in 0..100u64 {
            both.record(v * 7);
            both.record(v * 1000);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m, both);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain() {
        let enabled = Arc::new(AtomicBool::new(true));
        let h = Histogram::new(Arc::clone(&enabled));
        let mut plain = HistogramSnapshot::new();
        for v in [5u64, 40, 41, 90_000, 90_001, 1 << 40] {
            h.record(v);
            plain.record(v);
        }
        assert_eq!(h.snapshot(), plain);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let enabled = Arc::new(AtomicBool::new(false));
        let h = Histogram::new(enabled);
        h.record(42);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::new());
    }
}
