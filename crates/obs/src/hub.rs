//! The metrics hub: a process-local registry of named counters, gauges
//! and histograms with one shared enable gate.
//!
//! Instrumented components register their metrics **once** (at
//! construction) and keep the returned handles; recording through a
//! handle is lock-free and never looks names up. The whole hub is
//! disabled by default: every handle shares one `AtomicBool`, so a
//! disabled record is a single relaxed load and a predictable branch —
//! the same fast-path shape as the engine's listener sampling. Enabling
//! the hub (`set_enabled(true)`) flips every handle at once, mid-run.
//!
//! Metric names follow Prometheus conventions (`snake_case`, unit
//! suffix, `_total` for counters) and may carry a label set in braces —
//! `serve_sojourn_ns{tenant="7"}` — which the exporters understand.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::Histogram;
use crate::snapshot::MetricsSnapshot;

/// Counter shards: spreads concurrent `inc`s over distinct cache lines.
const SHARDS: usize = 16;

/// One cache line per shard so two workers bumping the same counter
/// don't bounce a line between cores.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    static SHARD_ID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

/// A stable per-thread shard slot, assigned on first use.
#[inline]
fn shard_id() -> usize {
    SHARD_ID.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let id = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
            c.set(id);
            id
        }
    })
}

/// A monotonically increasing counter, sharded across cache lines.
///
/// Cloning shares the counter. `inc`/`add` are one relaxed load (the
/// enable gate) plus one relaxed `fetch_add` on the calling thread's
/// shard; `value` sums the shards.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<CounterInner>,
}

struct CounterInner {
    enabled: Arc<AtomicBool>,
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Counter {
            inner: Arc::new(CounterInner {
                enabled,
                shards: Default::default(),
            }),
        }
    }

    /// Adds 1. A no-op while the owning hub is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while the owning hub is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.inner.shards[shard_id() % SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn value(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-value-wins gauge.
///
/// Cloning shares the gauge; `set` is gated like [`Counter::add`].
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<GaugeInner>,
}

struct GaugeInner {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
}

impl Gauge {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Gauge {
            inner: Arc::new(GaugeInner {
                enabled,
                value: AtomicI64::new(0),
            }),
        }
    }

    /// Sets the gauge. A no-op while the owning hub is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.inner.value.store(v, Ordering::Relaxed);
    }

    /// The last value set (0 initially).
    pub fn value(&self) -> i64 {
        self.inner.value.load(Ordering::Relaxed)
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The registry of named metrics for one pool/engine stack (see the
/// module docs).
///
/// One hub is created per worker pool — every layer sharing that pool
/// (engine, serve registry, trigger engine) registers onto the same
/// hub, so one `snapshot()` sees every concern's signals side by side.
pub struct MetricsHub {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<Vec<(String, Metric)>>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        MetricsHub {
            enabled: Arc::new(AtomicBool::new(false)),
            metrics: Mutex::new(Vec::new()),
        }
    }
}

impl MetricsHub {
    /// A fresh, **disabled** hub behind an `Arc` (handles share it).
    pub fn new() -> Arc<MetricsHub> {
        Arc::new(MetricsHub::default())
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off for every handle at once. Off is the
    /// default; handles registered while off record nothing.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn register(&self, name: &str, make: impl FnOnce(Arc<AtomicBool>) -> Metric) -> Metric {
        let mut metrics = self.metrics.lock();
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let m = make(Arc::clone(&self.enabled));
        metrics.push((name.to_string(), m.clone()));
        m
    }

    /// The counter named `name`, registering it on first use. Panics if
    /// `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, |e| Metric::Counter(Counter::new(e))) {
            Metric::Counter(c) => c,
            m => panic!("metric {name:?} already registered as a {}", m.kind()),
        }
    }

    /// The gauge named `name`, registering it on first use. Panics if
    /// `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, |e| Metric::Gauge(Gauge::new(e))) {
            Metric::Gauge(g) => g,
            m => panic!("metric {name:?} already registered as a {}", m.kind()),
        }
    }

    /// The histogram named `name`, registering it on first use. Panics
    /// if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, |e| Metric::Histogram(Histogram::new(e))) {
            Metric::Histogram(h) => h,
            m => panic!("metric {name:?} already registered as a {}", m.kind()),
        }
    }

    /// One consistent copy of every registered metric, in registration
    /// order — the input to all three exporters (Prometheus text, JSON,
    /// and per-series Chrome counter tracks).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, m) in metrics.iter() {
            match m {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.value())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.value())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// Splits a metric name into `(base, labels)`: `a_ns{t="1"}` becomes
/// `("a_ns", Some("t=\"1\""))`. Exporters use this to splice extra
/// labels (quantile, unit) into labelled series.
pub(crate) fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(i), true) => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Keeps only `[a-zA-Z0-9_:]` (Prometheus base-name alphabet),
/// replacing everything else with `_`.
pub(crate) fn sanitize_base(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_records_nothing() {
        let hub = MetricsHub::new();
        let c = hub.counter("c_total");
        let g = hub.gauge("g");
        let h = hub.histogram("h_ns");
        c.inc();
        c.add(10);
        g.set(5);
        h.record(42);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn enabling_mid_run_flips_every_handle() {
        let hub = MetricsHub::new();
        let c = hub.counter("c_total");
        c.inc();
        hub.set_enabled(true);
        c.inc();
        c.inc();
        assert_eq!(c.value(), 2);
        hub.set_enabled(false);
        c.inc();
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn registration_is_idempotent() {
        let hub = MetricsHub::new();
        hub.set_enabled(true);
        let a = hub.counter("hits_total");
        let b = hub.counter("hits_total");
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2);
        assert_eq!(hub.snapshot().counters.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let hub = MetricsHub::new();
        hub.counter("x");
        hub.gauge("x");
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let hub = MetricsHub::new();
        hub.set_enabled(true);
        hub.counter("b_total").add(2);
        hub.gauge("a").set(-3);
        hub.histogram("h_ns").record(7);
        let snap = hub.snapshot();
        assert_eq!(snap.counters, vec![("b_total".to_string(), 2)]);
        assert_eq!(snap.gauges, vec![("a".to_string(), -3)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count(), 1);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let hub = MetricsHub::new();
        hub.set_enabled(true);
        let c = hub.counter("n_total");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 80_000);
    }

    #[test]
    fn label_splitting() {
        assert_eq!(split_labels("a_ns"), ("a_ns", None));
        assert_eq!(
            split_labels("a_ns{tenant=\"7\"}"),
            ("a_ns", Some("tenant=\"7\""))
        );
        assert_eq!(sanitize_base("serve sojourn-ns"), "serve_sojourn_ns");
    }

    #[test]
    fn histogram_snapshot_roundtrips_values() {
        let hub = MetricsHub::new();
        hub.set_enabled(true);
        let h = hub.histogram("lat_ns");
        for v in [10u64, 20, 30, 40, 50] {
            h.record(v);
        }
        let snap = hub.snapshot();
        let (_, hs) = &snap.histograms[0];
        assert_eq!(hs.count(), 5);
        assert_eq!(hs.percentile(1.0), 50);
    }
}
