//! Unified observability for autonomic skeletons.
//!
//! The paper's premise is event-driven introspection of skeleton
//! execution; this crate is where every concern's signals land so they
//! can be queried and exported together. It provides:
//!
//! * [`MetricsHub`] — a process-local registry of named metrics with
//!   one shared enable gate. Handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) are registered once and recorded through
//!   lock-free; while the hub is disabled (the default) every record
//!   collapses to one relaxed load and a branch, the same shape as the
//!   engine's listener-sampling fast path.
//! * [`HistogramSnapshot`] — a plain log-bucketed histogram with exact
//!   count conservation under [`merge`](HistogramSnapshot::merge) and
//!   bounded-error `p50/p95/p99` queries; the single shared latency
//!   math for benches, per-tenant sojourns, and exports.
//! * [`MetricsSnapshot`] — a point-in-time copy of everything, with
//!   Prometheus text and JSON exporters (round-trippable via
//!   [`MetricsSnapshot::from_json`]).
//! * [`ChromeTrace`] — a `chrome://tracing` timeline writer fed from
//!   the pool's `TelemetrySample` streams and the adapt layer's
//!   decision logs.
//!
//! The instrumented call sites live upstream: the pool records wake
//! latency, steal/park/spin counts, and queue depth; the engine records
//! submit→start→finish span durations; the serve registry records
//! per-tenant sojourn histograms and admission outcomes; the trigger
//! engine records rule fires and predicted-vs-realized forecast error.
//! They all share the pool's hub, so one
//! [`MetricsHub::snapshot`] sees the whole stack.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chrome;
mod hist;
mod hub;
mod snapshot;

pub use chrome::{ChromeTrace, TraceEvent};
pub use hist::{Histogram, HistogramSnapshot};
pub use hub::{Counter, Gauge, MetricsHub};
pub use snapshot::MetricsSnapshot;

// The JSON value type [`TraceEvent::args`] and the JSON exporter speak,
// re-exported so downstream crates need no direct `askel-core` edge to
// build or inspect trace arguments.
pub use askel_core::json::Json;
