//! Point-in-time metric snapshots and the text exporters.
//!
//! A [`MetricsSnapshot`] is plain data — counters, gauges, and
//! [`HistogramSnapshot`](crate::HistogramSnapshot)s in registration
//! order. [`MetricsHub::snapshot`](crate::MetricsHub::snapshot)
//! produces one; layers with single-writer histograms outside the hub
//! (the serve registry's per-tenant sojourns) append theirs before
//! exporting. Two formats:
//!
//! * **Prometheus text exposition** ([`to_prometheus`]): counters and
//!   gauges as plain samples, histograms as summaries with
//!   `quantile="0.5|0.95|0.99"` series plus `_sum`/`_count`/`_min`/
//!   `_max`. Labelled names (`a_ns{tenant="7"}`) splice the quantile
//!   label into the existing set. [`scrape`] reads one series back out
//!   of the text — the round-trip check benches and tests use.
//! * **JSON** ([`to_json`]/[`from_json`]): a lossless dump through
//!   [`askel_core::json`] including raw histogram buckets, so a
//!   snapshot can be persisted and re-queried (`from_json ∘ to_json`
//!   is the identity, which the integration tests pin down).
//!
//! [`to_prometheus`]: MetricsSnapshot::to_prometheus
//! [`to_json`]: MetricsSnapshot::to_json
//! [`from_json`]: MetricsSnapshot::from_json
//! [`scrape`]: MetricsSnapshot::scrape

use askel_core::json::Json;

use crate::hist::HistogramSnapshot;
use crate::hub::{sanitize_base, split_labels};

/// The quantiles the Prometheus exporter emits for each histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// A point-in-time copy of every metric (see the module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)` per counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, last value)` per gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, histogram)` per histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Appends a single-writer histogram kept outside the hub (e.g. one
    /// serve tenant's sojourn series) under `name`.
    pub fn push_histogram(&mut self, name: impl Into<String>, h: HistogramSnapshot) {
        self.histograms.push((name.into(), h));
    }

    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<(String, String)> = None;
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            let key = (base.to_string(), kind.to_string());
            if last_type.as_ref() != Some(&key) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_type = Some(key);
            }
        };
        for (name, v) in &self.counters {
            let (base, labels) = split_labels(name);
            let base = sanitize_base(base);
            type_line(&mut out, &base, "counter");
            out.push_str(&render_sample(&base, labels, None, &v.to_string()));
        }
        for (name, v) in &self.gauges {
            let (base, labels) = split_labels(name);
            let base = sanitize_base(base);
            type_line(&mut out, &base, "gauge");
            out.push_str(&render_sample(&base, labels, None, &v.to_string()));
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            let base = sanitize_base(base);
            type_line(&mut out, &base, "summary");
            for (q, qs) in QUANTILES {
                let v = h.percentile(q);
                out.push_str(&render_sample(
                    &base,
                    labels,
                    Some(("quantile", qs)),
                    &v.to_string(),
                ));
            }
            out.push_str(&render_sample(
                &format!("{base}_sum"),
                labels,
                None,
                &h.sum().to_string(),
            ));
            out.push_str(&render_sample(
                &format!("{base}_count"),
                labels,
                None,
                &h.count().to_string(),
            ));
            out.push_str(&render_sample(
                &format!("{base}_min"),
                labels,
                None,
                &h.min().to_string(),
            ));
            out.push_str(&render_sample(
                &format!("{base}_max"),
                labels,
                None,
                &h.max().to_string(),
            ));
        }
        out
    }

    /// Reads one sample back out of a Prometheus text export: the value
    /// of the line whose series (everything before the space) is
    /// exactly `series`. This is the exporter's round-trip check.
    pub fn scrape(text: &str, series: &str) -> Option<f64> {
        text.lines().find_map(|line| {
            let (s, v) = line.rsplit_once(' ')?;
            if s == series {
                v.parse().ok()
            } else {
                None
            }
        })
    }

    /// A lossless JSON dump (see the module docs).
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let (base, buckets) = h.raw();
                (
                    n.clone(),
                    Json::Obj(vec![
                        ("base".to_string(), Json::Num(base as f64)),
                        (
                            "buckets".to_string(),
                            Json::Arr(buckets.iter().map(|&c| Json::Num(c as f64)).collect()),
                        ),
                        ("sum".to_string(), Json::Num(h.sum() as f64)),
                        ("min".to_string(), Json::Num(h.min() as f64)),
                        ("max".to_string(), Json::Num(h.max() as f64)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
        ])
    }

    /// Rebuilds a snapshot from [`to_json`](MetricsSnapshot::to_json)
    /// output; `None` if the shape doesn't match.
    pub fn from_json(json: &Json) -> Option<MetricsSnapshot> {
        let obj = |j: &Json| match j {
            Json::Obj(pairs) => Some(pairs.clone()),
            _ => None,
        };
        let mut snap = MetricsSnapshot::default();
        for (n, v) in obj(json.get("counters")?)? {
            snap.counters.push((n, v.as_f64()? as u64));
        }
        for (n, v) in obj(json.get("gauges")?)? {
            snap.gauges.push((n, v.as_f64()? as i64));
        }
        for (n, h) in obj(json.get("histograms")?)? {
            let base = h.get("base")?.as_f64()? as usize;
            let buckets = h
                .get("buckets")?
                .as_array()?
                .iter()
                .map(|c| c.as_f64().map(|f| f as u64))
                .collect::<Option<Vec<u64>>>()?;
            let sum = h.get("sum")?.as_f64()? as u128;
            let min = h.get("min")?.as_f64()? as u64;
            let max = h.get("max")?.as_f64()? as u64;
            snap.histograms.push((
                n,
                HistogramSnapshot::from_raw(base, buckets, sum, min, max)?,
            ));
        }
        Some(snap)
    }
}

/// One exposition line: `base{labels,extra} value\n`.
fn render_sample(
    base: &str,
    labels: Option<&str>,
    extra: Option<(&str, &str)>,
    value: &str,
) -> String {
    let mut label_set = String::new();
    if let Some(l) = labels {
        label_set.push_str(l);
    }
    if let Some((k, v)) = extra {
        if !label_set.is_empty() {
            label_set.push(',');
        }
        label_set.push_str(&format!("{k}=\"{v}\""));
    }
    if label_set.is_empty() {
        format!("{base} {value}\n")
    } else {
        format!("{base}{{{label_set}}} {value}\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsHub;

    fn sample_snapshot() -> MetricsSnapshot {
        let hub = MetricsHub::new();
        hub.set_enabled(true);
        hub.counter("pool_steals_total").add(3);
        hub.gauge("pool_queue_depth").set(17);
        let h = hub.histogram("engine_span_ns");
        for v in [100u64, 200, 300, 90_000] {
            h.record(v);
        }
        let mut snap = hub.snapshot();
        let mut tenant = HistogramSnapshot::new();
        tenant.record(5_000);
        tenant.record(7_000);
        snap.push_histogram("serve_sojourn_ns{tenant=\"7\"}", tenant);
        snap
    }

    #[test]
    fn prometheus_text_has_all_series() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE pool_steals_total counter\n"));
        assert_eq!(
            MetricsSnapshot::scrape(&text, "pool_steals_total"),
            Some(3.0)
        );
        assert_eq!(
            MetricsSnapshot::scrape(&text, "pool_queue_depth"),
            Some(17.0)
        );
        assert_eq!(
            MetricsSnapshot::scrape(&text, "engine_span_ns_count"),
            Some(4.0)
        );
        // The labelled tenant series carries its label plus the quantile.
        let p99 =
            MetricsSnapshot::scrape(&text, "serve_sojourn_ns{tenant=\"7\",quantile=\"0.99\"}")
                .unwrap();
        let expect = snap
            .histogram("serve_sojourn_ns{tenant=\"7\"}")
            .unwrap()
            .percentile(0.99);
        assert_eq!(p99, expect as f64);
    }

    #[test]
    fn prometheus_quantiles_match_snapshot() {
        let snap = sample_snapshot();
        let text = snap.to_prometheus();
        let h = snap.histogram("engine_span_ns").unwrap();
        for (q, qs) in QUANTILES {
            let series = format!("engine_span_ns{{quantile=\"{qs}\"}}");
            assert_eq!(
                MetricsSnapshot::scrape(&text, &series),
                Some(h.percentile(q) as f64)
            );
        }
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let snap = sample_snapshot();
        let rendered = snap.to_json().render();
        let parsed = Json::parse(&rendered).expect("exporter emits valid JSON");
        let back = MetricsSnapshot::from_json(&parsed).expect("shape preserved");
        assert_eq!(back, snap);
        // Percentiles survive the trip exactly.
        assert_eq!(
            back.histogram("engine_span_ns").unwrap().percentile(0.99),
            snap.histogram("engine_span_ns").unwrap().percentile(0.99)
        );
    }
}
