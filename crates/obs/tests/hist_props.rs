//! Property tests for the histogram algebra: snapshot merge must be
//! associative and commutative with exact count/sum conservation, or
//! multi-shard and per-tenant aggregation would depend on merge order.

use proptest::prelude::*;

use askel_obs::HistogramSnapshot;

/// Builds a histogram from a value series.
fn hist(values: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// A value series spanning the interesting ranges: exact unit buckets,
/// log buckets, and huge outliers.
fn series() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..64,
            64u64..100_000,
            100_000u64..10_000_000_000,
            Just(u64::MAX),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_commutative(a in series(), b in series()) {
        let (ha, hb) = (hist(&a), hist(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in series(), b in series(), c in series()) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ∪ (b ∪ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_conserves_count_and_sum_exactly(a in series(), b in series()) {
        let (ha, hb) = (hist(&a), hist(&b));
        let mut m = ha.clone();
        m.merge(&hb);
        prop_assert_eq!(m.count(), a.len() as u64 + b.len() as u64);
        let expect: u128 = a.iter().chain(b.iter()).map(|&v| v as u128).sum();
        prop_assert_eq!(m.sum(), expect);
        let bucket_total: u64 = m.buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_total, m.count());
    }

    #[test]
    fn merge_matches_recording_the_concatenation(a in series(), b in series()) {
        let mut m = hist(&a);
        m.merge(&hist(&b));
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(m, hist(&concat));
    }

    #[test]
    fn percentiles_never_understate(
        values in proptest::collection::vec(
            prop_oneof![
                0u64..64,
                64u64..100_000,
                100_000u64..10_000_000_000,
                Just(u64::MAX),
            ],
            1..60,
        ),
    ) {
        let h = hist(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for p in [0.5, 0.95, 0.99, 1.0] {
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let reported = h.percentile(p);
            prop_assert!(reported >= exact, "p{p}: reported {reported} < exact {exact}");
            // Bounded relative quantization error (5 sub-bucket bits):
            // the reported value is the bucket's upper bound, and a
            // bucket is at most 1/32 of its values wide.
            let bound = exact.saturating_add(exact / 32);
            prop_assert!(
                reported <= bound,
                "p{p}: reported {reported} > bound {bound} (exact {exact})"
            );
        }
    }
}
