//! A dynamically resizable worker pool.
//!
//! The paper's self-optimization loop works by *changing the number of
//! threads allocated to a running skeleton*. Rayon-style pools fix their
//! size at construction, so this crate provides the substrate Skandium has
//! under the hood: a pool whose worker count can be raised and lowered
//! while tasks are in flight.
//!
//! Semantics chosen to match the behaviour the paper reports:
//!
//! * **LIFO ready queue** — Skandium's scheduler finishes the most recently
//!   produced work first (§5 of the paper observes `split → all its
//!   executes → its merge` completing before sibling splits start); a LIFO
//!   stack reproduces that order, and the discrete-event simulator uses the
//!   same discipline so both engines agree.
//! * **Cooperative shrink** — running tasks are never preempted; lowering
//!   the target lets surplus workers retire when they next go idle. This is
//!   why the paper "does not reduce the LP as fast as it increases it".
//! * **Immediate grow** — raising the target spawns workers right away, so
//!   an autonomic increase takes effect at the next ready task.
//!
//! [`PoolTelemetry`] records a timestamped timeline of active-task counts
//! and target changes; the figure benches plot it directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod telemetry;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use askel_skeletons::{Clock, RealClock};

pub use telemetry::{PoolTelemetry, TelemetrySample, TimelinePoint};

/// A unit of work for the pool.
pub type Task = Box<dyn FnOnce() + Send>;

struct PoolState {
    /// LIFO stack of ready tasks.
    queue: Vec<Task>,
    /// Desired number of workers (the LP).
    target: usize,
    /// Workers currently alive (idle or running).
    live: usize,
    /// Set once; workers drain out.
    shutdown: bool,
    /// Handles of every worker ever spawned (joined at shutdown).
    handles: Vec<JoinHandle<()>>,
}

struct PoolInner {
    state: Mutex<PoolState>,
    cond: Condvar,
    telemetry: PoolTelemetry,
    clock: Arc<dyn Clock>,
}

/// A worker pool whose size can change while work is in flight.
///
/// Cloning shares the pool. Dropping the last handle shuts the pool down
/// and joins its workers.
pub struct ResizablePool {
    inner: Arc<PoolInner>,
    owner: bool,
}

impl Clone for ResizablePool {
    fn clone(&self) -> Self {
        ResizablePool {
            inner: Arc::clone(&self.inner),
            owner: false,
        }
    }
}

impl ResizablePool {
    /// Creates a pool with `workers` initial workers and a wall clock for
    /// telemetry timestamps.
    pub fn new(workers: usize) -> Self {
        Self::with_clock(workers, Arc::new(RealClock::new()))
    }

    /// Creates a pool with an explicit clock (tests use a manual clock).
    pub fn with_clock(workers: usize, clock: Arc<dyn Clock>) -> Self {
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: Vec::new(),
                target: 0,
                live: 0,
                shutdown: false,
                handles: Vec::new(),
            }),
            cond: Condvar::new(),
            telemetry: PoolTelemetry::new(),
            clock,
        });
        let pool = ResizablePool { inner, owner: true };
        pool.set_target_workers(workers);
        pool
    }

    /// Submits one task. Panics in the task are caught and recorded in the
    /// telemetry; they never kill a worker.
    pub fn submit(&self, task: Task) {
        let mut state = self.inner.state.lock();
        assert!(!state.shutdown, "submit on a shut-down pool");
        state.queue.push(task);
        drop(state);
        self.inner.cond.notify_one();
    }

    /// Submits several tasks at once; they are stacked in order, so the
    /// *last* one is picked up first (LIFO).
    pub fn submit_all(&self, tasks: impl IntoIterator<Item = Task>) {
        let mut state = self.inner.state.lock();
        assert!(!state.shutdown, "submit on a shut-down pool");
        state.queue.extend(tasks);
        drop(state);
        self.inner.cond.notify_all();
    }

    /// Changes the desired worker count (the skeleton's LP).
    ///
    /// Growth spawns workers immediately; shrink lets surplus workers
    /// retire when they next go idle (running tasks finish undisturbed).
    pub fn set_target_workers(&self, target: usize) {
        let mut state = self.inner.state.lock();
        if state.shutdown {
            return;
        }
        let now = self.inner.clock.now();
        if target != state.target {
            self.inner.telemetry.record_target(now, target);
        }
        state.target = target;
        while state.live < target {
            state.live += 1;
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name("askel-worker".to_string())
                .spawn(move || worker_loop(inner))
                .expect("failed to spawn pool worker");
            state.handles.push(handle);
        }
        drop(state);
        // Wake idle workers so surplus ones notice and retire.
        self.inner.cond.notify_all();
    }

    /// The current worker target (the LP the controller last requested).
    pub fn target_workers(&self) -> usize {
        self.inner.state.lock().target
    }

    /// Workers currently alive (may exceed the target briefly while a
    /// shrink drains).
    pub fn live_workers(&self) -> usize {
        self.inner.state.lock().live
    }

    /// Tasks currently queued (not yet picked up).
    pub fn queued_tasks(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Tasks currently executing.
    pub fn active_tasks(&self) -> usize {
        self.inner.telemetry.active_now()
    }

    /// The pool's telemetry (shared).
    pub fn telemetry(&self) -> &PoolTelemetry {
        &self.inner.telemetry
    }

    /// The pool's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// Blocks until the queue is empty and no task is running.
    ///
    /// Only meaningful when no concurrent submitter keeps adding work that
    /// the caller doesn't know about; the engine uses futures instead, this
    /// is a convenience for tests and benches.
    pub fn wait_idle(&self) {
        loop {
            {
                let state = self.inner.state.lock();
                if state.queue.is_empty() && self.inner.telemetry.active_now() == 0 {
                    return;
                }
            }
            std::thread::yield_now();
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }

    /// Shuts the pool down: running tasks finish, queued tasks are
    /// executed, then workers exit and are joined.
    pub fn shutdown_and_join(&self) {
        let handles = {
            let mut state = self.inner.state.lock();
            if state.shutdown {
                Vec::new()
            } else {
                state.shutdown = true;
                std::mem::take(&mut state.handles)
            }
        };
        self.inner.cond.notify_all();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ResizablePool {
    fn drop(&mut self) {
        if self.owner {
            self.shutdown_and_join();
        }
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        let task = {
            let mut state = inner.state.lock();
            loop {
                if state.live > state.target || (state.shutdown && state.queue.is_empty()) {
                    state.live -= 1;
                    return;
                }
                if let Some(task) = state.queue.pop() {
                    // Record the start while still holding the queue lock:
                    // otherwise `wait_idle` could observe an empty queue
                    // with zero active tasks while this one is in hand.
                    inner.telemetry.record_task_start(inner.clock.now());
                    break task;
                }
                inner.cond.wait(&mut state);
            }
        };
        let result = catch_unwind(AssertUnwindSafe(task));
        let end = inner.clock.now();
        inner.telemetry.record_task_end(end, result.is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_submitted_tasks() {
        let pool = ResizablePool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(Box::new(move || tx.send(i).unwrap()));
        }
        let mut got: Vec<i32> = (0..10)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        pool.shutdown_and_join();
    }

    #[test]
    fn single_worker_executes_lifo() {
        let pool = ResizablePool::new(0); // hold tasks until a worker exists
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let order = Arc::clone(&order);
            pool.submit(Box::new(move || order.lock().push(i)));
        }
        pool.set_target_workers(1);
        pool.wait_idle();
        assert_eq!(*order.lock(), vec![4, 3, 2, 1, 0]);
        pool.shutdown_and_join();
    }

    #[test]
    fn grow_takes_effect_immediately() {
        let pool = ResizablePool::new(1);
        assert_eq!(pool.target_workers(), 1);
        pool.set_target_workers(4);
        assert_eq!(pool.target_workers(), 4);
        assert_eq!(pool.live_workers(), 4);
        pool.shutdown_and_join();
    }

    #[test]
    fn shrink_drains_cooperatively() {
        let pool = ResizablePool::new(4);
        pool.set_target_workers(1);
        // Give workers a moment to observe the new target.
        for _ in 0..200 {
            if pool.live_workers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.live_workers(), 1);
        // The surviving worker still runs tasks.
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || tx.send(()).unwrap()));
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.shutdown_and_join();
    }

    #[test]
    fn running_tasks_survive_shrink() {
        let pool = ResizablePool::new(2);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            d.fetch_add(1, Ordering::SeqCst);
        }));
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.set_target_workers(0); // shrink below the running task
        release_tx.send(()).unwrap();
        for _ in 0..200 {
            if done.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::SeqCst), 1, "running task must finish");
        pool.shutdown_and_join();
    }

    #[test]
    fn panicking_task_does_not_kill_worker() {
        let pool = ResizablePool::new(1);
        pool.submit(Box::new(|| panic!("muscle failure")));
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || tx.send(42).unwrap()));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        pool.wait_idle(); // LIFO may run the ok-task before the panicking one
        assert_eq!(pool.telemetry().panics(), 1);
        pool.shutdown_and_join();
    }

    #[test]
    fn tasks_spawning_tasks_complete() {
        let pool = ResizablePool::new(2);
        let (tx, rx) = mpsc::channel();
        let p2 = pool.clone();
        pool.submit(Box::new(move || {
            let tx2 = tx.clone();
            p2.submit(Box::new(move || tx2.send("child").unwrap()));
            tx.send("parent").unwrap();
        }));
        let mut got = vec![
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec!["child", "parent"]);
        pool.shutdown_and_join();
    }

    #[test]
    fn queued_tasks_run_before_shutdown_completes() {
        let pool = ResizablePool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let d = Arc::clone(&done);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(1));
                d.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown_and_join();
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn telemetry_peak_tracks_concurrency() {
        let pool = ResizablePool::new(3);
        let (ready_tx, ready_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        for _ in 0..3 {
            let ready = ready_tx.clone();
            let release = Arc::clone(&release_rx);
            pool.submit(Box::new(move || {
                ready.send(()).unwrap();
                release.lock().recv().unwrap();
            }));
        }
        for _ in 0..3 {
            ready_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(pool.active_tasks(), 3);
        for _ in 0..3 {
            release_tx.send(()).unwrap();
        }
        pool.wait_idle();
        assert_eq!(pool.telemetry().peak_active(), 3);
        pool.shutdown_and_join();
    }
}
