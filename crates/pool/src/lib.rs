//! A dynamically resizable worker pool over a sharded, work-stealing
//! ready queue.
//!
//! The paper's self-optimization loop works by *changing the number of
//! threads allocated to a running skeleton*. Rayon-style pools fix their
//! size at construction, so this crate provides the substrate Skandium has
//! under the hood: a pool whose worker count can be raised and lowered
//! while tasks are in flight.
//!
//! Dispatch is sharded (`docs/ARCHITECTURE.md` has the full picture):
//!
//! * **Per-worker deques** — a task submitted from inside a worker (the
//!   engine's continuations) lands on that worker's own deque and is
//!   popped LIFO, so the most recently produced work runs next on a warm
//!   cache. Skandium's scheduler has the same discipline (§5 of the paper
//!   observes `split → all its executes → its merge` completing before
//!   sibling splits start), and the discrete-event simulator mirrors it.
//! * **Global injector** — external `submit`/`submit_all` push onto a
//!   LIFO overflow stack; idle workers grab small batches from its top.
//! * **Work stealing** — a worker with nothing local and an empty
//!   injector steals the oldest half of another worker's deque (FIFO from
//!   the victim, so thieves pick up the work least likely to be
//!   cache-resident at the victim).
//! * **TLS next-task slot** — a task that produces exactly one
//!   continuation can hand it straight to the worker running it
//!   ([`ResizablePool::submit_next`]): the follow-on task runs
//!   immediately after the current one returns, bypassing the deque and
//!   the injector entirely. Under LIFO scheduling the newest submission
//!   would run next on that worker anyway, so the slot changes dispatch
//!   cost, not order; slot tasks stay visible to the exact accounting
//!   below and are drained (never dropped) across shrink and shutdown.
//! * **Parker-based sleep** — an idle worker registers itself as a
//!   sleeper and parks on its own one-token parker; submitters wake
//!   exactly as many sleepers as they queued tasks. There is no broadcast
//!   condvar and no thundering herd.
//!
//! Resize stays autonomic-correct under sharding:
//!
//! * **Immediate grow** — raising the target spawns workers right away;
//!   they participate in injector grabs and stealing from their first
//!   loop iteration, so an autonomic increase takes effect at the next
//!   ready task.
//! * **Cooperative shrink** — running tasks are never preempted; lowering
//!   the target lets surplus workers retire when they next reach the top
//!   of their loop. A retiring worker first drains its own deque back
//!   into the injector so no queued task is stranded. This is why the
//!   paper "does not reduce the LP as fast as it increases it".
//!
//! The pool keeps an exact count of queued tasks across the injector
//! *and* every worker deque, so [`ResizablePool::queued_tasks`] and
//! [`ResizablePool::wait_idle`] cannot miss work resident in a local
//! deque. [`PoolTelemetry`] records a timestamped timeline of active-task
//! counts and target changes; the figure benches plot it directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod queue;
pub mod telemetry;

use std::cell::{Cell, RefCell};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Mutex, RwLock};

use askel_obs::{Counter, Gauge, Histogram, MetricsHub};
use askel_skeletons::{Clock, RealClock, TimeNs};

use queue::{Injector, Parker, Shard};
pub use telemetry::{telemetry_to_chrome, PoolTelemetry, TelemetrySample, TimelinePoint};

/// A unit of work for the pool.
pub type Task = Box<dyn FnOnce() + Send>;

/// The pool's dispatch-health metrics, registered on its
/// [`MetricsHub`] at construction (all zero-cost while the hub is
/// disabled, which is the default):
///
/// * `pool_steals_total` — successful steal batches (work migrated off
///   a busy worker).
/// * `pool_parks_total` — times a worker gave up spinning and parked.
/// * `pool_spin_rounds_total` — empty find-task rounds spent in the
///   spin-before-park window; together with `pool_parks_total` and the
///   wake-latency histogram this is the input to tuning
///   `ASKEL_POOL_SPIN_ROUNDS`.
/// * `pool_wakes_total` — unparks issued by submitters and
///   torch-passing workers.
/// * `pool_wake_latency_ns` — histogram of unpark-signal → worker-
///   resumed latency (the futex round-trip the spin window tries to
///   avoid).
/// * `pool_queue_depth` — gauge of queued tasks, refreshed on every
///   submit.
struct PoolMetrics {
    steals: Counter,
    parks: Counter,
    spins: Counter,
    wakes: Counter,
    wake_latency: Histogram,
    queue_depth: Gauge,
}

impl PoolMetrics {
    fn register(hub: &MetricsHub) -> Self {
        PoolMetrics {
            steals: hub.counter("pool_steals_total"),
            parks: hub.counter("pool_parks_total"),
            spins: hub.counter("pool_spin_rounds_total"),
            wakes: hub.counter("pool_wakes_total"),
            wake_latency: hub.histogram("pool_wake_latency_ns"),
            queue_depth: hub.gauge("pool_queue_depth"),
        }
    }
}

/// Slow-path state: worker lifecycle and the sleeper registry.
///
/// Guarded by one mutex, but only touched on resize, retire, sleep and
/// wake transitions — never on the submit/pop fast path.
struct Coordinator {
    /// Desired number of workers (the LP).
    target: usize,
    /// Workers currently alive (idle or running).
    live: usize,
    /// Set once; workers drain out.
    shutdown: bool,
    /// Id for the next spawned worker's shard.
    next_worker_id: u64,
    /// Handles of every worker ever spawned (joined at shutdown).
    handles: Vec<JoinHandle<()>>,
    /// Parkers of workers currently asleep (or about to park).
    sleepers: Vec<Arc<Parker>>,
}

struct PoolInner {
    coord: Mutex<Coordinator>,
    /// Shards of currently registered workers (steal targets).
    shards: RwLock<Vec<Arc<Shard>>>,
    /// Overflow queue for external submissions.
    injector: Injector,
    /// Monotonic count of tasks ever submitted. Together with the
    /// telemetry's started/finished counters this gives exact queue
    /// accounting without a decrement on the pop fast path:
    /// `queued = submitted - started`, `idle = (submitted == finished)`.
    submitted: AtomicUsize,
    /// Tasks currently resident in some worker's TLS next-task slot.
    /// They are counted in `submitted` (so `queued_tasks`/`wait_idle`
    /// stay exact) but are invisible to other workers — only the
    /// depositing worker can run them — so the sleep protocol and the
    /// pass-the-torch checks subtract this count: otherwise an idle
    /// worker could never park while any slot was occupied (its park
    /// re-check would see phantom queued work and spin at 100% CPU for
    /// the duration of the depositor's current task).
    slotted: AtomicUsize,
    /// Mirror of `sleepers.len()` for the lock-free wake fast path.
    sleeping: AtomicUsize,
    /// Lock-free mirrors of the coordinator's lifecycle fields.
    target: AtomicUsize,
    live: AtomicUsize,
    shutdown: AtomicBool,
    telemetry: PoolTelemetry,
    clock: Arc<dyn Clock>,
    /// The metrics hub every layer sharing this pool registers onto.
    hub: Arc<MetricsHub>,
    metrics: PoolMetrics,
}

/// The worker this thread belongs to, if any; lets `submit` route tasks
/// produced on a worker straight to that worker's own deque and
/// [`ResizablePool::submit_next`] hand a continuation straight to the
/// worker itself.
struct CurrentWorker {
    /// Address of the owning pool's `PoolInner`, for identity checks.
    pool: usize,
    shard: Arc<Shard>,
    /// The TLS next-task slot: a task deposited here by `submit_next`
    /// runs on this worker immediately after the current task returns,
    /// without ever touching the deque or the injector. Holds at most
    /// one task; a second deposit spills the first to the deque so LIFO
    /// order ("most recent submission runs next") is preserved.
    next: Cell<Option<Task>>,
}

thread_local! {
    static CURRENT: RefCell<Option<CurrentWorker>> = const { RefCell::new(None) };
}

impl PoolInner {
    /// Identity of this pool for thread-local routing.
    fn addr(self: &Arc<Self>) -> usize {
        Arc::as_ptr(self) as usize
    }

    /// Wakes up to `n` sleeping workers.
    fn wake(&self, n: usize) {
        if n == 0 || self.sleeping.load(Ordering::SeqCst) == 0 {
            return;
        }
        let popped = {
            let mut coord = self.coord.lock();
            let keep = coord.sleepers.len().saturating_sub(n);
            let popped = coord.sleepers.split_off(keep);
            self.sleeping.store(coord.sleepers.len(), Ordering::SeqCst);
            popped
        };
        // Wake-latency probe: one clock read covers the whole batch,
        // and none at all while metrics are off (same discipline as
        // `sample_time`). The stamp rides the parker; the woken worker
        // records the delta.
        let stamp = if self.hub.enabled() && !popped.is_empty() {
            self.clock.now().0.max(1)
        } else {
            0
        };
        self.metrics.wakes.add(popped.len() as u64);
        for p in popped {
            if stamp != 0 {
                p.stamp_wake(stamp);
            }
            p.unpark();
        }
    }

    /// Wakes every sleeping worker (resize and shutdown transitions).
    fn wake_all(&self) {
        self.wake(usize::MAX);
    }

    /// A timestamp for telemetry samples; skips the clock read entirely
    /// when sample recording is off (the counters don't need it).
    fn sample_time(&self) -> TimeNs {
        if self.telemetry.is_recording() {
            self.clock.now()
        } else {
            TimeNs::ZERO
        }
    }

    /// Refreshes the queue-depth gauge; one relaxed load and a branch
    /// while metrics are off, so the submit fast path stays clean.
    fn note_queue_depth(&self) {
        if self.hub.enabled() {
            let queued = self
                .submitted
                .load(Ordering::SeqCst)
                .saturating_sub(self.telemetry.tasks_started());
            self.metrics.queue_depth.set(queued as i64);
        }
    }

    /// Whether some submitted task has not been picked up yet.
    fn has_queued(&self) -> bool {
        self.telemetry.tasks_started() < self.submitted.load(Ordering::SeqCst)
    }

    /// Whether some not-yet-started task is visible to *other* workers
    /// (injector or any deque) — i.e. queued work excluding slot-resident
    /// tasks. This is what parking and torch-passing decisions use: a
    /// slot task never justifies keeping a peer awake, since only its
    /// depositor can run it (and the depositor is, by construction, a
    /// worker that is currently awake inside a task). Saturating because
    /// the three counters are read separately and `slotted` moves both
    /// ways; a transiently high read only costs one spurious pass.
    fn has_stealable(&self) -> bool {
        let accounted = self.telemetry.tasks_started() + self.slotted.load(Ordering::SeqCst);
        self.submitted.load(Ordering::SeqCst) > accounted
    }
}

/// A worker pool whose size can change while work is in flight.
///
/// Cloning shares the pool. Dropping the last handle shuts the pool down
/// and joins its workers.
pub struct ResizablePool {
    inner: Arc<PoolInner>,
    owner: bool,
}

impl Clone for ResizablePool {
    fn clone(&self) -> Self {
        ResizablePool {
            inner: Arc::clone(&self.inner),
            owner: false,
        }
    }
}

impl ResizablePool {
    /// Creates a pool with `workers` initial workers and a wall clock for
    /// telemetry timestamps.
    pub fn new(workers: usize) -> Self {
        Self::with_clock(workers, Arc::new(RealClock::new()))
    }

    /// Creates a pool with an explicit clock (tests use a manual clock).
    pub fn with_clock(workers: usize, clock: Arc<dyn Clock>) -> Self {
        let hub = MetricsHub::new();
        let metrics = PoolMetrics::register(&hub);
        let inner = Arc::new(PoolInner {
            coord: Mutex::new(Coordinator {
                target: 0,
                live: 0,
                shutdown: false,
                next_worker_id: 0,
                handles: Vec::new(),
                sleepers: Vec::new(),
            }),
            shards: RwLock::new(Vec::new()),
            injector: Injector::new(),
            submitted: AtomicUsize::new(0),
            slotted: AtomicUsize::new(0),
            sleeping: AtomicUsize::new(0),
            target: AtomicUsize::new(0),
            live: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            telemetry: PoolTelemetry::new(),
            clock,
            hub,
            metrics,
        });
        let pool = ResizablePool { inner, owner: true };
        pool.set_target_workers(workers);
        pool
    }

    /// Submits one task. Panics in the task are caught and recorded in the
    /// telemetry; they never kill a worker.
    ///
    /// Called from a worker thread of this pool, the task goes to that
    /// worker's own deque (and runs next, LIFO); called from anywhere
    /// else it goes to the global injector.
    pub fn submit(&self, task: Task) {
        // Reserve the submitted slot *before* checking shutdown: workers
        // only exit once `shutdown && started == submitted`, so after
        // this increment they cannot all drain away between the check
        // and the push below. If shutdown already happened, roll the
        // reservation back and panic like the old lock-guarded assert.
        self.inner.submitted.fetch_add(1, Ordering::SeqCst);
        if self.inner.shutdown.load(Ordering::SeqCst) {
            self.inner.submitted.fetch_sub(1, Ordering::SeqCst);
            panic!("submit on a shut-down pool");
        }
        let addr = self.inner.addr();
        let overflow = CURRENT.with(|c| match &*c.borrow() {
            Some(w) if w.pool == addr => {
                w.shard.push(task);
                None
            }
            _ => Some(task),
        });
        if let Some(task) = overflow {
            self.inner.injector.push(task);
        }
        self.inner.note_queue_depth();
        self.inner.wake(1);
    }

    /// Submits a task as the calling worker's *next* task: it is placed
    /// in the worker's TLS next-task slot and runs on this worker
    /// immediately after the current task returns, without touching the
    /// deque or the injector (and without waking anyone — the runner is
    /// the caller itself).
    ///
    /// This is the handoff for single-continuation chains (pipe stages,
    /// while/for iterations, a fan-out's merge): under LIFO scheduling
    /// the most recent submission would run next on this worker anyway,
    /// so the slot changes only the cost, not the order. If the slot is
    /// already occupied, the older occupant spills to the worker's deque
    /// (where, as the deque's newest task, it still runs right after the
    /// slot drains — exactly the pure-LIFO order).
    ///
    /// Called from outside the pool's workers this is a plain
    /// [`submit`](Self::submit).
    ///
    /// Slot tasks count in `submitted`/`started`/`finished` like any
    /// other task, so [`queued_tasks`](Self::queued_tasks) sees a
    /// deposited-but-not-started slot task and
    /// [`wait_idle`](Self::wait_idle) cannot return while one is
    /// pending. A retiring
    /// or shutting-down worker never strands its slot: the drain loop
    /// pushes the occupant back onto the deque first, and the retire
    /// path drains the deque to the injector.
    pub fn submit_next(&self, task: Task) {
        // Same reserve-then-check dance as `submit`: see the comment there.
        self.inner.submitted.fetch_add(1, Ordering::SeqCst);
        if self.inner.shutdown.load(Ordering::SeqCst) {
            self.inner.submitted.fetch_sub(1, Ordering::SeqCst);
            panic!("submit on a shut-down pool");
        }
        let addr = self.inner.addr();
        let (overflow, spilled) = CURRENT.with(|c| match &*c.borrow() {
            Some(w) if w.pool == addr => {
                let spilled = match w.next.replace(Some(task)) {
                    // Spill the older occupant to the deque; the newest
                    // submission keeps the slot (LIFO order preserved).
                    // The spilled task is stealable, so a peer gets a
                    // wake for it like any worker-local submit. Net
                    // slot residency is unchanged (one left, one
                    // entered), so `slotted` moves only on a first
                    // deposit.
                    Some(prev) => {
                        w.shard.push(prev);
                        true
                    }
                    None => {
                        self.inner.slotted.fetch_add(1, Ordering::SeqCst);
                        false
                    }
                };
                (None, spilled)
            }
            _ => (Some(task), false),
        });
        let wake = overflow.is_some() || spilled;
        if let Some(task) = overflow {
            self.inner.injector.push(task);
        }
        self.inner.note_queue_depth();
        if wake {
            self.inner.wake(1);
        }
    }

    /// Submits several tasks at once, taking the destination queue's lock
    /// only once; they are stacked in order, so the *last* one is picked
    /// up first (LIFO).
    pub fn submit_all(&self, tasks: impl IntoIterator<Item = Task>) {
        self.submit_batch(tasks.into_iter().collect());
    }

    /// Batch submission: one queue-lock acquisition, then wakes as many
    /// sleeping workers as there are new tasks.
    pub fn submit_batch(&self, tasks: Vec<Task>) {
        if tasks.is_empty() {
            return;
        }
        let n = tasks.len();
        // Same reserve-then-check dance as `submit`: see the comment there.
        self.inner.submitted.fetch_add(n, Ordering::SeqCst);
        if self.inner.shutdown.load(Ordering::SeqCst) {
            self.inner.submitted.fetch_sub(n, Ordering::SeqCst);
            panic!("submit on a shut-down pool");
        }
        let addr = self.inner.addr();
        let overflow = CURRENT.with(|c| match &*c.borrow() {
            Some(w) if w.pool == addr => {
                w.shard.push_batch(tasks);
                None
            }
            _ => Some(tasks),
        });
        if let Some(tasks) = overflow {
            self.inner.injector.push_batch(tasks);
        }
        self.inner.note_queue_depth();
        self.inner.wake(n);
    }

    /// Whether the calling thread is one of this pool's workers.
    ///
    /// Engines use this to decide between running a continuation inline
    /// (safe only inside a worker, where the task is already counted)
    /// and submitting it.
    pub fn on_worker_thread(&self) -> bool {
        let addr = self.inner.addr();
        CURRENT.with(|c| matches!(&*c.borrow(), Some(w) if w.pool == addr))
    }

    /// Changes the desired worker count (the skeleton's LP).
    ///
    /// Growth spawns workers immediately; they steal and grab from the
    /// injector from their first iteration. Shrink lets surplus workers
    /// retire when they next go idle (running tasks finish undisturbed),
    /// and a retiring worker drains its deque back into the injector.
    pub fn set_target_workers(&self, target: usize) {
        let mut coord = self.inner.coord.lock();
        if coord.shutdown {
            return;
        }
        if target != coord.target {
            self.inner
                .telemetry
                .record_target(self.inner.clock.now(), target);
        }
        let shrinking = target < coord.target;
        coord.target = target;
        self.inner.target.store(target, Ordering::SeqCst);
        while coord.live < target {
            coord.live += 1;
            self.inner.live.store(coord.live, Ordering::SeqCst);
            let id = coord.next_worker_id;
            coord.next_worker_id += 1;
            let shard = Arc::new(Shard::new(id));
            self.inner.shards.write().push(Arc::clone(&shard));
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name("askel-worker".to_string())
                .spawn(move || worker_loop(inner, shard))
                .expect("failed to spawn pool worker");
            coord.handles.push(handle);
        }
        drop(coord);
        if shrinking {
            // Wake idle workers so surplus ones notice and retire.
            self.inner.wake_all();
        }
    }

    /// The current worker target (the LP the controller last requested).
    pub fn target_workers(&self) -> usize {
        self.inner.target.load(Ordering::SeqCst)
    }

    /// Workers currently alive (may exceed the target briefly while a
    /// shrink drains).
    pub fn live_workers(&self) -> usize {
        self.inner.live.load(Ordering::SeqCst)
    }

    /// Tasks currently queued (not yet picked up), counting the injector,
    /// every worker-local deque, *and* any occupied next-task slot.
    pub fn queued_tasks(&self) -> usize {
        self.inner
            .submitted
            .load(Ordering::SeqCst)
            .saturating_sub(self.inner.telemetry.tasks_started())
    }

    /// A cheap, slightly-stale read of [`queued_tasks`](Self::queued_tasks)
    /// for hot admission paths: both counters are loaded `Relaxed`, so
    /// the value can lag concurrent submits and pick-ups by a few
    /// tasks. Admission gates that sample the depth once per ingress
    /// batch (the serve layer's backpressure and latency gates) want
    /// exactly this trade: the gate is already coarse-grained by
    /// design, and the two `SeqCst` loads of the exact read are
    /// measurable at ~1 µs/item ingress budgets. Never use this for
    /// quiescence proofs — [`wait_idle`](Self::wait_idle) and
    /// [`queued_tasks`](Self::queued_tasks) stay exact.
    pub fn queue_depth_hint(&self) -> usize {
        self.inner
            .submitted
            .load(Ordering::Relaxed)
            .saturating_sub(self.inner.telemetry.tasks_started_hint())
    }

    /// Tasks currently executing.
    pub fn active_tasks(&self) -> usize {
        self.inner.telemetry.active_now()
    }

    /// The pool's telemetry (shared).
    pub fn telemetry(&self) -> &PoolTelemetry {
        &self.inner.telemetry
    }

    /// The pool's metrics hub (disabled by default; flip it with
    /// [`MetricsHub::set_enabled`]). Every layer sharing this pool —
    /// engine, serve registry, trigger engine — registers its metrics
    /// here, so one `snapshot()` covers the whole stack.
    pub fn metrics_hub(&self) -> &Arc<MetricsHub> {
        &self.inner.hub
    }

    /// The pool's clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// Blocks until no task is queued anywhere (injector or any worker
    /// deque) and no task is running.
    ///
    /// Only meaningful when no concurrent submitter keeps adding work that
    /// the caller doesn't know about; the engine uses futures instead, this
    /// is a convenience for tests and benches.
    pub fn wait_idle(&self) {
        let mut spins = 0u32;
        loop {
            // Both counters are monotonic and `finished <= submitted`
            // always holds, so reading `finished` *first* makes equality
            // a proof of quiescence: at the moment `submitted` is read,
            // finished' >= finished = submitted >= submitted' implies
            // every task submitted so far (including tasks spawned by
            // tasks, and any task currently in a worker's hands) has
            // finished. No lock and no queue inspection needed.
            let finished = self.inner.telemetry.tasks_finished();
            if self.inner.submitted.load(Ordering::SeqCst) == finished {
                return;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else if spins < 256 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Shuts the pool down: running tasks finish, queued tasks are
    /// executed, then workers exit and are joined.
    pub fn shutdown_and_join(&self) {
        let handles = {
            let mut coord = self.inner.coord.lock();
            if coord.shutdown {
                Vec::new()
            } else {
                coord.shutdown = true;
                self.inner.shutdown.store(true, Ordering::SeqCst);
                std::mem::take(&mut coord.handles)
            }
        };
        self.inner.wake_all();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ResizablePool {
    fn drop(&mut self) {
        if self.owner {
            self.shutdown_and_join();
        }
    }
}

/// Looks for a ready task: own deque first (LIFO), then a batch off the
/// injector, then stealing the oldest half of another worker's deque.
///
/// On success, if work remains queued, one more sleeper is woken — the
/// "pass the torch" scheme: submitters wake at most one worker per
/// submission and each worker that finds work recruits the next, so a
/// burst fans the whole pool out without a thundering herd, and the
/// wake check is a single atomic load once everyone is awake.
fn find_task(inner: &Arc<PoolInner>, shard: &Arc<Shard>) -> Option<Task> {
    let task = shard.pop().or_else(|| {
        let mut batch = inner.injector.grab_batch();
        if batch.is_empty() {
            batch = steal(inner, shard);
        }
        let task = batch.pop();
        shard.push_batch(batch);
        task
    })?;
    inner.telemetry.record_task_start(inner.sample_time());
    if inner.has_stealable() {
        inner.wake(1);
    }
    Some(task)
}

/// Executes one picked-up task whose start has already been recorded,
/// recording its end. Panics are caught and counted; they never kill the
/// worker.
fn run_task(inner: &Arc<PoolInner>, task: Task) {
    let result = catch_unwind(AssertUnwindSafe(task));
    inner
        .telemetry
        .record_task_end(inner.sample_time(), result.is_err());
}

/// Runs the chain of tasks deposited in this worker's TLS next-task slot
/// (see [`ResizablePool::submit_next`]): each completed task may hand the
/// worker its continuation, which runs immediately — no deque, no
/// injector, no wake.
///
/// Every link is recorded in `started`/`finished` exactly like a queued
/// task, so `queued_tasks`/`wait_idle` stay exact, and the torch is
/// passed exactly as in [`find_task`] (the check runs *after* the link is
/// marked started, so the link itself never triggers a spurious wake).
/// Between links the worker re-checks shutdown and shrink: if it has to
/// stop, the pending link goes back onto its deque — from where the
/// retire path drains it to the injector — so a retiring worker never
/// strands its slot.
fn drain_next_slot(inner: &Arc<PoolInner>, shard: &Arc<Shard>) {
    loop {
        let next = CURRENT.with(|c| c.borrow().as_ref().and_then(|w| w.next.take()));
        let Some(task) = next else {
            return;
        };
        // The task leaves the slot either way below (run now, or pushed
        // back to the deque where it is visible to thieves again).
        inner.slotted.fetch_sub(1, Ordering::SeqCst);
        if inner.shutdown.load(Ordering::SeqCst)
            || inner.live.load(Ordering::SeqCst) > inner.target.load(Ordering::SeqCst)
        {
            shard.push(task);
            return;
        }
        inner.telemetry.record_task_start(inner.sample_time());
        if inner.has_stealable() {
            inner.wake(1);
        }
        run_task(inner, task);
    }
}

/// Steals a batch from some other registered shard, trying victims in a
/// ring starting after this worker's own position.
///
/// The returned batch is oldest-first; the caller pops its *back* (the
/// newest stolen task) and keeps the rest.
fn steal(inner: &Arc<PoolInner>, shard: &Arc<Shard>) -> Vec<Task> {
    let shards = inner.shards.read();
    let n = shards.len();
    if n == 0 {
        return Vec::new();
    }
    let me = shards
        .iter()
        .position(|s| s.id() == shard.id())
        .unwrap_or(0);
    for k in 1..=n {
        let victim = &shards[(me + k) % n];
        if victim.id() == shard.id() {
            continue;
        }
        let batch = victim.steal_batch();
        if !batch.is_empty() {
            inner.metrics.steals.inc();
            return batch;
        }
    }
    Vec::new()
}

/// Removes `parker` from the sleeper registry (all copies), if present.
///
/// Workers call this whenever they abandon a registration while awake,
/// preserving the registry invariant "in `sleepers` ⟹ parked or about
/// to park" that `wake` relies on.
fn deregister_sleeper(inner: &PoolInner, parker: &Arc<Parker>) {
    let mut coord = inner.coord.lock();
    coord.sleepers.retain(|p| !Arc::ptr_eq(p, parker));
    inner.sleeping.store(coord.sleepers.len(), Ordering::SeqCst);
}

/// Unregisters `shard` and drains any tasks it still holds back into the
/// injector (the shrink drain protocol), waking workers to pick them up.
fn retire_shard(inner: &Arc<PoolInner>, shard: &Arc<Shard>) {
    inner.shards.write().retain(|s| s.id() != shard.id());
    let mut orphans = shard.drain_all();
    // The drain loop empties the TLS slot before any retire, but belt and
    // braces: a task still in the slot joins the orphans instead of being
    // dropped with the thread-local.
    let slot = CURRENT.with(|c| c.borrow().as_ref().and_then(|w| w.next.take()));
    if slot.is_some() {
        inner.slotted.fetch_sub(1, Ordering::SeqCst);
    }
    orphans.extend(slot);
    if !orphans.is_empty() {
        let n = orphans.len();
        inner.injector.push_batch(orphans);
        inner.wake(n);
    }
    CURRENT.with(|c| c.borrow_mut().take());
}

fn worker_loop(inner: Arc<PoolInner>, shard: Arc<Shard>) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(CurrentWorker {
            pool: inner.addr(),
            shard: Arc::clone(&shard),
            next: Cell::new(None),
        });
    });
    let parker = Arc::new(Parker::new());
    // Bounded spin-before-park: how many empty find_task rounds this
    // worker tolerates (first busy-spinning, then yielding) before it
    // registers as a sleeper and parks. Fan-out-heavy workloads submit
    // work in quick pulses; a worker that naps through the gap instead
    // of parking skips a futex wake on the submitter *and* a futex wait
    // on itself for the next pulse. Bounded, so an idle pool still
    // parks (no spinning herd), and every round re-checks the
    // retire/shutdown conditions at the top of the loop.
    // Default chosen by measurement on the engine-throughput benches
    // (fan-out pulses land well within the window); overridable for
    // tuning via `ASKEL_POOL_SPIN_ROUNDS`.
    let spin_rounds: u32 = std::env::var("ASKEL_POOL_SPIN_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let mut idle_rounds = 0u32;
    loop {
        // Retire if surplus (confirmed under the coordinator lock so
        // exactly `live - target` workers retire).
        if inner.live.load(Ordering::SeqCst) > inner.target.load(Ordering::SeqCst) {
            let mut coord = inner.coord.lock();
            if coord.live > coord.target {
                coord.live -= 1;
                inner.live.store(coord.live, Ordering::SeqCst);
                drop(coord);
                retire_shard(&inner, &shard);
                return;
            }
        }
        // Exit once shutdown is requested and nothing is queued anywhere.
        if inner.shutdown.load(Ordering::SeqCst) && !inner.has_queued() {
            let mut coord = inner.coord.lock();
            coord.live -= 1;
            inner.live.store(coord.live, Ordering::SeqCst);
            drop(coord);
            retire_shard(&inner, &shard);
            return;
        }
        if let Some(task) = find_task(&inner, &shard) {
            idle_rounds = 0;
            run_task(&inner, task);
            drain_next_slot(&inner, &shard);
            continue;
        }
        idle_rounds += 1;
        inner.metrics.spins.inc();
        if idle_rounds < spin_rounds {
            if idle_rounds < 4 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
            continue;
        }
        idle_rounds = 0;
        // Sleep protocol: register as a sleeper *first*, then re-check
        // for work/lifecycle changes, then park. A submitter increments
        // `submitted` before it reads `sleeping` (both SeqCst), so
        // either it sees this registration and wakes someone, or the
        // re-check below sees the new task — a wakeup is never lost.
        {
            let mut coord = inner.coord.lock();
            if coord.shutdown || coord.live > coord.target {
                continue;
            }
            coord.sleepers.push(Arc::clone(&parker));
            inner.sleeping.store(coord.sleepers.len(), Ordering::SeqCst);
        }
        if inner.has_stealable()
            || inner.shutdown.load(Ordering::SeqCst)
            || inner.live.load(Ordering::SeqCst) > inner.target.load(Ordering::SeqCst)
        {
            // Something arrived between registering and parking: cancel
            // the registration and go around again. A waker may have
            // popped us concurrently and left the parker token set; the
            // unconditional deregistration after `park()` below keeps
            // that stale token harmless.
            deregister_sleeper(&inner, &parker);
            // A waker that popped us concurrently may have stamped the
            // wake-latency probe; drop it so a later park doesn't
            // attribute this whole awake stretch to the futex.
            parker.take_wake_stamp();
            std::thread::yield_now();
            continue;
        }
        inner.metrics.parks.inc();
        parker.park();
        // Wake-latency probe: `wake` stamped its clock reading on the
        // parker just before the unpark; the delta to now is the futex
        // round-trip the spin-before-park window is tuned against. No
        // clock read unless a stamp was actually deposited (metrics on).
        let stamp = parker.take_wake_stamp();
        if stamp != 0 {
            inner
                .metrics
                .wake_latency
                .record(inner.clock.now().0.saturating_sub(stamp));
        }
        // Deregister unconditionally before continuing, restoring the
        // invariant "in `sleepers` ⟹ parked or about to park". After a
        // genuine wake the waker already popped the registration and
        // this is a no-op, but a stale token (deposited by a waker that
        // popped us while we took the cancel path above) makes `park`
        // return instantly with the fresh registration still in place.
        // Left there, the entry would go stale the moment this worker
        // picks up a task: a later `wake(1)` could pop it and unpark an
        // already-busy worker while a real sleeper stays parked with
        // work queued — a stall that pass-the-torch cannot recover from.
        deregister_sleeper(&inner, &parker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_submitted_tasks() {
        let pool = ResizablePool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..10 {
            let tx = tx.clone();
            pool.submit(Box::new(move || tx.send(i).unwrap()));
        }
        let mut got: Vec<i32> = (0..10)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        pool.shutdown_and_join();
    }

    #[test]
    fn single_worker_executes_lifo() {
        let pool = ResizablePool::new(0); // hold tasks until a worker exists
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let order = Arc::clone(&order);
            pool.submit(Box::new(move || order.lock().push(i)));
        }
        pool.set_target_workers(1);
        pool.wait_idle();
        assert_eq!(*order.lock(), vec![4, 3, 2, 1, 0]);
        pool.shutdown_and_join();
    }

    #[test]
    fn worker_local_spawns_run_lifo_before_injected_work() {
        // A task spawned from a worker goes to that worker's deque and
        // runs before older injected work (the engine's split → executes
        // → merge discipline).
        let pool = ResizablePool::new(0);
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        let p2 = pool.clone();
        pool.submit(Box::new(move || {
            o.lock().push("parent");
            let o2 = Arc::clone(&o);
            p2.submit(Box::new(move || o2.lock().push("child")));
        }));
        let o = Arc::clone(&order);
        pool.submit(Box::new(move || o.lock().push("other")));
        pool.set_target_workers(1);
        pool.wait_idle();
        // LIFO: "other" was submitted last, so it runs first; then
        // "parent", whose locally spawned "child" runs before anything
        // else could (had more injected work existed).
        assert_eq!(*order.lock(), vec!["other", "parent", "child"]);
        pool.shutdown_and_join();
    }

    #[test]
    fn grow_takes_effect_immediately() {
        let pool = ResizablePool::new(1);
        assert_eq!(pool.target_workers(), 1);
        pool.set_target_workers(4);
        assert_eq!(pool.target_workers(), 4);
        assert_eq!(pool.live_workers(), 4);
        pool.shutdown_and_join();
    }

    #[test]
    fn shrink_drains_cooperatively() {
        let pool = ResizablePool::new(4);
        pool.set_target_workers(1);
        // Give workers a moment to observe the new target.
        for _ in 0..200 {
            if pool.live_workers() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.live_workers(), 1);
        // The surviving worker still runs tasks.
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || tx.send(()).unwrap()));
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.shutdown_and_join();
    }

    #[test]
    fn running_tasks_survive_shrink() {
        let pool = ResizablePool::new(2);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(Box::new(move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
            d.fetch_add(1, Ordering::SeqCst);
        }));
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.set_target_workers(0); // shrink below the running task
        release_tx.send(()).unwrap();
        for _ in 0..200 {
            if done.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::SeqCst), 1, "running task must finish");
        pool.shutdown_and_join();
    }

    #[test]
    fn panicking_task_does_not_kill_worker() {
        let pool = ResizablePool::new(1);
        pool.submit(Box::new(|| panic!("muscle failure")));
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || tx.send(42).unwrap()));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        pool.wait_idle(); // LIFO may run the ok-task before the panicking one
        assert_eq!(pool.telemetry().panics(), 1);
        pool.shutdown_and_join();
    }

    #[test]
    fn tasks_spawning_tasks_complete() {
        let pool = ResizablePool::new(2);
        let (tx, rx) = mpsc::channel();
        let p2 = pool.clone();
        pool.submit(Box::new(move || {
            let tx2 = tx.clone();
            p2.submit(Box::new(move || tx2.send("child").unwrap()));
            tx.send("parent").unwrap();
        }));
        let mut got = vec![
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
        ];
        got.sort_unstable();
        assert_eq!(got, vec!["child", "parent"]);
        pool.shutdown_and_join();
    }

    #[test]
    fn queued_tasks_run_before_shutdown_completes() {
        let pool = ResizablePool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let d = Arc::clone(&done);
            pool.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(1));
                d.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown_and_join();
        assert_eq!(done.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn submit_batch_runs_everything() {
        let pool = ResizablePool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Task> = (0..100)
            .map(|_| {
                let d = Arc::clone(&done);
                Box::new(move || {
                    d.fetch_add(1, Ordering::SeqCst);
                }) as Task
            })
            .collect();
        pool.submit_batch(tasks);
        pool.wait_idle();
        assert_eq!(done.load(Ordering::SeqCst), 100);
        pool.shutdown_and_join();
    }

    #[test]
    fn queued_counts_worker_local_tasks() {
        // Park the only worker inside a task that has already spawned
        // children into its local deque: queued_tasks must see them.
        let pool = ResizablePool::new(1);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let p2 = pool.clone();
        pool.submit(Box::new(move || {
            for _ in 0..5 {
                p2.submit(Box::new(|| {}));
            }
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }));
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(pool.queued_tasks(), 5, "local-deque tasks are queued");
        release_tx.send(()).unwrap();
        pool.wait_idle();
        assert_eq!(pool.queued_tasks(), 0);
        pool.shutdown_and_join();
    }

    #[test]
    fn peers_can_park_while_a_slot_is_occupied() {
        // A deposited slot task is invisible to other workers, so it
        // must not keep them awake: while the depositor blocks inside
        // its current task, the idle peer has to get through its park
        // re-check (slot tasks are subtracted from the stealable count)
        // and actually register as a sleeper. With the phantom-work bug
        // the peer cancels every park attempt and spins at 100% CPU
        // until the depositor's task ends.
        let pool = ResizablePool::new(2);
        let (deposited_tx, deposited_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let p2 = pool.clone();
        pool.submit(Box::new(move || {
            p2.submit_next(Box::new(|| {}));
            deposited_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        }));
        deposited_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let parked = (0..1000).any(|_| {
            if pool.inner.sleeping.load(Ordering::SeqCst) >= 1 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
            false
        });
        assert!(
            parked,
            "idle peer never parked while a slot task was deposited"
        );
        release_tx.send(()).unwrap();
        pool.wait_idle();
        pool.shutdown_and_join();
    }

    #[test]
    fn metrics_disabled_by_default_and_record_nothing() {
        let pool = ResizablePool::new(2);
        assert!(!pool.metrics_hub().enabled());
        let (tx, rx) = mpsc::channel();
        for i in 0..50 {
            let tx = tx.clone();
            pool.submit(Box::new(move || tx.send(i).unwrap()));
        }
        for _ in 0..50 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        pool.wait_idle();
        let snap = pool.metrics_hub().snapshot();
        assert_eq!(snap.counter("pool_wakes_total"), Some(0));
        assert_eq!(snap.counter("pool_parks_total"), Some(0));
        assert_eq!(snap.counter("pool_spin_rounds_total"), Some(0));
        assert_eq!(snap.gauge("pool_queue_depth"), Some(0));
        assert_eq!(
            snap.histogram("pool_wake_latency_ns").map(|h| h.count()),
            Some(0)
        );
        pool.shutdown_and_join();
    }

    #[test]
    fn enabled_metrics_observe_parks_and_wakes() {
        let pool = ResizablePool::new(2);
        pool.metrics_hub().set_enabled(true);
        // Let both workers run out of work and park, then wake them.
        for round in 0..4 {
            std::thread::sleep(Duration::from_millis(30));
            let (tx, rx) = mpsc::channel();
            for i in 0..8 {
                let tx = tx.clone();
                pool.submit(Box::new(move || tx.send(round * 100 + i).unwrap()));
            }
            for _ in 0..8 {
                rx.recv_timeout(Duration::from_secs(5)).unwrap();
            }
        }
        pool.wait_idle();
        let snap = pool.metrics_hub().snapshot();
        let wakes = snap.counter("pool_wakes_total").unwrap();
        assert!(wakes > 0, "submitters must have woken parked workers");
        let lat = snap.histogram("pool_wake_latency_ns").unwrap();
        assert!(
            lat.count() > 0,
            "woken workers must have recorded wake latency"
        );
        assert!(lat.max() > 0, "wake latency is a real duration");
        pool.shutdown_and_join();
    }

    #[test]
    fn telemetry_peak_tracks_concurrency() {
        let pool = ResizablePool::new(3);
        let (ready_tx, ready_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        for _ in 0..3 {
            let ready = ready_tx.clone();
            let release = Arc::clone(&release_rx);
            pool.submit(Box::new(move || {
                ready.send(()).unwrap();
                release.lock().recv().unwrap();
            }));
        }
        for _ in 0..3 {
            ready_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(pool.active_tasks(), 3);
        for _ in 0..3 {
            release_tx.send(()).unwrap();
        }
        pool.wait_idle();
        assert_eq!(pool.telemetry().peak_active(), 3);
        pool.shutdown_and_join();
    }
}
