//! The sharded ready queue: per-worker deques, the global injector, and
//! the parker each worker sleeps on.
//!
//! Three structures cooperate (see `docs/ARCHITECTURE.md` for the full
//! dispatch walkthrough):
//!
//! * [`Shard`] — one bounded-contention deque per worker. The owning
//!   worker pushes and pops at the back (LIFO, so freshly spawned
//!   continuations run next and stay cache-hot); thieves take from the
//!   front (FIFO, so they get the oldest — typically largest — work).
//! * [`Injector`] — the global overflow queue fed by external
//!   `submit`/`submit_all`. It is a LIFO stack to preserve the pool's
//!   documented Skandium discipline (most recently produced work first);
//!   workers grab small batches from the top to amortize the lock.
//! * [`Parker`] — a one-token blocker. `unpark` before `park` is not
//!   lost, and a stale token merely causes one spurious (harmless) pass
//!   through the worker loop.
//!
//! None of these know about worker lifecycle; the coordinator in
//! `lib.rs` owns target/live counts, the sleeper registry, and the
//! resize drain protocol.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::Task;

/// How many tasks a worker moves from the injector to its own shard per
/// grab, and the most a thief takes from a victim in one steal.
pub(crate) const GRAB_BATCH: usize = 16;

/// One worker's local deque.
///
/// Owner operations use the back of the deque; steals use the front.
/// A lock-free length mirror lets probes (an idle worker's spin rounds,
/// the thief's victim scan) skip empty shards without touching the
/// lock; a stale read costs at most one extra probe round, and the
/// sleep protocol's counter-based re-check — not this mirror — is what
/// guarantees a worker never parks over queued work.
pub(crate) struct Shard {
    id: u64,
    deque: Mutex<VecDeque<Task>>,
    /// Mirror of `deque.len()`, updated while holding the lock.
    len: AtomicUsize,
}

impl Shard {
    pub(crate) fn new(id: u64) -> Self {
        Shard {
            id,
            deque: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    /// Lock-free emptiness probe (possibly stale; see the type docs).
    pub(crate) fn is_empty_hint(&self) -> bool {
        self.len.load(Ordering::Acquire) == 0
    }

    /// Owner push: newest at the back.
    pub(crate) fn push(&self, task: Task) {
        let mut deque = self.deque.lock();
        deque.push_back(task);
        self.len.store(deque.len(), Ordering::Release);
    }

    /// Owner batch push, locking once; order is preserved, so the last
    /// task of `tasks` is the next one the owner pops.
    pub(crate) fn push_batch(&self, tasks: Vec<Task>) {
        if tasks.is_empty() {
            return;
        }
        let mut deque = self.deque.lock();
        deque.extend(tasks);
        self.len.store(deque.len(), Ordering::Release);
    }

    /// Owner pop: newest first (LIFO).
    pub(crate) fn pop(&self) -> Option<Task> {
        if self.is_empty_hint() {
            return None;
        }
        let mut deque = self.deque.lock();
        let task = deque.pop_back();
        self.len.store(deque.len(), Ordering::Release);
        task
    }

    /// Steals up to half of this shard's tasks (capped at
    /// [`GRAB_BATCH`]), oldest first. Returns the batch instead of
    /// pushing into the thief directly so no two deque locks are ever
    /// held at once (symmetric steals cannot deadlock).
    pub(crate) fn steal_batch(&self) -> Vec<Task> {
        if self.is_empty_hint() {
            return Vec::new();
        }
        let mut deque = self.deque.lock();
        let n = deque.len().div_ceil(2).min(GRAB_BATCH);
        let batch = deque.drain(..n).collect();
        self.len.store(deque.len(), Ordering::Release);
        batch
    }

    /// Empties the shard (the retire/drain protocol), oldest first.
    pub(crate) fn drain_all(&self) -> Vec<Task> {
        let mut deque = self.deque.lock();
        let batch = deque.drain(..).collect();
        self.len.store(0, Ordering::Release);
        batch
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.deque.lock().len()
    }
}

/// The global overflow queue for tasks submitted from outside the pool.
///
/// A LIFO stack: `pop` returns the most recently pushed task, matching
/// the single-queue pool this replaced (and the discrete-event
/// simulator's discipline). Carries the same lock-free length mirror as
/// [`Shard`], so the (usually empty) injector costs idle probes one
/// atomic load instead of a lock acquisition.
pub(crate) struct Injector {
    stack: Mutex<Vec<Task>>,
    /// Mirror of `stack.len()`, updated while holding the lock.
    len: AtomicUsize,
}

impl Injector {
    pub(crate) fn new() -> Self {
        Injector {
            stack: Mutex::new(Vec::new()),
            len: AtomicUsize::new(0),
        }
    }

    pub(crate) fn push(&self, task: Task) {
        let mut stack = self.stack.lock();
        stack.push(task);
        self.len.store(stack.len(), Ordering::Release);
    }

    pub(crate) fn push_batch(&self, tasks: Vec<Task>) {
        if tasks.is_empty() {
            return;
        }
        let mut stack = self.stack.lock();
        stack.extend(tasks);
        self.len.store(stack.len(), Ordering::Release);
    }

    /// Takes up to [`GRAB_BATCH`] tasks off the top of the stack.
    ///
    /// The returned vector is in stack order (bottom..top), so a worker
    /// that appends it to its shard and pops from the back executes the
    /// tasks in exactly the order repeated `pop` calls would have.
    pub(crate) fn grab_batch(&self) -> Vec<Task> {
        if self.len.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut stack = self.stack.lock();
        let at = stack.len() - stack.len().min(GRAB_BATCH);
        let batch = stack.split_off(at);
        self.len.store(stack.len(), Ordering::Release);
        batch
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.stack.lock().len()
    }
}

/// A one-token thread parker.
///
/// `unpark` stores a token and wakes the parked thread; `park` consumes
/// the token, returning immediately if one is already present. Tokens do
/// not accumulate.
pub(crate) struct Parker {
    notified: Mutex<bool>,
    cv: Condvar,
    /// Wake-latency probe: the waker's clock reading (ns, 0 = unset)
    /// stamped just before `unpark`; the woken worker swaps it out after
    /// `park` returns and records `now - stamp` into the metrics hub's
    /// `pool_wake_latency_ns` histogram. Left at 0 when metrics are
    /// disabled, so the probe costs nothing on that path.
    wake_ns: AtomicU64,
}

impl Parker {
    pub(crate) fn new() -> Self {
        Parker {
            notified: Mutex::new(false),
            cv: Condvar::new(),
            wake_ns: AtomicU64::new(0),
        }
    }

    /// Stamps the waker-side clock reading for the wake-latency probe.
    pub(crate) fn stamp_wake(&self, now_ns: u64) {
        self.wake_ns.store(now_ns, Ordering::Relaxed);
    }

    /// Consumes the wake stamp, if one was deposited (0 = none).
    pub(crate) fn take_wake_stamp(&self) -> u64 {
        self.wake_ns.swap(0, Ordering::Relaxed)
    }

    /// Blocks until a token is available, then consumes it.
    pub(crate) fn park(&self) {
        let mut notified = self.notified.lock();
        while !*notified {
            self.cv.wait(&mut notified);
        }
        *notified = false;
    }

    /// Deposits a token and wakes the parked thread, if any.
    pub(crate) fn unpark(&self) {
        let mut notified = self.notified.lock();
        *notified = true;
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn noop() -> Task {
        Box::new(|| {})
    }

    #[test]
    fn shard_pops_lifo_and_steals_fifo() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let tag = |k: usize| -> Task {
            let order = Arc::clone(&order);
            Box::new(move || order.lock().push(k))
        };
        let shard = Shard::new(0);
        for k in 0..4 {
            shard.push(tag(k));
        }
        // Owner sees the newest task.
        shard.pop().unwrap()();
        assert_eq!(*order.lock(), vec![3]);
        // A thief takes the oldest half: ceil(3/2) = 2 tasks, 0 then 1.
        let stolen = shard.steal_batch();
        assert_eq!(stolen.len(), 2);
        for t in stolen {
            t();
        }
        assert_eq!(*order.lock(), vec![3, 0, 1]);
        assert_eq!(shard.len(), 1);
    }

    #[test]
    fn injector_grab_preserves_pop_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let inj = Injector::new();
        for k in 0..5 {
            let order = Arc::clone(&order);
            inj.push(Box::new(move || order.lock().push(k)));
        }
        // Append the batch to a shard and pop from the back: must match
        // popping the injector stack directly (4, 3, 2, 1, 0).
        let shard = Shard::new(0);
        shard.push_batch(inj.grab_batch());
        assert_eq!(inj.len(), 0);
        while let Some(t) = shard.pop() {
            t();
        }
        assert_eq!(*order.lock(), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn steal_of_empty_shard_is_empty() {
        let shard = Shard::new(0);
        assert!(shard.steal_batch().is_empty());
        shard.push(noop());
        assert_eq!(shard.drain_all().len(), 1);
        assert_eq!(shard.len(), 0);
    }

    #[test]
    fn parker_token_is_not_lost() {
        let p = Arc::new(Parker::new());
        p.unpark(); // token deposited before park
        p.park(); // consumed without blocking
        let p2 = Arc::clone(&p);
        let woken = Arc::new(AtomicUsize::new(0));
        let w = Arc::clone(&woken);
        let t = std::thread::spawn(move || {
            p2.park();
            w.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(woken.load(Ordering::SeqCst), 0);
        p.unpark();
        t.join().unwrap();
        assert_eq!(woken.load(Ordering::SeqCst), 1);
    }
}
