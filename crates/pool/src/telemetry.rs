//! Pool telemetry: the "Number of Active Threads vs Wall Clock Time" data
//! behind Figures 5–7 of the paper.
//!
//! Recording is lock-free for the hot counters and takes a short mutex only
//! to append timeline samples; it can be switched off entirely for the
//! overhead benches.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

use askel_skeletons::TimeNs;

/// One timestamped telemetry sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TelemetrySample {
    /// A task began executing; `active` is the count *including* it.
    TaskStart {
        /// When.
        at: TimeNs,
        /// Active tasks after the start.
        active: usize,
    },
    /// A task finished; `active` is the count *excluding* it.
    TaskEnd {
        /// When.
        at: TimeNs,
        /// Active tasks after the end.
        active: usize,
        /// Did the task panic?
        panicked: bool,
    },
    /// The worker target (LP) changed.
    TargetChange {
        /// When.
        at: TimeNs,
        /// The new target.
        target: usize,
    },
}

impl TelemetrySample {
    /// The sample's timestamp.
    pub fn at(&self) -> TimeNs {
        match self {
            TelemetrySample::TaskStart { at, .. }
            | TelemetrySample::TaskEnd { at, .. }
            | TelemetrySample::TargetChange { at, .. } => *at,
        }
    }
}

/// A point of the active-threads timeline: from `at` onwards, `active`
/// tasks were running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Start of the interval.
    pub at: TimeNs,
    /// Active tasks during it.
    pub active: usize,
}

/// Shared telemetry for one pool.
///
/// The hot counters are all lock-free: the monotonic `started`/`finished`
/// pair is what the pool's queue accounting and idle detection build on.
/// Tasks run from a worker's TLS next-task slot (`submit_next`) are
/// recorded here exactly like queued tasks — the slot changes where a
/// task waits, never whether it is counted — so `wait_idle`'s
/// quiescence proof and `queued_tasks` stay exact under inline
/// continuation chains. `active` is an exact concurrency counter
/// maintained on its own —
/// deriving it from two separate loads of `started` and `finished` could
/// transiently undercount and make `peak` miss a momentary maximum, and
/// the peak is the paper's "maximum number of active threads" figure.
#[derive(Default)]
pub struct PoolTelemetry {
    peak: AtomicUsize,
    active: AtomicUsize,
    started: AtomicUsize,
    finished: AtomicUsize,
    panics: AtomicUsize,
    recording: AtomicBool,
    samples: Mutex<Vec<TelemetrySample>>,
}

impl PoolTelemetry {
    /// Fresh telemetry with timeline recording enabled.
    pub fn new() -> Self {
        let t = PoolTelemetry::default();
        t.recording.store(true, Ordering::Relaxed);
        t
    }

    /// Enables or disables timeline sample recording (counters always run).
    pub fn set_recording(&self, on: bool) {
        self.recording.store(on, Ordering::Relaxed);
    }

    /// Whether timeline samples are being recorded. The pool checks this
    /// to skip clock reads entirely on the hot path when recording is
    /// off (the counters don't need timestamps).
    pub fn is_recording(&self) -> bool {
        self.recording.load(Ordering::Relaxed)
    }

    /// Tasks currently executing (exact: its own counter, incremented at
    /// pick-up and decremented at completion).
    pub fn active_now(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Highest concurrent task count observed (the paper's "maximum number
    /// of active threads").
    pub fn peak_active(&self) -> usize {
        self.peak.load(Ordering::Acquire)
    }

    /// Tasks started so far (monotonic; the pool's queue accounting and
    /// idle detection compare this against its submitted count).
    pub fn tasks_started(&self) -> usize {
        self.started.load(Ordering::SeqCst)
    }

    /// `tasks_started` with a `Relaxed` load: may lag concurrent
    /// pick-ups by a few tasks. Backs the pool's cheap queue-depth
    /// read ([`ResizablePool::queue_depth_hint`]) for hot admission
    /// paths that tolerate a slightly stale depth.
    ///
    /// [`ResizablePool::queue_depth_hint`]: crate::ResizablePool::queue_depth_hint
    pub fn tasks_started_hint(&self) -> usize {
        self.started.load(Ordering::Relaxed)
    }

    /// Tasks finished so far (monotonic).
    pub fn tasks_finished(&self) -> usize {
        self.finished.load(Ordering::SeqCst)
    }

    /// Tasks that panicked.
    pub fn panics(&self) -> usize {
        self.panics.load(Ordering::Acquire)
    }

    /// Records a task start at `at` (engine-internal).
    pub fn record_task_start(&self, at: TimeNs) {
        self.started.fetch_add(1, Ordering::SeqCst);
        let active = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        // Steady-state fast path: one load instead of a fetch_max.
        if active > self.peak.load(Ordering::Relaxed) {
            self.peak.fetch_max(active, Ordering::AcqRel);
        }
        if self.recording.load(Ordering::Relaxed) {
            self.samples
                .lock()
                .push(TelemetrySample::TaskStart { at, active });
        }
    }

    /// Records a task end at `at` (engine-internal).
    ///
    /// The `active` decrement runs before the `finished` increment so a
    /// racing `active_now` can only see the task as still active, never
    /// as both finished and active.
    pub fn record_task_end(&self, at: TimeNs, panicked: bool) {
        let active = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        self.finished.fetch_add(1, Ordering::SeqCst);
        if panicked {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        if self.recording.load(Ordering::Relaxed) {
            self.samples.lock().push(TelemetrySample::TaskEnd {
                at,
                active,
                panicked,
            });
        }
    }

    /// Records a target (LP) change at `at` (engine-internal).
    pub fn record_target(&self, at: TimeNs, target: usize) {
        if self.recording.load(Ordering::Relaxed) {
            self.samples
                .lock()
                .push(TelemetrySample::TargetChange { at, target });
        }
    }

    /// Raw samples in recording order.
    pub fn samples(&self) -> Vec<TelemetrySample> {
        self.samples.lock().clone()
    }

    /// Clears recorded samples and the peak (counters for in-flight tasks
    /// are preserved).
    pub fn reset_timeline(&self) {
        self.samples.lock().clear();
        self.peak.store(self.active_now(), Ordering::Release);
    }

    /// The active-task step function over time — the series plotted in
    /// Figures 5–7 ("Number of Active Threads" vs "Wall Clock Time").
    ///
    /// Consecutive samples at the same timestamp are collapsed to the last
    /// value at that instant.
    pub fn active_timeline(&self) -> Vec<TimelinePoint> {
        let samples = self.samples.lock();
        let mut out: Vec<TimelinePoint> = Vec::with_capacity(samples.len() + 1);
        out.push(TimelinePoint {
            at: TimeNs::ZERO,
            active: 0,
        });
        for s in samples.iter() {
            let active = match s {
                TelemetrySample::TaskStart { active, .. } => *active,
                TelemetrySample::TaskEnd { active, .. } => *active,
                TelemetrySample::TargetChange { .. } => continue,
            };
            let at = s.at();
            match out.last_mut() {
                Some(last) if last.at == at => last.active = active,
                _ => out.push(TimelinePoint { at, active }),
            }
        }
        out
    }

    /// The LP-target step function over time.
    pub fn target_timeline(&self) -> Vec<TimelinePoint> {
        let samples = self.samples.lock();
        let mut out = Vec::new();
        for s in samples.iter() {
            if let TelemetrySample::TargetChange { at, target } = s {
                out.push(TimelinePoint {
                    at: *at,
                    active: *target,
                });
            }
        }
        out
    }
}

/// Renders a telemetry sample stream onto a Chrome trace as two counter
/// tracks: `active` (tasks running, from start/end samples) and
/// `target_workers` (LP retargets) — the paper's "Number of Active
/// Threads vs Wall Clock Time" figures as a zoomable timeline. Panicking
/// task ends additionally drop an instant marker. Feed it
/// [`PoolTelemetry::samples`] (or a simulator's recorded stream);
/// combine with `askel_adapt::decision_log_to_chrome` for rule fires on
/// the same timeline.
pub fn telemetry_to_chrome(samples: &[TelemetrySample], trace: &mut askel_obs::ChromeTrace) {
    for s in samples {
        match *s {
            TelemetrySample::TaskStart { at, active } => {
                trace.counter(at, "active", active as f64);
            }
            TelemetrySample::TaskEnd {
                at,
                active,
                panicked,
            } => {
                trace.counter(at, "active", active as f64);
                if panicked {
                    trace.instant(at, "task panicked", "pool");
                }
            }
            TelemetrySample::TargetChange { at, target } => {
                trace.counter(at, "target_workers", target as f64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_start_end() {
        let t = PoolTelemetry::new();
        t.record_task_start(TimeNs(10));
        t.record_task_start(TimeNs(20));
        assert_eq!(t.active_now(), 2);
        assert_eq!(t.peak_active(), 2);
        t.record_task_end(TimeNs(30), false);
        assert_eq!(t.active_now(), 1);
        assert_eq!(t.peak_active(), 2);
        assert_eq!(t.tasks_started(), 2);
        assert_eq!(t.tasks_finished(), 1);
    }

    #[test]
    fn timeline_is_a_step_function() {
        let t = PoolTelemetry::new();
        t.record_task_start(TimeNs(10));
        t.record_target(TimeNs(15), 4);
        t.record_task_start(TimeNs(20));
        t.record_task_end(TimeNs(30), false);
        t.record_task_end(TimeNs(40), false);
        let tl = t.active_timeline();
        assert_eq!(
            tl,
            vec![
                TimelinePoint {
                    at: TimeNs(0),
                    active: 0
                },
                TimelinePoint {
                    at: TimeNs(10),
                    active: 1
                },
                TimelinePoint {
                    at: TimeNs(20),
                    active: 2
                },
                TimelinePoint {
                    at: TimeNs(30),
                    active: 1
                },
                TimelinePoint {
                    at: TimeNs(40),
                    active: 0
                },
            ]
        );
        assert_eq!(
            t.target_timeline(),
            vec![TimelinePoint {
                at: TimeNs(15),
                active: 4
            }]
        );
    }

    #[test]
    fn same_instant_samples_collapse() {
        let t = PoolTelemetry::new();
        t.record_task_start(TimeNs(10));
        t.record_task_end(TimeNs(10), false);
        let tl = t.active_timeline();
        assert_eq!(
            tl,
            vec![
                TimelinePoint {
                    at: TimeNs(0),
                    active: 0
                },
                TimelinePoint {
                    at: TimeNs(10),
                    active: 0
                },
            ]
        );
    }

    #[test]
    fn recording_can_be_disabled() {
        let t = PoolTelemetry::new();
        t.set_recording(false);
        t.record_task_start(TimeNs(10));
        t.record_task_end(TimeNs(20), false);
        assert!(t.samples().is_empty());
        // Counters still work.
        assert_eq!(t.tasks_started(), 1);
    }

    #[test]
    fn reset_preserves_inflight_active() {
        let t = PoolTelemetry::new();
        t.record_task_start(TimeNs(10));
        t.reset_timeline();
        assert!(t.samples().is_empty());
        assert_eq!(t.peak_active(), 1);
        assert_eq!(t.active_now(), 1);
    }

    #[test]
    fn panics_are_counted() {
        let t = PoolTelemetry::new();
        t.record_task_start(TimeNs(1));
        t.record_task_end(TimeNs(2), true);
        assert_eq!(t.panics(), 1);
    }

    #[test]
    fn samples_render_as_chrome_counter_tracks() {
        use askel_obs::Json;

        let t = PoolTelemetry::new();
        t.record_task_start(TimeNs(10_000));
        t.record_target(TimeNs(15_000), 4);
        t.record_task_end(TimeNs(20_000), true);
        let mut trace = askel_obs::ChromeTrace::new();
        telemetry_to_chrome(&t.samples(), &mut trace);
        // start + target + end + panic marker
        assert_eq!(trace.len(), 4);
        let json = Json::parse(&trace.render()).unwrap();
        let events = json.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("active"));
        assert_eq!(
            events[0]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            events[1].get("name").unwrap().as_str(),
            Some("target_workers")
        );
        let names: Vec<_> = events
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(names.contains(&"task panicked".to_string()));
    }
}
