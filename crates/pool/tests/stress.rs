//! Stress tests for the sharded work-stealing ready queue: every
//! submitted task must run exactly once, no matter how submit, steal,
//! grow, shrink and shutdown interleave.
//!
//! "Exactly once" is checked with a per-task flag array (`fetch_or`
//! catches a double run) plus a total counter (catches a lost task).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use askel_pool::{ResizablePool, Task};

use proptest::prelude::*;

/// Shared exactly-once bookkeeping for one stress run.
struct Ledger {
    ran: Vec<AtomicBool>,
    count: AtomicUsize,
    doubles: AtomicUsize,
}

impl Ledger {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Ledger {
            ran: (0..n).map(|_| AtomicBool::new(false)).collect(),
            count: AtomicUsize::new(0),
            doubles: AtomicUsize::new(0),
        })
    }

    fn task(self: &Arc<Self>, id: usize) -> Task {
        let ledger = Arc::clone(self);
        Box::new(move || {
            if ledger.ran[id].fetch_or(true, Ordering::SeqCst) {
                ledger.doubles.fetch_add(1, Ordering::SeqCst);
            }
            ledger.count.fetch_add(1, Ordering::SeqCst);
        })
    }

    fn assert_exactly_once(&self, n: usize) {
        assert_eq!(self.doubles.load(Ordering::SeqCst), 0, "a task ran twice");
        assert_eq!(
            self.count.load(Ordering::SeqCst),
            n,
            "not every task ran exactly once"
        );
        assert!(
            self.ran.iter().all(|f| f.load(Ordering::SeqCst)),
            "a task was lost"
        );
    }
}

/// Concurrent submitters + tasks spawning sub-tasks (exercising the
/// worker-local deques) while the main thread oscillates the worker
/// target, including through zero.
#[test]
fn no_task_lost_or_doubled_under_target_oscillation() {
    const SUBMITTERS: usize = 3;
    const PARENTS_PER_SUBMITTER: usize = 60;
    const CHILDREN_PER_PARENT: usize = 4;
    const TOTAL: usize = SUBMITTERS * PARENTS_PER_SUBMITTER * (1 + CHILDREN_PER_PARENT);

    let pool = ResizablePool::new(2);
    pool.telemetry().set_recording(false);
    let ledger = Ledger::new(TOTAL);

    let mut threads = Vec::new();
    for s in 0..SUBMITTERS {
        let pool = pool.clone();
        let ledger = Arc::clone(&ledger);
        threads.push(std::thread::spawn(move || {
            for p in 0..PARENTS_PER_SUBMITTER {
                let base = (s * PARENTS_PER_SUBMITTER + p) * (1 + CHILDREN_PER_PARENT);
                let parent_pool = pool.clone();
                let parent_ledger = Arc::clone(&ledger);
                // The parent spawns children from inside a worker, so
                // they land on that worker's local deque and must
                // survive that worker retiring mid-oscillation.
                pool.submit(Box::new(move || {
                    for c in 1..=CHILDREN_PER_PARENT {
                        parent_pool.submit(parent_ledger.task(base + c));
                    }
                    parent_ledger.task(base)();
                }));
                if p % 16 == 0 {
                    std::thread::yield_now();
                }
            }
        }));
    }

    // Oscillate the LP hard while submissions are in flight.
    for round in 0..50 {
        for target in [4usize, 1, 6, 0, 2] {
            pool.set_target_workers(target);
            if round % 8 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }

    for t in threads {
        t.join().unwrap();
    }
    // Leave capacity so everything drains, then wait.
    pool.set_target_workers(2);
    pool.wait_idle();
    ledger.assert_exactly_once(TOTAL);
    assert_eq!(pool.queued_tasks(), 0);
    pool.shutdown_and_join();
}

/// `wait_idle` regression test: tasks resident only in a worker-local
/// deque (the injector is empty, no task is active) must still hold
/// `wait_idle` back. An implementation that only watched the injector
/// would return after the parent finishes, before the children run.
#[test]
fn wait_idle_accounts_for_worker_local_deques() {
    let pool = ResizablePool::new(1);
    let done = Arc::new(AtomicUsize::new(0));
    let (queued_tx, queued_rx) = std::sync::mpsc::channel();
    let p2 = pool.clone();
    let d2 = Arc::clone(&done);
    pool.submit(Box::new(move || {
        // These land on the sole worker's local deque.
        for _ in 0..16 {
            let d = Arc::clone(&d2);
            p2.submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(1));
                d.fetch_add(1, Ordering::SeqCst);
            }));
        }
        queued_tx.send(()).unwrap();
        // Linger so the main thread starts wait_idle while the children
        // are still queued locally and the injector is empty.
        std::thread::sleep(Duration::from_millis(10));
    }));
    queued_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    pool.wait_idle();
    assert_eq!(
        done.load(Ordering::SeqCst),
        16,
        "wait_idle returned while worker-local tasks were still pending"
    );
    pool.shutdown_and_join();
}

/// A shrink that retires a worker whose deque still holds tasks must
/// drain them back to the injector rather than losing them.
#[test]
fn retiring_worker_drains_its_deque() {
    for _ in 0..20 {
        let pool = ResizablePool::new(1);
        pool.telemetry().set_recording(false);
        let ledger = Ledger::new(9);
        let p2 = pool.clone();
        let l2 = Arc::clone(&ledger);
        pool.submit(Box::new(move || {
            for id in 1..9 {
                p2.submit(l2.task(id));
            }
            l2.task(0)();
        }));
        // Race a shrink-to-zero then grow against the spawning parent.
        pool.set_target_workers(0);
        pool.set_target_workers(2);
        pool.wait_idle();
        ledger.assert_exactly_once(9);
        pool.shutdown_and_join();
    }
}

/// Builds a `submit_next` chain: each link hands the following link to
/// the current worker's TLS slot as its last act.
fn slot_chain(pool: ResizablePool, ledger: Arc<Ledger>, id: usize, last: usize) -> Task {
    Box::new(move || {
        std::thread::sleep(Duration::from_micros(200));
        ledger.task(id)();
        if id < last {
            let next = slot_chain(pool.clone(), Arc::clone(&ledger), id + 1, last);
            pool.submit_next(next);
        }
    })
}

/// `wait_idle` must not return while an inline (slot-run) continuation
/// chain is still executing: every link is deposited *during* its
/// predecessor, so an implementation that did not count slot tasks in
/// `submitted` would see `finished == submitted` between links.
#[test]
fn wait_idle_covers_inline_slot_chains() {
    const LINKS: usize = 50;
    let pool = ResizablePool::new(1);
    let ledger = Ledger::new(LINKS);
    pool.submit(slot_chain(pool.clone(), Arc::clone(&ledger), 0, LINKS - 1));
    pool.wait_idle();
    ledger.assert_exactly_once(LINKS);
    assert_eq!(pool.queued_tasks(), 0);
    pool.shutdown_and_join();
}

/// Every slot-run task counts in the telemetry's monotonic
/// `started`/`finished` pair exactly like a queued task.
#[test]
fn telemetry_counts_inline_slot_tasks() {
    const LINKS: usize = 8;
    let pool = ResizablePool::new(1);
    let ledger = Ledger::new(LINKS);
    let started_before = pool.telemetry().tasks_started();
    let finished_before = pool.telemetry().tasks_finished();
    pool.submit(slot_chain(pool.clone(), Arc::clone(&ledger), 0, LINKS - 1));
    pool.wait_idle();
    ledger.assert_exactly_once(LINKS);
    assert_eq!(
        pool.telemetry().tasks_started() - started_before,
        LINKS,
        "each slot-run task must be recorded as started"
    );
    assert_eq!(
        pool.telemetry().tasks_finished() - finished_before,
        LINKS,
        "each slot-run task must be recorded as finished"
    );
    pool.shutdown_and_join();
}

/// A deposited-but-not-yet-started slot task is visible to
/// `queued_tasks` (it is submitted work the pool has not picked up).
#[test]
fn queued_tasks_sees_a_deposited_slot_task() {
    let pool = ResizablePool::new(1);
    let (deposited_tx, deposited_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let p2 = pool.clone();
    pool.submit(Box::new(move || {
        p2.submit_next(Box::new(|| {}));
        deposited_tx.send(()).unwrap();
        release_rx.recv().unwrap();
    }));
    deposited_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(pool.queued_tasks(), 1, "the slot task is queued work");
    release_tx.send(()).unwrap();
    pool.wait_idle();
    assert_eq!(pool.queued_tasks(), 0);
    pool.shutdown_and_join();
}

/// Called from outside the pool's workers, `submit_next` degrades to a
/// plain submit and the task still runs.
#[test]
fn submit_next_from_foreign_thread_is_a_plain_submit() {
    let pool = ResizablePool::new(1);
    let (tx, rx) = std::sync::mpsc::channel();
    pool.submit_next(Box::new(move || tx.send(17).unwrap()));
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 17);
    pool.shutdown_and_join();
}

/// A second deposit in one task spills the first to the deque (LIFO
/// order: the newest deposit runs first) and nothing is lost.
#[test]
fn double_deposit_spills_without_losing_tasks() {
    let pool = ResizablePool::new(1);
    let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let p2 = pool.clone();
    let o2 = Arc::clone(&order);
    pool.submit(Box::new(move || {
        let o_first = Arc::clone(&o2);
        let o_second = Arc::clone(&o2);
        p2.submit_next(Box::new(move || o_first.lock().push("first")));
        p2.submit_next(Box::new(move || o_second.lock().push("second")));
    }));
    pool.wait_idle();
    assert_eq!(*order.lock(), vec!["second", "first"]);
    pool.shutdown_and_join();
}

/// Slot chains survive the worker target oscillating (including through
/// zero) mid-chain: a retiring worker pushes the pending link back to
/// its deque, whose retire drain sends it to the injector for a
/// successor to adopt. Exactly-once must hold throughout.
#[test]
fn slot_chains_survive_target_oscillation() {
    const CHAINS: usize = 4;
    const LINKS: usize = 25;
    let pool = ResizablePool::new(2);
    pool.telemetry().set_recording(false);
    let ledger = Ledger::new(CHAINS * LINKS);
    for c in 0..CHAINS {
        let base = c * LINKS;
        pool.submit(slot_chain(
            pool.clone(),
            Arc::clone(&ledger),
            base,
            base + LINKS - 1,
        ));
    }
    for _ in 0..40 {
        for target in [3usize, 0, 1, 4, 2] {
            pool.set_target_workers(target);
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    pool.set_target_workers(2);
    pool.wait_idle();
    ledger.assert_exactly_once(CHAINS * LINKS);
    assert_eq!(pool.queued_tasks(), 0);
    pool.shutdown_and_join();
}

/// Lost-wakeup regression: drive workers through the register → cancel →
/// re-register → park window over and over while submissions race it.
///
/// The sleeper registry used to admit stale entries: a waker popping a
/// registration while the worker took the sleep-cancel path left the
/// parker token set, the next `park` returned instantly with the fresh
/// registration still listed, and once that worker picked up a task a
/// later `wake(1)` could spend its wakeup on the busy worker while a
/// real sleeper stayed parked with work queued. With the bug, a round
/// below eventually strands its tasks and the `recv_timeout` fires.
#[test]
fn no_wakeup_lost_when_submit_races_the_sleep_path() {
    let pool = ResizablePool::new(3);
    pool.telemetry().set_recording(false);
    let (tx, rx) = std::sync::mpsc::channel();
    const ROUNDS: usize = 300;
    const PER_ROUND: usize = 8;
    for _ in 0..ROUNDS {
        for k in 0..PER_ROUND {
            let tx = tx.clone();
            // One slow task per round keeps a worker busy long enough
            // for a misdirected wakeup to strand the fast ones.
            let slow = k == 0;
            pool.submit(Box::new(move || {
                if slow {
                    std::thread::sleep(Duration::from_micros(300));
                }
                tx.send(()).unwrap();
            }));
        }
        // Drain the round so every worker goes back to sleep and the
        // next round's submits race the register→park transitions.
        for _ in 0..PER_ROUND {
            rx.recv_timeout(Duration::from_secs(10))
                .expect("task stranded behind a sleeping worker (lost wakeup)");
        }
    }
    pool.shutdown_and_join();
}

/// One step of a random schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Submit `n` tasks one by one from the driver thread.
    Submit(usize),
    /// Submit `n` tasks as one batch.
    Batch(usize),
    /// Retarget the pool to `lp` workers.
    Resize(usize),
    /// Let the schedule breathe so workers observe the state.
    Pause,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..24).prop_map(Op::Submit),
        (1usize..24).prop_map(Op::Batch),
        (0usize..5).prop_map(Op::Resize),
        Just(Op::Pause),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random interleavings of submit / batch-submit / resize (through
    /// zero) / pause never lose or duplicate a task.
    #[test]
    fn random_submit_resize_interleavings_run_every_task_once(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        initial in 0usize..4,
    ) {
        let total: usize = ops
            .iter()
            .map(|op| match op {
                Op::Submit(n) | Op::Batch(n) => *n,
                _ => 0,
            })
            .sum();
        let pool = ResizablePool::new(initial);
        pool.telemetry().set_recording(false);
        let ledger = Ledger::new(total);
        let mut next_id = 0;
        for op in &ops {
            match op {
                Op::Submit(n) => {
                    for _ in 0..*n {
                        pool.submit(ledger.task(next_id));
                        next_id += 1;
                    }
                }
                Op::Batch(n) => {
                    let tasks: Vec<Task> = (0..*n)
                        .map(|_| {
                            let t = ledger.task(next_id);
                            next_id += 1;
                            t
                        })
                        .collect();
                    pool.submit_batch(tasks);
                }
                Op::Resize(lp) => pool.set_target_workers(*lp),
                Op::Pause => std::thread::yield_now(),
            }
        }
        // Ensure someone is alive to drain, then wait for quiescence.
        pool.set_target_workers(1);
        pool.wait_idle();
        ledger.assert_exactly_once(total);
        prop_assert_eq!(pool.queued_tasks(), 0);
        pool.shutdown_and_join();
    }
}
