//! Admission control: per-tenant quotas plus shared-pool backpressure.
//!
//! The registry admits each fed item through three gates, in order:
//!
//! 1. **In-flight quota** — a tenant may hold at most
//!    [`max_in_flight`](AdmissionPolicy::max_in_flight) items on the
//!    shared pool. Beyond it, items queue in the tenant's backlog.
//! 2. **Pool backpressure** — when
//!    [`max_pool_queue`](AdmissionPolicy::max_pool_queue) is set and the
//!    shared pool already holds that many queued tasks
//!    (`ResizablePool::queued_tasks`, the `PoolTelemetry` counters), new
//!    items queue regardless of per-tenant room: one tenant's burst must
//!    not bury everyone's latency.
//! 3. **Backlog bound** — a tenant queues at most
//!    [`max_backlog`](AdmissionPolicy::max_backlog) items; beyond that,
//!    feeds are [`Rejected`](Admission::Rejected) (load shedding).
//!
//! Queued items are dispatched by
//! [`ServeRegistry::drain_cycle`](crate::ServeRegistry::drain_cycle),
//! which visits tenants round-robin from a rotating cursor — every
//! tenant is first-visited infinitely often, so a backlogged tenant can
//! never be starved by its neighbours.

/// Per-tenant admission limits plus the shared-pool backpressure bound.
///
/// The registry admits each fed item through three gates, in order:
///
/// 1. **In-flight quota** — a tenant may hold at most
///    [`max_in_flight`](AdmissionPolicy::max_in_flight) items on the
///    shared pool. Beyond it, items queue in the tenant's backlog.
/// 2. **Pool backpressure** — when
///    [`max_pool_queue`](AdmissionPolicy::max_pool_queue) is set and
///    the shared pool already holds that many queued tasks, new items
///    queue regardless of per-tenant room: one tenant's burst must not
///    bury everyone's latency.
/// 3. **Backlog bound** — a tenant queues at most
///    [`max_backlog`](AdmissionPolicy::max_backlog) items; beyond
///    that, feeds are [`Rejected`](Admission::Rejected) (load
///    shedding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Items one tenant may have in flight on the shared pool at once.
    pub max_in_flight: usize,
    /// Items one tenant may hold queued beyond its in-flight quota;
    /// feeds beyond this are rejected.
    pub max_backlog: usize,
    /// Global backpressure: when `Some(n)` and the shared pool already
    /// holds ≥ `n` queued tasks, new items queue instead of submitting
    /// even if the tenant has in-flight room. `None` disables the gate.
    pub max_pool_queue: Option<usize>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_in_flight: 64,
            max_backlog: 4096,
            max_pool_queue: None,
        }
    }
}

impl AdmissionPolicy {
    /// Sets the per-tenant in-flight quota (≥ 1).
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// Sets the per-tenant backlog bound (0 = reject once the quota is
    /// full).
    pub fn max_backlog(mut self, n: usize) -> Self {
        self.max_backlog = n;
        self
    }

    /// Enables pool-level backpressure at `n` queued tasks.
    pub fn max_pool_queue(mut self, n: usize) -> Self {
        self.max_pool_queue = Some(n);
        self
    }
}

/// What happened to one fed item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Submitted to the shared pool immediately.
    Submitted,
    /// Held in the tenant's backlog; a later
    /// [`drain_cycle`](crate::ServeRegistry::drain_cycle) dispatches it.
    Queued,
    /// Not admitted; the item is dropped (load shedding).
    Rejected(RejectReason),
}

/// Why an item was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant id is not (or no longer) registered.
    UnknownTenant,
    /// The tenant's backlog is at [`AdmissionPolicy::max_backlog`].
    BacklogFull,
}

/// Per-item tallies for one batched feed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchAdmission {
    /// Items submitted to the pool immediately.
    pub submitted: usize,
    /// Items held in the tenant's backlog.
    pub queued: usize,
    /// Items dropped (backlog full or unknown tenant).
    pub rejected: usize,
}
