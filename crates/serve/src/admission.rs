//! Admission control: per-tenant quotas, shared-pool backpressure, and
//! latency-aware cost pricing.
//!
//! The registry admits each fed item through four gates, in order:
//!
//! 1. **In-flight quota** — a tenant may hold at most
//!    [`max_in_flight`](AdmissionPolicy::max_in_flight) items on the
//!    shared pool. Beyond it, items queue in the tenant's backlog.
//! 2. **Pool backpressure** — when
//!    [`max_pool_queue`](AdmissionPolicy::max_pool_queue) is set and the
//!    shared pool already holds that many queued tasks
//!    (`ResizablePool::queue_depth_hint`, sampled **once per ingress
//!    call**, not per item), new items queue regardless of per-tenant
//!    room: one tenant's burst must not bury everyone's latency.
//! 3. **Latency pricing** — when
//!    [`max_queue_cost`](AdmissionPolicy::max_queue_cost) is set, an
//!    item submits only while `pool queue depth × the tenant's
//!    estimated per-item cost` stays under the bound. The cost comes
//!    from the structure-keyed
//!    [`SharedEstimators`](crate::SharedEstimators) pool
//!    ([`estimated_cost`](crate::SharedEstimators::estimated_cost)), so
//!    a *cheap* tenant keeps submitting into a queue that an
//!    *expensive* tenant must stop feeding — static quotas alone would
//!    shed both. Tenants whose structure has no pooled history are not
//!    priced: the gate degrades to the static quotas above.
//! 4. **Backlog bound** — a tenant queues at most
//!    [`max_backlog`](AdmissionPolicy::max_backlog) items; beyond that,
//!    feeds are [`Rejected`](Admission::Rejected) (load shedding).
//!
//! Queued items are dispatched by
//! [`ServeRegistry::drain_cycle`](crate::ServeRegistry::drain_cycle),
//! which visits tenants round-robin, rotating from the previous cycle's
//! first-visited **key** (not its position, so registration/detach churn
//! cannot skew the rotation) — every tenant is first-visited infinitely
//! often, so a backlogged tenant can never be starved by its
//! neighbours.

/// Per-tenant admission limits plus the shared-pool backpressure and
/// latency-pricing bounds.
///
/// The registry admits each fed item through four gates, in order:
///
/// 1. **In-flight quota** — a tenant may hold at most
///    [`max_in_flight`](AdmissionPolicy::max_in_flight) items on the
///    shared pool. Beyond it, items queue in the tenant's backlog.
/// 2. **Pool backpressure** — when
///    [`max_pool_queue`](AdmissionPolicy::max_pool_queue) is set and
///    the shared pool already holds that many queued tasks, new items
///    queue regardless of per-tenant room.
/// 3. **Latency pricing** — when
///    [`max_queue_cost`](AdmissionPolicy::max_queue_cost) is set and
///    the tenant's structure has pooled cost history, items queue while
///    `queue depth × estimated per-item cost (ns)` exceeds the bound;
///    unpriced tenants fall back to the static gates.
/// 4. **Backlog bound** — a tenant queues at most
///    [`max_backlog`](AdmissionPolicy::max_backlog) items; beyond
///    that, feeds are [`Rejected`](Admission::Rejected) (load
///    shedding).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Items one tenant may have in flight on the shared pool at once.
    pub max_in_flight: usize,
    /// Items one tenant may hold queued beyond its in-flight quota;
    /// feeds beyond this are rejected.
    pub max_backlog: usize,
    /// Global backpressure: when `Some(n)` and the shared pool already
    /// holds ≥ `n` queued tasks, new items queue instead of submitting
    /// even if the tenant has in-flight room. `None` disables the gate.
    pub max_pool_queue: Option<usize>,
    /// Latency pricing: when `Some(bound)`, an item submits only while
    /// `pool queue depth × the tenant's estimated per-item cost (ns)`
    /// is ≤ `bound` (units: ns·tasks). Tenants with no pooled cost
    /// estimate are not priced. `None` disables the gate.
    pub max_queue_cost: Option<u64>,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_in_flight: 64,
            max_backlog: 4096,
            max_pool_queue: None,
            max_queue_cost: None,
        }
    }
}

impl AdmissionPolicy {
    /// Sets the per-tenant in-flight quota (≥ 1).
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n.max(1);
        self
    }

    /// Sets the per-tenant backlog bound (0 = reject once the quota is
    /// full).
    pub fn max_backlog(mut self, n: usize) -> Self {
        self.max_backlog = n;
        self
    }

    /// Enables pool-level backpressure at `n` queued tasks.
    pub fn max_pool_queue(mut self, n: usize) -> Self {
        self.max_pool_queue = Some(n);
        self
    }

    /// Enables latency pricing at `bound` ns·tasks: an item submits
    /// only while `queue depth × estimated per-item cost` stays ≤
    /// `bound`.
    pub fn max_queue_cost(mut self, bound: u64) -> Self {
        self.max_queue_cost = Some(bound);
        self
    }

    /// Gate 2: whether the pool has room at `depth` queued tasks.
    pub fn pool_room(&self, depth: usize) -> bool {
        self.max_pool_queue.is_none_or(|n| depth < n)
    }

    /// Gate 3: whether a tenant priced at `cost_ns` per item may submit
    /// at `depth` queued tasks. Unpriced tenants (`cost_ns == None`)
    /// and an unset bound always pass — the static gates then decide.
    pub fn cost_room(&self, depth: usize, cost_ns: Option<u64>) -> bool {
        match (self.max_queue_cost, cost_ns) {
            (Some(bound), Some(cost)) => (depth as u64).saturating_mul(cost) <= bound,
            _ => true,
        }
    }
}

/// What happened to one fed item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Submitted to the shared pool immediately.
    Submitted,
    /// Held in the tenant's backlog; a later
    /// [`drain_cycle`](crate::ServeRegistry::drain_cycle) dispatches it.
    Queued,
    /// Not admitted; the item is dropped (load shedding).
    Rejected(RejectReason),
}

/// Why an item was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant id is not (or no longer) registered.
    UnknownTenant,
    /// The tenant's backlog is at [`AdmissionPolicy::max_backlog`].
    BacklogFull,
}

/// Per-item tallies for one batched feed.
///
/// `rejected` is always `rejected_backlog + rejected_unknown`; the
/// split lets callers tell shed load (back off and retry) from a
/// routing error (stop feeding this id), matching the per-reason
/// `serve_admit_rejected_total` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchAdmission {
    /// Items submitted to the pool immediately.
    pub submitted: usize,
    /// Items held in the tenant's backlog.
    pub queued: usize,
    /// Items dropped, any reason (= `rejected_backlog +
    /// rejected_unknown`).
    pub rejected: usize,
    /// Items shed because the tenant's backlog was full.
    pub rejected_backlog: usize,
    /// Items dropped because the tenant id is not registered.
    pub rejected_unknown: usize,
}

impl BatchAdmission {
    /// Tallies `n` backlog-shed items.
    pub(crate) fn shed_backlog(&mut self, n: usize) {
        self.rejected_backlog += n;
        self.rejected += n;
    }

    /// Tallies `n` unknown-tenant items.
    pub(crate) fn shed_unknown(&mut self, n: usize) {
        self.rejected_unknown += n;
        self.rejected += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_room_prices_only_priced_tenants_under_a_set_bound() {
        let p = AdmissionPolicy::default().max_queue_cost(1_000_000);
        // Priced: depth × cost against the bound.
        assert!(p.cost_room(10, Some(100_000)));
        assert!(!p.cost_room(11, Some(100_000)));
        assert!(p.cost_room(1_000_000, Some(1)));
        // Unpriced tenant: gate degrades to the static quotas.
        assert!(p.cost_room(usize::MAX, None));
        // Unset bound: never prices.
        let open = AdmissionPolicy::default();
        assert!(open.cost_room(usize::MAX, Some(u64::MAX)));
        // Overflow saturates rather than wrapping open.
        assert!(!p.cost_room(usize::MAX, Some(u64::MAX)));
    }

    #[test]
    fn batch_tallies_keep_rejected_as_the_sum() {
        let mut out = BatchAdmission::default();
        out.shed_backlog(3);
        out.shed_unknown(2);
        assert_eq!(out.rejected_backlog, 3);
        assert_eq!(out.rejected_unknown, 2);
        assert_eq!(out.rejected, 5);
    }
}
