//! Cross-tenant estimator sharing, keyed by skeleton structure.
//!
//! An [`EstimatorTable`] is keyed by [`MuscleId`] — a concrete
//! `(NodeId, role)` pair — so two tenants running independently
//! constructed copies of the *same program shape* share no history:
//! every `NodeId` is fresh. [`SharedEstimators`] bridges them
//! positionally: entries are stored per **structure key**
//! ([`Node::structure_key`]) under `(pre-order index, role)` — a
//! coordinate that is identical for every tree of that shape. Absorbing
//! tenant A's table records its observations at those coordinates;
//! warming tenant B's table translates them back onto B's concrete
//! `MuscleId`s.
//!
//! This is what opens the forecast gate early: `predicted_wct` refuses
//! to forecast until the table covers every muscle of the tree, so a
//! cold tenant's forecast-gated rules stay closed for its whole warm-up.
//! Warm-started from a structural twin's history, the gate can open at
//! the tenant's *first* safe point. Structurally different programs
//! never share a key, so their histories never mix.
//!
//! The store is a cheaply-clonable handle over one `Arc`-shared,
//! lock-guarded table: every [`ServeRegistry`](crate::ServeRegistry)
//! shard of a [`ShardedServe`](crate::ShardedServe) clones the same
//! handle, so structural twins warm-start each other **across** shards
//! exactly as they do within one. The pooled history also prices the
//! latency-aware admission gate: [`SharedEstimators::estimated_cost`]
//! folds a structure's pooled durations into one per-item cost figure
//! (see [`AdmissionPolicy::max_queue_cost`]).
//!
//! [`AdmissionPolicy::max_queue_cost`]: crate::AdmissionPolicy::max_queue_cost

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use askel_core::{EstimatorTable, Ewma};
use askel_skeletons::{MuscleId, MuscleRole, Node, TimeNs};

/// One structural coordinate's pooled estimates.
struct PosEstimate {
    duration: Ewma,
    cardinality: Ewma,
}

struct Inner {
    rho: f64,
    groups: HashMap<u64, HashMap<(usize, MuscleRole), PosEstimate>>,
}

/// A positional estimator store pooled across tenants (and shards); see
/// the module docs. Clones share the same underlying table.
#[derive(Clone)]
pub struct SharedEstimators {
    inner: Arc<Mutex<Inner>>,
}

impl SharedEstimators {
    /// An empty store whose pooled EWMAs use weight `rho`.
    pub fn new(rho: f64) -> Self {
        SharedEstimators {
            inner: Arc::new(Mutex::new(Inner {
                rho: rho.clamp(0.0, 1.0),
                groups: HashMap::new(),
            })),
        }
    }

    /// How many distinct program structures hold entries.
    pub fn structures(&self) -> usize {
        self.inner.lock().groups.len()
    }

    /// How many positional entries the structure `key` holds (0 for an
    /// unknown structure).
    pub fn entries(&self, key: u64) -> usize {
        self.inner.lock().groups.get(&key).map_or(0, HashMap::len)
    }

    /// Folds `table`'s entries for the tree rooted at `root` into the
    /// root's structure group, positionally. Returns how many positional
    /// entries were updated.
    pub fn absorb(&self, root: &Arc<Node>, table: &EstimatorTable) -> usize {
        let mut inner = self.inner.lock();
        let rho = inner.rho;
        let group = inner.groups.entry(root.structure_key()).or_default();
        let mut updated = 0;
        for (idx, node) in root.collect_nodes().into_iter().enumerate() {
            for &role in node.own_roles() {
                let id = MuscleId::new(node.id, role);
                let duration = table.duration(id);
                let cardinality = table.cardinality(id);
                if duration.is_none() && cardinality.is_none() {
                    continue;
                }
                let pos = group.entry((idx, role)).or_insert_with(|| PosEstimate {
                    duration: Ewma::new(rho),
                    cardinality: Ewma::new(rho),
                });
                if let Some(d) = duration {
                    pos.duration.observe(d.0 as f64);
                }
                if let Some(c) = cardinality {
                    pos.cardinality.observe(c);
                }
                updated += 1;
            }
        }
        updated
    }

    /// Initializes `table` entries for the tree rooted at `root` from
    /// the root's structure group, positionally. Entries the table
    /// already holds are left untouched (live history beats pooled
    /// history); an unknown structure initializes nothing. Returns how
    /// many entries were initialized.
    pub fn warm(&self, root: &Arc<Node>, table: &mut EstimatorTable) -> usize {
        let inner = self.inner.lock();
        let Some(group) = inner.groups.get(&root.structure_key()) else {
            return 0;
        };
        let mut seeded = 0;
        for (idx, node) in root.collect_nodes().into_iter().enumerate() {
            for &role in node.own_roles() {
                let Some(pos) = group.get(&(idx, role)) else {
                    continue;
                };
                let id = MuscleId::new(node.id, role);
                if table.duration(id).is_none() {
                    if let Some(d) = pos.duration.value() {
                        table.init_duration(id, TimeNs(d.max(0.0) as u64));
                        seeded += 1;
                    }
                }
                if table.cardinality(id).is_none() {
                    if let Some(c) = pos.cardinality.value() {
                        table.init_cardinality(id, c);
                        seeded += 1;
                    }
                }
            }
        }
        seeded
    }

    /// A coarse per-item service-cost estimate (ns) for the structure
    /// rooted at `root`, from its pooled durations: the sum of every
    /// positional duration estimate, with `Execute` muscles weighted by
    /// the structure's largest pooled split cardinality when one is
    /// known (a fan-out runs its body once per sub-problem). `None`
    /// while the structure has no pooled history — the latency-aware
    /// admission gate then degrades to the static quotas.
    ///
    /// This is deliberately cruder than `predictive_wct` (no layout, no
    /// LP, no per-split attribution): admission wants a cheap total-work
    /// price to multiply by the pool's queue depth, not a critical-path
    /// forecast.
    pub fn estimated_cost(&self, root: &Arc<Node>) -> Option<TimeNs> {
        let inner = self.inner.lock();
        let group = inner.groups.get(&root.structure_key())?;
        if group.is_empty() {
            return None;
        }
        let fanout = group
            .iter()
            .filter(|((_, role), _)| *role == MuscleRole::Split)
            .filter_map(|(_, pos)| pos.cardinality.value())
            .fold(1.0f64, f64::max);
        let mut total = 0.0f64;
        let mut known = false;
        for (&(_, role), pos) in group.iter() {
            let Some(d) = pos.duration.value() else {
                continue;
            };
            known = true;
            let weight = if role == MuscleRole::Execute {
                fanout
            } else {
                1.0
            };
            total += d.max(0.0) * weight;
        }
        known.then_some(TimeNs(total as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::{map, seq, Skel};

    fn fan() -> Skel<Vec<i64>, i64> {
        map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0]),
            |p: Vec<i64>| p.into_iter().sum::<i64>(),
        )
    }

    fn seeded_table(program: &Skel<Vec<i64>, i64>) -> EstimatorTable {
        let mut t = EstimatorTable::new(0.5);
        for m in program.node().collect_muscles() {
            t.init_duration(m.id, TimeNs::from_millis(10));
            if m.id.role == MuscleRole::Split {
                t.init_cardinality(m.id, 4.0);
            }
        }
        t
    }

    #[test]
    fn warm_translates_history_onto_a_structural_twin() {
        let a = fan();
        let b = fan();
        assert_ne!(a.id(), b.id());
        assert_eq!(a.structure_key(), b.structure_key());
        let shared = SharedEstimators::new(0.5);
        shared.absorb(a.node(), &seeded_table(&a));
        let mut fresh = EstimatorTable::new(0.5);
        let seeded = shared.warm(b.node(), &mut fresh);
        assert!(seeded > 0);
        assert!(
            fresh.covers(&b.node().collect_muscles()),
            "the twin's table covers every muscle after warming"
        );
    }

    #[test]
    fn different_structures_never_mix() {
        let a = fan();
        let other = seq(|v: Vec<i64>| v.into_iter().sum::<i64>());
        let shared = SharedEstimators::new(0.5);
        shared.absorb(a.node(), &seeded_table(&a));
        let mut fresh = EstimatorTable::new(0.5);
        assert_eq!(shared.warm(other.node(), &mut fresh), 0);
        assert!(!fresh.covers(&other.node().collect_muscles()));
    }

    #[test]
    fn live_history_beats_pooled_history() {
        let a = fan();
        let b = fan();
        let shared = SharedEstimators::new(0.5);
        shared.absorb(a.node(), &seeded_table(&a));
        let mut table = EstimatorTable::new(0.5);
        let exec = b
            .node()
            .collect_muscles()
            .into_iter()
            .find(|m| m.id.role == MuscleRole::Execute)
            .unwrap()
            .id;
        table.init_duration(exec, TimeNs::from_millis(999));
        shared.warm(b.node(), &mut table);
        assert_eq!(
            table.duration(exec),
            Some(TimeNs::from_millis(999)),
            "warming must not clobber a live entry"
        );
    }

    #[test]
    fn clones_share_one_table() {
        let a = fan();
        let b = fan();
        let shared = SharedEstimators::new(0.5);
        let other_handle = shared.clone();
        shared.absorb(a.node(), &seeded_table(&a));
        let mut fresh = EstimatorTable::new(0.5);
        assert!(
            other_handle.warm(b.node(), &mut fresh) > 0,
            "a clone must see history absorbed through the original"
        );
    }

    #[test]
    fn estimated_cost_weights_fanout_and_tracks_history() {
        let a = fan();
        let shared = SharedEstimators::new(0.5);
        assert_eq!(shared.estimated_cost(a.node()), None, "cold: no price");
        shared.absorb(a.node(), &seeded_table(&a));
        let cost = shared.estimated_cost(a.node()).expect("warm: priced");
        // split + merge + execute×cardinality(4) = 10ms×(1+1+4) = 60ms.
        assert_eq!(cost, TimeNs::from_millis(60));
        // A structurally different program stays unpriced.
        let other = seq(|v: Vec<i64>| v.into_iter().sum::<i64>());
        assert_eq!(shared.estimated_cost(other.node()), None);
    }
}
