//! Multi-tenant serving: many adaptive sessions over one shared engine.
//!
//! Everything below `askel-serve` is single-session: one
//! [`AdaptiveSession`](askel_adapt::AdaptiveSession) owns one
//! [`TriggerEngine`](askel_adapt::TriggerEngine) and implicitly the whole
//! worker pool. This crate scales the paper's MAPE loop to *many* managed
//! skeletons at once — the direction Aldinucci, Danelutto & Kilpatrick
//! take with hierarchies of autonomic managers over many behavioural
//! skeleton instances:
//!
//! * **[`ServeRegistry`]** shards per-tenant sessions over one shared
//!   [`Engine`](askel_engine::Engine)/pool, with per-tenant admission
//!   quotas ([`AdmissionPolicy`]) and a starvation-free round-robin
//!   drain ([`ServeRegistry::drain_cycle`]).
//! * **Batched ingestion** ([`ServeRegistry::feed_batch`]) rides the
//!   engine's batched submission path end to end: one pool transaction
//!   per bound-sized chunk instead of one per item, amortizing the
//!   per-submission dispatch floor across a whole ingress call.
//! * **[`ShardedServe`]** splits the tenant population over `N`
//!   independent registry shards (pure hash of [`TenantId`] — nothing
//!   to rebalance), each owned by its own driver thread running the
//!   feed→drain→harvest loop, all over the **one** shared engine, one
//!   metrics hub, one monitor, and one cross-shard estimator pool.
//! * **A multiplexed autonomic loop**: one registered listener
//!   ([`ServeMonitor`]) routes events to the owning tenants' trigger
//!   engines (and one shared
//!   [`AutonomicController`](askel_core::AutonomicController), when
//!   attached), and [`SharedEstimators`] pools estimator history across
//!   tenants by **skeleton structure**
//!   ([`Skel::structure_key`](askel_skeletons::Skel::structure_key)):
//!   tenant N's observations warm tenant N+1's forecast gates when —
//!   and only when — they run structurally identical programs.
//!   Safe-point arbitration stays strictly per tenant.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod admission;
mod estimators;
mod metrics;
mod mux;
mod registry;
mod shard;

pub use admission::{Admission, AdmissionPolicy, BatchAdmission, RejectReason};
pub use estimators::SharedEstimators;
pub use mux::ServeMonitor;
pub use registry::{ServeRegistry, TenantId, TenantStats};
pub use shard::ShardedServe;
