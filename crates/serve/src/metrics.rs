//! Serving-layer metrics on the engine's shared hub.
//!
//! The registry records two families (see `docs/ARCHITECTURE.md` for the
//! full inventory):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `serve_admit_submitted_total` | counter | feeds admitted straight to the pool |
//! | `serve_admit_queued_total` | counter | feeds parked in a tenant backlog |
//! | `serve_admit_rejected_total{reason="backlog_full"}` | counter | feeds shed by a full backlog |
//! | `serve_admit_rejected_total{reason="unknown_tenant"}` | counter | feeds for unregistered tenants |
//! | `serve_sojourn_ns` | histogram | submit → harvest, all tenants |
//! | `serve_sojourn_ns{tenant="tN"}` | histogram | per-tenant sojourn (snapshot-time, via [`crate::ServeRegistry::export_snapshot`]) |
//!
//! Sojourn is measured **registry-side**: from the moment an item is
//! handed to the tenant's session (feed, batch feed, or backlog
//! dispatch) to the moment its result is harvested back out — queueing
//! on the shared pool included, tenant backlog time excluded. Items are
//! stamped unconditionally with 0 ("unstamped") when the hub is
//! disabled, so the timestamp queue never desynchronizes from the
//! session's in-order results while the enabled flag flips mid-stream,
//! and the disabled path never reads a clock.

use std::sync::Arc;

use askel_obs::{Counter, Histogram, MetricsHub};

use crate::admission::RejectReason;

/// The registry's counter/histogram handles (module docs list them).
pub(crate) struct ServeMetrics {
    hub: Arc<MetricsHub>,
    submitted: Counter,
    queued: Counter,
    rejected_backlog: Counter,
    rejected_unknown: Counter,
    sojourn: Histogram,
}

impl ServeMetrics {
    /// Registers (idempotently) the serving metrics on `hub`.
    pub(crate) fn register(hub: &Arc<MetricsHub>) -> Arc<Self> {
        Arc::new(ServeMetrics {
            hub: Arc::clone(hub),
            submitted: hub.counter("serve_admit_submitted_total"),
            queued: hub.counter("serve_admit_queued_total"),
            rejected_backlog: hub.counter("serve_admit_rejected_total{reason=\"backlog_full\"}"),
            rejected_unknown: hub.counter("serve_admit_rejected_total{reason=\"unknown_tenant\"}"),
            sojourn: hub.histogram("serve_sojourn_ns"),
        })
    }

    /// Whether the hub currently records (gates clock reads at stamp
    /// sites; the counters below gate themselves).
    pub(crate) fn enabled(&self) -> bool {
        self.hub.enabled()
    }

    pub(crate) fn note_submitted(&self, n: usize) {
        self.submitted.add(n as u64);
    }

    pub(crate) fn note_queued(&self, n: usize) {
        self.queued.add(n as u64);
    }

    pub(crate) fn note_rejected(&self, reason: RejectReason, n: usize) {
        match reason {
            RejectReason::BacklogFull => self.rejected_backlog.add(n as u64),
            RejectReason::UnknownTenant => self.rejected_unknown.add(n as u64),
        }
    }

    /// Records one sojourn into the all-tenants aggregate.
    pub(crate) fn note_sojourn(&self, ns: u64) {
        self.sojourn.record(ns);
    }
}
