//! The multiplexed monitor: one registered listener for all tenants.
//!
//! Registering every tenant's [`TriggerEngine`] as its own listener on
//! the shared engine would make event delivery O(tenants) — every
//! listener sees every tenant's events and discards the foreign ones.
//! [`ServeMonitor`] inverts that: it is the **single** listener the
//! registry installs, and it routes each event to the trigger engines of
//! the tenants whose tree contains the event's node (an O(1) map
//! lookup). A shared [`AutonomicController`] — the self-optimization
//! half of the multiplexed loop — receives every event, exactly as if it
//! were registered directly.
//!
//! Routing is by `NodeId`, so tenants running *the same* `Skel` clone
//! (shared identity) both receive events for their shared nodes — the
//! Skandium semantics: shared skeleton objects share estimator history.
//! Tenants with distinct trees never overlap. The registry keeps routes
//! current across safe-point rewrites (a rewrite changes the tree's node
//! set) via its drain cycle.
//!
//! Under a [`ShardedServe`](crate::ShardedServe) the monitor stays the
//! single registered listener for **all** shards: each route carries the
//! owning shard's index, and delivery walks only this table's own
//! `RwLock` — a worker thread emitting an event never touches any
//! shard's registry lock, so the event path cannot serialize ingress or
//! drain on another shard. The shard tag is bookkeeping for
//! diagnostics ([`shard_routes`](ServeMonitor::shard_routes)) and route
//! audits; delivery itself stays a flat `NodeId` lookup.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use askel_adapt::TriggerEngine;
use askel_core::AutonomicController;
use askel_events::{Event, Listener, Payload};
use askel_skeletons::{Node, NodeId};

/// One node's route: the owning tenant, its shard, and its trigger.
struct Route {
    tenant: u64,
    shard: u32,
    trigger: Arc<TriggerEngine>,
}

/// The single serve-layer listener; see the module docs. Created and
/// managed by [`ServeRegistry`](crate::ServeRegistry) /
/// [`ShardedServe`](crate::ShardedServe).
#[derive(Default)]
pub struct ServeMonitor {
    routes: RwLock<HashMap<NodeId, Vec<Route>>>,
    controller: RwLock<Option<Arc<AutonomicController>>>,
}

impl ServeMonitor {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ServeMonitor::default())
    }

    /// Installs (or replaces) the shared WCT controller fed every event.
    pub(crate) fn set_controller(&self, controller: Arc<AutonomicController>) {
        *self.controller.write() = Some(controller);
    }

    /// Routes every node of `root`'s tree to `tenant`'s trigger engine
    /// (tagged with the owning `shard`), returning the routed ids (the
    /// registry keeps them for unrouting after a rewrite or a detach).
    pub(crate) fn route(
        &self,
        tenant: u64,
        shard: u32,
        trigger: &Arc<TriggerEngine>,
        root: &Arc<Node>,
    ) -> Vec<NodeId> {
        let nodes: Vec<NodeId> = root.collect_nodes().iter().map(|n| n.id).collect();
        let mut routes = self.routes.write();
        for &id in &nodes {
            let owners = routes.entry(id).or_default();
            if !owners.iter().any(|r| r.tenant == tenant) {
                owners.push(Route {
                    tenant,
                    shard,
                    trigger: Arc::clone(trigger),
                });
            }
        }
        nodes
    }

    /// Removes `tenant`'s routes for `ids`.
    pub(crate) fn unroute(&self, tenant: u64, ids: &[NodeId]) {
        let mut routes = self.routes.write();
        for id in ids {
            if let Some(owners) = routes.get_mut(id) {
                owners.retain(|r| r.tenant != tenant);
                if owners.is_empty() {
                    routes.remove(id);
                }
            }
        }
    }

    /// How many node ids currently have at least one route (tests,
    /// diagnostics).
    pub fn routed_nodes(&self) -> usize {
        self.routes.read().len()
    }

    /// How many `(node, tenant)` routes belong to `shard` (tests,
    /// diagnostics — e.g. auditing that a detached shard left nothing
    /// behind).
    pub fn shard_routes(&self, shard: u32) -> usize {
        self.routes
            .read()
            .values()
            .map(|owners| owners.iter().filter(|r| r.shard == shard).count())
            .sum()
    }
}

impl Listener for ServeMonitor {
    fn on_event(&self, payload: &mut Payload<'_>, event: &Event) {
        if let Some(controller) = self.controller.read().as_ref() {
            controller.on_event(payload, event);
        }
        // Collect the owners under the read lock, deliver outside it: a
        // trigger callback must never run while the route table is
        // locked (a rewrite on another thread may be re-routing), and
        // delivery must never wait on a shard's registry lock.
        let owners: Vec<Arc<TriggerEngine>> = {
            let routes = self.routes.read();
            match routes.get(&event.node) {
                Some(owners) => owners.iter().map(|r| Arc::clone(&r.trigger)).collect(),
                None => return,
            }
        };
        for trigger in owners {
            trigger.on_event(payload, event);
        }
    }
}
