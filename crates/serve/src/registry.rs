//! The session registry: many tenants, one engine.
//!
//! [`ServeRegistry`] owns one [`Engine`] clone and shards any number of
//! per-tenant [`AdaptiveSession`]s over it. Each tenant keeps its own
//! trigger engine, safe-point arbitration and rewrite history — the
//! per-tenant half of the MAPE loop stays fully independent — while the
//! monitor ([`crate::ServeMonitor`]), the optional shared
//! [`AutonomicController`] and the [`SharedEstimators`] pool are
//! multiplexed across all of them. Under a
//! [`ShardedServe`](crate::ShardedServe) front, many registries run as
//! shards sharing **one** monitor and **one** estimator pool over the
//! same engine; the registry itself is shard-agnostic — it just tags
//! its routes with its shard index.
//!
//! Feeding goes through admission control (see [`AdmissionPolicy`]);
//! queued items are dispatched by [`ServeRegistry::drain_cycle`], which
//! visits tenants round-robin, rotating from the previous cycle's
//! first-visited tenant **key** so no backlogged tenant is ever
//! starved — even across registration/detach churn. The drain cycle is
//! also where cross-tenant publication happens: each visited tenant's
//! estimator history is absorbed into the shared pool (and its
//! admission cost estimate re-priced), and its event routes are
//! refreshed if a safe point rewrote its tree since the last visit.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use askel_adapt::{AdaptiveSession, TriggerEngine};
use askel_core::AutonomicController;
use askel_engine::{Engine, EngineError};
use askel_obs::{HistogramSnapshot, MetricsSnapshot};
use askel_skeletons::{Clock, NodeId, Skel};

use crate::admission::{Admission, AdmissionPolicy, BatchAdmission, RejectReason};
use crate::estimators::SharedEstimators;
use crate::metrics::ServeMetrics;
use crate::mux::ServeMonitor;

/// A registered tenant's handle. Displays as `t<n>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A point-in-time snapshot of one tenant's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Items submitted to the shared pool so far.
    pub submitted: u64,
    /// Results collected from the pool so far (any outcome).
    pub completed: u64,
    /// Items rejected by admission control.
    pub rejected: u64,
    /// Items currently waiting in the tenant's backlog.
    pub backlog: usize,
    /// Items currently in flight on the shared pool.
    pub in_flight: usize,
    /// Results harvested and waiting to be taken.
    pub ready: usize,
    /// The tenant's skeleton version (safe-point rewrites applied).
    pub version: u64,
    /// The tenant's current admission price (estimated ns per item from
    /// the structure-keyed pool); `None` while its structure has no
    /// pooled history.
    pub est_cost_ns: Option<u64>,
}

struct Tenant<P, R> {
    session: AdaptiveSession<P, R>,
    backlog: VecDeque<P>,
    ready: VecDeque<Result<R, EngineError>>,
    /// Whether this tenant's trigger engine is routed engine events (and
    /// its history published to the shared pool).
    adaptive: bool,
    routed: Vec<NodeId>,
    routed_version: u64,
    submitted: u64,
    completed: u64,
    rejected: u64,
    /// `completed` as of the last publication into [`SharedEstimators`].
    published: u64,
    /// The tenant's cached per-item cost estimate for the latency gate
    /// ([`AdmissionPolicy::cost_room`]): priced from the shared pool at
    /// registration and re-priced on every drain-cycle publication, so
    /// the admission fast path never takes the estimator lock.
    cost_ns: Option<u64>,
    /// Submission timestamps of items handed to the session and not yet
    /// harvested, in submission order (the session returns results in
    /// that same order). `0` marks an item fed while the metrics hub was
    /// disabled — always stamped, so the queue stays aligned with the
    /// session's results even when the enabled flag flips mid-stream.
    fed_at: VecDeque<u64>,
    /// Per-tenant sojourn histogram (submit → harvest), recorded only
    /// while the hub is enabled; exported as
    /// `serve_sojourn_ns{tenant="tN"}`.
    sojourn: HistogramSnapshot,
}

impl<P, R> Tenant<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// Moves everything the session has finished into the ready queue,
    /// keeping the completion counter and sojourn tallies current.
    fn harvest(&mut self, metrics: &ServeMetrics, clock: &dyn Clock) {
        let got = self.session.drain_ready();
        self.completed += got.len() as u64;
        self.note_sojourns(got.len(), metrics, clock);
        self.ready.extend(got);
    }

    /// Stamps `n` items handed to the session just now. One clock read
    /// per call when the hub is enabled; zero-stamps (no clock) when not.
    fn stamp_fed(&mut self, n: usize, metrics: &ServeMetrics, clock: &dyn Clock) {
        let stamp = if metrics.enabled() {
            clock.now().0.max(1)
        } else {
            0
        };
        self.fed_at.extend(std::iter::repeat_n(stamp, n));
    }

    /// Consumes `n` submission stamps (oldest first — the order results
    /// come back in) and records the sojourns of the stamped ones.
    fn note_sojourns(&mut self, n: usize, metrics: &ServeMetrics, clock: &dyn Clock) {
        note_sojourns(&mut self.fed_at, &mut self.sojourn, n, metrics, clock);
    }
}

/// [`Tenant::note_sojourns`] over bare fields, so `detach` can keep
/// recording after `AdaptiveSession::drain` moves the session out of
/// the tenant. Reads the clock at most once per call.
fn note_sojourns(
    fed_at: &mut VecDeque<u64>,
    sojourn: &mut HistogramSnapshot,
    n: usize,
    metrics: &ServeMetrics,
    clock: &dyn Clock,
) {
    let mut now = None;
    for _ in 0..n {
        let stamp = fed_at.pop_front().unwrap_or(0);
        if stamp != 0 && metrics.enabled() {
            let at = *now.get_or_insert_with(|| clock.now().0);
            let ns = at.saturating_sub(stamp);
            metrics.note_sojourn(ns);
            sojourn.record(ns);
        }
    }
}

/// Shards many adaptive sessions over one shared engine; see the module
/// docs.
pub struct ServeRegistry<P, R> {
    engine: Engine,
    policy: AdmissionPolicy,
    shared: SharedEstimators,
    monitor: Arc<ServeMonitor>,
    /// Whether `monitor` has been installed as an engine listener.
    /// Shared across every shard of a `ShardedServe` so the monitor is
    /// registered exactly once no matter which shard first needs it.
    monitor_registered: Arc<AtomicBool>,
    controller: Option<Arc<AutonomicController>>,
    tenants: BTreeMap<u64, Tenant<P, R>>,
    next_id: u64,
    /// The key the previous drain cycle first visited; the next cycle
    /// starts at the first key strictly greater (wrapping). Key-based —
    /// never positional — so register/detach churn between cycles
    /// cannot re-favor a tenant.
    cursor: Option<u64>,
    /// This registry's shard index under a `ShardedServe` (0 standalone);
    /// tags the monitor's routes.
    shard: u32,
    clock: Arc<dyn Clock>,
    metrics: Arc<ServeMetrics>,
}

impl<P, R> ServeRegistry<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// An empty registry over a non-owning clone of `engine`, with the
    /// default [`AdmissionPolicy`]. Shutting the engine down remains the
    /// caller's job (after [`quiesce`](ServeRegistry::quiesce)).
    pub fn new(engine: &Engine) -> Self {
        ServeRegistry {
            clock: engine.clock(),
            metrics: ServeMetrics::register(engine.metrics_hub()),
            engine: engine.clone(),
            policy: AdmissionPolicy::default(),
            shared: SharedEstimators::new(0.5),
            monitor: ServeMonitor::new(),
            monitor_registered: Arc::new(AtomicBool::new(false)),
            controller: None,
            tenants: BTreeMap::new(),
            next_id: 0,
            cursor: None,
            shard: 0,
        }
    }

    /// A shard registry for a [`ShardedServe`](crate::ShardedServe):
    /// shares the front's monitor, estimator pool and
    /// listener-registration latch instead of owning its own.
    pub(crate) fn new_shard(
        engine: &Engine,
        monitor: Arc<ServeMonitor>,
        shared: SharedEstimators,
        monitor_registered: Arc<AtomicBool>,
        shard: u32,
        policy: AdmissionPolicy,
    ) -> Self {
        ServeRegistry {
            clock: engine.clock(),
            metrics: ServeMetrics::register(engine.metrics_hub()),
            engine: engine.clone(),
            policy,
            shared,
            monitor,
            monitor_registered,
            controller: None,
            tenants: BTreeMap::new(),
            next_id: 0,
            cursor: None,
            shard,
        }
    }

    /// Replaces the admission policy (applies to subsequent feeds).
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the admission policy in place (applies to subsequent
    /// feeds and drain cycles).
    pub fn set_policy(&mut self, policy: AdmissionPolicy) {
        self.policy = policy;
    }

    /// Attaches one shared WCT controller to the multiplexed loop: it
    /// receives every engine event through the monitor, and adaptive
    /// tenants registered **after** this call have their estimator
    /// history invalidated in it on every applied subtree replacement
    /// ([`askel_adapt::Reconfigurator::sync_controller`]).
    pub fn attach_controller(&mut self, controller: Arc<AutonomicController>) {
        self.monitor.set_controller(Arc::clone(&controller));
        self.ensure_monitor();
        self.controller = Some(controller);
    }

    /// Registers a plain tenant: a session with a private, rule-less
    /// trigger engine and **no** event routing — zero per-event overhead,
    /// no estimator sharing. The cheap default for bulk tenants.
    pub fn register(&mut self, skel: &Skel<P, R>) -> TenantId {
        let id = self.alloc_id();
        self.register_with_id(id, skel)
    }

    /// Registers an adaptive tenant driving `trigger`'s rules:
    ///
    /// * the tenant's trigger is **warm-started** from the shared pool's
    ///   history for structurally identical programs (only entries the
    ///   trigger does not already hold; see [`SharedEstimators::warm`]),
    /// * engine events for the tenant's tree are routed to the trigger
    ///   through the multiplexed monitor, and
    /// * if a controller is attached, the session invalidates its
    ///   estimates alongside the trigger's on applied rewrites.
    pub fn register_adaptive(
        &mut self,
        skel: &Skel<P, R>,
        trigger: Arc<TriggerEngine>,
    ) -> TenantId {
        let id = self.alloc_id();
        self.register_adaptive_with_id(id, skel, trigger)
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// [`register`](Self::register) under an externally-allocated id
    /// (the sharded front allocates globally so ids hash to shards).
    pub(crate) fn register_with_id(&mut self, id: u64, skel: &Skel<P, R>) -> TenantId {
        let trigger = TriggerEngine::new(0.5);
        self.insert(id, skel, trigger, false)
    }

    /// [`register_adaptive`](Self::register_adaptive) under an
    /// externally-allocated id.
    pub(crate) fn register_adaptive_with_id(
        &mut self,
        id: u64,
        skel: &Skel<P, R>,
        trigger: Arc<TriggerEngine>,
    ) -> TenantId {
        trigger.with_estimates(|est| {
            self.shared.warm(skel.node(), est);
        });
        self.ensure_monitor();
        self.insert(id, skel, trigger, true)
    }

    fn insert(
        &mut self,
        id: u64,
        skel: &Skel<P, R>,
        trigger: Arc<TriggerEngine>,
        adaptive: bool,
    ) -> TenantId {
        debug_assert!(
            !self.tenants.contains_key(&id),
            "tenant id {id} registered twice"
        );
        self.next_id = self.next_id.max(id + 1);
        let routed = if adaptive {
            self.monitor.route(id, self.shard, &trigger, skel.node())
        } else {
            Vec::new()
        };
        let mut session = AdaptiveSession::new(&self.engine, skel, trigger);
        if adaptive {
            if let Some(controller) = &self.controller {
                session = session.sync_controller(Arc::clone(controller));
            }
        }
        let cost_ns = self.shared.estimated_cost(skel.node()).map(|c| c.0);
        self.tenants.insert(
            id,
            Tenant {
                session,
                backlog: VecDeque::new(),
                ready: VecDeque::new(),
                adaptive,
                routed,
                routed_version: 0,
                submitted: 0,
                completed: 0,
                rejected: 0,
                published: 0,
                cost_ns,
                fed_at: VecDeque::new(),
                sojourn: HistogramSnapshot::new(),
            },
        );
        TenantId(id)
    }

    fn ensure_monitor(&mut self) {
        if !self.monitor_registered.swap(true, Ordering::SeqCst) {
            self.engine
                .registry()
                .add_listener(Arc::clone(&self.monitor) as _);
        }
    }

    /// Feeds one item through admission control; see
    /// [`AdmissionPolicy`] for the gate order. The pool's queue depth
    /// is sampled once per call (a cheap relaxed read).
    pub fn feed(&mut self, tenant: TenantId, input: P) -> Admission {
        let depth = self.engine.pool().queue_depth_hint();
        let policy = self.policy;
        let Some(t) = self.tenants.get_mut(&tenant.0) else {
            self.metrics.note_rejected(RejectReason::UnknownTenant, 1);
            return Admission::Rejected(RejectReason::UnknownTenant);
        };
        t.harvest(&self.metrics, &*self.clock);
        if t.backlog.is_empty()
            && t.session.in_flight() < policy.max_in_flight
            && policy.pool_room(depth)
            && policy.cost_room(depth, t.cost_ns)
        {
            t.stamp_fed(1, &self.metrics, &*self.clock);
            t.session.feed(input);
            t.submitted += 1;
            self.metrics.note_submitted(1);
            Admission::Submitted
        } else if t.backlog.len() < policy.max_backlog {
            t.backlog.push_back(input);
            self.metrics.note_queued(1);
            Admission::Queued
        } else {
            t.rejected += 1;
            self.metrics.note_rejected(RejectReason::BacklogFull, 1);
            Admission::Rejected(RejectReason::BacklogFull)
        }
    }

    /// Feeds a batch through admission control. Whatever fits under the
    /// tenant's quota (and the pool-wide gates) is submitted through the
    /// batched path — [`AdaptiveSession::feed_batch`], one safe point
    /// and one pool transaction for the whole chunk — the next
    /// `max_backlog - backlog` items queue, and the rest are rejected.
    ///
    /// The pool's queue depth is sampled **once for the whole batch**
    /// (the backpressure and latency gates are deliberately that
    /// coarse: a batch admitted at depth `d` may briefly run the pool
    /// past the bound by the batch length — bounded overshoot in
    /// exchange for two relaxed loads per batch instead of two `SeqCst`
    /// loads per item on the ~1 µs/item ingress path).
    pub fn feed_batch(&mut self, tenant: TenantId, inputs: Vec<P>) -> BatchAdmission {
        let depth = self.engine.pool().queue_depth_hint();
        let policy = self.policy;
        let Some(t) = self.tenants.get_mut(&tenant.0) else {
            self.metrics
                .note_rejected(RejectReason::UnknownTenant, inputs.len());
            let mut out = BatchAdmission::default();
            out.shed_unknown(inputs.len());
            return out;
        };
        t.harvest(&self.metrics, &*self.clock);
        let mut inputs = inputs;
        let mut out = BatchAdmission::default();
        if t.backlog.is_empty() && policy.pool_room(depth) && policy.cost_room(depth, t.cost_ns) {
            let room = policy.max_in_flight.saturating_sub(t.session.in_flight());
            if room > 0 {
                let rest = if inputs.len() > room {
                    inputs.split_off(room)
                } else {
                    Vec::new()
                };
                out.submitted = inputs.len();
                t.submitted += inputs.len() as u64;
                t.stamp_fed(inputs.len(), &self.metrics, &*self.clock);
                t.session.feed_batch(inputs);
                inputs = rest;
            }
        }
        let space = policy.max_backlog.saturating_sub(t.backlog.len());
        let overflow = if inputs.len() > space {
            inputs.split_off(space)
        } else {
            Vec::new()
        };
        out.queued = inputs.len();
        t.backlog.extend(inputs);
        out.shed_backlog(overflow.len());
        t.rejected += overflow.len() as u64;
        self.metrics.note_submitted(out.submitted);
        self.metrics.note_queued(out.queued);
        self.metrics
            .note_rejected(RejectReason::BacklogFull, out.rejected_backlog);
        out
    }

    /// One fairness round: visits every tenant once, round-robin,
    /// starting from the first key strictly greater than the previous
    /// cycle's starting key (wrapping) — rotation is over tenant
    /// **keys**, never positions, so a `detach`/`register` between
    /// cycles shifts nobody else's turn and no tenant can be repeatedly
    /// re-favored (see [`next_first`](Self::next_first)). Per visited
    /// tenant: finished results are harvested, backlogged items are
    /// dispatched up to the in-flight quota (through the batched path,
    /// under the pool-wide gates), event routes are refreshed if a
    /// rewrite changed the tree, and new estimator history is published
    /// to the shared pool. Returns how many backlogged items were
    /// dispatched.
    pub fn drain_cycle(&mut self) -> usize {
        let keys: Vec<u64> = self.tenants.keys().copied().collect();
        if keys.is_empty() {
            return 0;
        }
        let start = match self.cursor {
            None => 0,
            Some(prev) => keys.iter().position(|&k| k > prev).unwrap_or(0),
        };
        self.cursor = Some(keys[start]);
        let quota = self.policy.max_in_flight;
        let policy = self.policy;
        let mut dispatched = 0;
        for i in 0..keys.len() {
            let key = keys[(start + i) % keys.len()];
            // Re-sampled per visit (not per item): each dispatch batch
            // changes the depth the next tenant's gates should see.
            let depth = self.engine.pool().queue_depth_hint();
            let Some(t) = self.tenants.get_mut(&key) else {
                continue;
            };
            t.harvest(&self.metrics, &*self.clock);
            if !t.backlog.is_empty()
                && policy.pool_room(depth)
                && policy.cost_room(depth, t.cost_ns)
            {
                let room = quota.saturating_sub(t.session.in_flight());
                if room > 0 {
                    let take = room.min(t.backlog.len());
                    let chunk: Vec<P> = t.backlog.drain(..take).collect();
                    t.submitted += take as u64;
                    dispatched += take;
                    t.stamp_fed(take, &self.metrics, &*self.clock);
                    t.session.feed_batch(chunk);
                }
            }
            self.refresh(key);
        }
        dispatched
    }

    /// The tenant the next [`drain_cycle`](Self::drain_cycle) will
    /// visit first (`None` when the registry is empty): the first key
    /// strictly greater than the previous cycle's starting key,
    /// wrapping. Diagnostics — fairness monitors and the churn
    /// regression tests read it.
    pub fn next_first(&self) -> Option<TenantId> {
        let first = || self.tenants.keys().next().copied();
        match self.cursor {
            None => first(),
            Some(prev) => self
                .tenants
                .range((Bound::Excluded(prev), Bound::Unbounded))
                .next()
                .map(|(k, _)| *k)
                .or_else(first),
        }
        .map(TenantId)
    }

    /// Post-visit bookkeeping for one adaptive tenant: re-route events
    /// if a safe point rewrote the tree since the last visit, absorb
    /// new estimator history into the shared pool, and re-price the
    /// tenant's admission cost estimate from it.
    fn refresh(&mut self, key: u64) {
        let Some(t) = self.tenants.get_mut(&key) else {
            return;
        };
        if !t.adaptive {
            return;
        }
        let version = t.session.version();
        if version != t.routed_version {
            let old = std::mem::take(&mut t.routed);
            let trigger = Arc::clone(t.session.trigger());
            let root = Arc::clone(t.session.skeleton().node());
            self.monitor.unroute(key, &old);
            t.routed = self.monitor.route(key, self.shard, &trigger, &root);
            t.routed_version = version;
        }
        if t.completed > t.published {
            t.published = t.completed;
            let root = Arc::clone(t.session.skeleton().node());
            let trigger = Arc::clone(t.session.trigger());
            trigger.read_estimates(|table| self.shared.absorb(&root, table));
            let cost = self.shared.estimated_cost(&root).map(|c| c.0);
            if let Some(t) = self.tenants.get_mut(&key) {
                t.cost_ns = cost;
            }
        }
    }

    /// Takes every result the tenant has finished, in submission order,
    /// without blocking. Empty for an unknown tenant.
    pub fn take_ready(&mut self, tenant: TenantId) -> Vec<Result<R, EngineError>> {
        let Some(t) = self.tenants.get_mut(&tenant.0) else {
            return Vec::new();
        };
        t.harvest(&self.metrics, &*self.clock);
        t.ready.drain(..).collect()
    }

    /// The tenant's next result in submission order, blocking until it
    /// is ready; `None` if the tenant is unknown or has nothing
    /// outstanding. Items still in the backlog are **not** waited for —
    /// run [`drain_cycle`](ServeRegistry::drain_cycle) (or
    /// [`quiesce`](ServeRegistry::quiesce)) to dispatch them first.
    pub fn next_result(&mut self, tenant: TenantId) -> Option<Result<R, EngineError>> {
        let t = self.tenants.get_mut(&tenant.0)?;
        if let Some(r) = t.ready.pop_front() {
            return Some(r);
        }
        let r = t.session.next_result()?;
        t.completed += 1;
        t.note_sojourns(1, &self.metrics, &*self.clock);
        Some(r)
    }

    /// Dispatches and drains everything the tenant still owes, removes
    /// it from the registry (unrouting its events), and returns its
    /// remaining results in submission order. The tenant's final
    /// estimator history is published to the shared pool first, so a
    /// successor tenant of the same structure still warm-starts from it.
    pub fn detach(&mut self, tenant: TenantId) -> Option<Vec<Result<R, EngineError>>> {
        self.refresh(tenant.0);
        let mut t = self.tenants.remove(&tenant.0)?;
        // Past the registry's gates now: submit the whole backlog (the
        // session's own batched path still bounds pool transactions).
        let backlog: Vec<P> = t.backlog.drain(..).collect();
        if !backlog.is_empty() {
            t.submitted += backlog.len() as u64;
            t.stamp_fed(backlog.len(), &self.metrics, &*self.clock);
            t.session.feed_batch(backlog);
        }
        let mut results: Vec<Result<R, EngineError>> = t.ready.drain(..).collect();
        let drained: Vec<Result<R, EngineError>> = t.session.drain().collect();
        note_sojourns(
            &mut t.fed_at,
            &mut t.sojourn,
            drained.len(),
            &self.metrics,
            &*self.clock,
        );
        results.extend(drained);
        if t.adaptive {
            self.monitor.unroute(tenant.0, &t.routed);
        }
        Some(results)
    }

    /// Whether no tenant holds backlogged or in-flight items — i.e. a
    /// drain cycle has nothing left to dispatch or await. The sharded
    /// front's driver threads and [`quiesce`](Self::quiesce) poll this.
    pub fn settled(&self) -> bool {
        self.tenants
            .values()
            .all(|t| t.backlog.is_empty() && t.session.in_flight() == 0)
    }

    /// Drives drain cycles until no tenant holds backlogged or in-flight
    /// items — every fed item's result is then harvestable via
    /// [`take_ready`](ServeRegistry::take_ready). (Results are *not*
    /// consumed.)
    pub fn quiesce(&mut self) {
        loop {
            self.drain_cycle();
            if self.settled() {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// A snapshot of `tenant`'s counters; `None` if unknown.
    pub fn stats(&self, tenant: TenantId) -> Option<TenantStats> {
        let t = self.tenants.get(&tenant.0)?;
        Some(TenantStats {
            submitted: t.submitted,
            completed: t.completed,
            rejected: t.rejected,
            backlog: t.backlog.len(),
            in_flight: t.session.in_flight(),
            ready: t.ready.len(),
            version: t.session.version(),
            est_cost_ns: t.cost_ns,
        })
    }

    /// How many tenants are registered.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The shared engine (non-owning clone).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The cross-tenant estimator pool (a cheap clonable handle).
    pub fn shared_estimators(&self) -> &SharedEstimators {
        &self.shared
    }

    /// The multiplexed event monitor.
    pub fn monitor(&self) -> &Arc<ServeMonitor> {
        &self.monitor
    }

    /// The admission policy feeds are gated by.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// The tenant's sojourn histogram (submit → harvest, recorded while
    /// the metrics hub was enabled); `None` for an unknown tenant.
    pub fn tenant_sojourn(&self, tenant: TenantId) -> Option<&HistogramSnapshot> {
        self.tenants.get(&tenant.0).map(|t| &t.sojourn)
    }

    /// Appends this registry's per-tenant sojourn histograms to `snap`
    /// as `serve_sojourn_ns{tenant="tN"}` (tenants with no recorded
    /// sojourns are skipped). The sharded front merges every shard into
    /// one hub snapshot through this.
    pub(crate) fn append_tenant_histograms(&self, snap: &mut MetricsSnapshot) {
        for (id, t) in &self.tenants {
            if t.sojourn.count() > 0 {
                snap.push_histogram(
                    format!("serve_sojourn_ns{{tenant=\"{}\"}}", TenantId(*id)),
                    t.sojourn.clone(),
                );
            }
        }
    }

    /// One unified metrics snapshot for the whole stack this registry
    /// runs on: the shared hub's pool/engine/serve series plus this
    /// registry's per-tenant sojourn histograms, appended as
    /// `serve_sojourn_ns{tenant="tN"}` (tenants with no recorded
    /// sojourns are skipped). Feed the result to any `askel-obs`
    /// exporter.
    pub fn export_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.engine.metrics_hub().snapshot();
        self.append_tenant_histograms(&mut snap);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::seq;

    fn doubler() -> Skel<i64, i64> {
        seq(|x: i64| x * 2)
    }

    #[test]
    fn tenants_shard_one_engine_and_results_stay_per_tenant() {
        let engine = Engine::new(2);
        let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine);
        let a = reg.register(&doubler());
        let b = reg.register(&seq(|x: i64| x + 1));
        for x in 0..8 {
            assert_eq!(reg.feed(a, x), Admission::Submitted);
            assert_eq!(reg.feed(b, x), Admission::Submitted);
        }
        reg.quiesce();
        let got_a: Vec<i64> = reg.take_ready(a).into_iter().map(|r| r.unwrap()).collect();
        let got_b: Vec<i64> = reg.take_ready(b).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got_a, (0..8).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(got_b, (0..8).map(|x| x + 1).collect::<Vec<_>>());
        engine.shutdown();
    }

    #[test]
    fn admission_queues_beyond_quota_and_rejects_beyond_backlog() {
        let engine = Engine::new(1);
        let policy = AdmissionPolicy::default().max_in_flight(2).max_backlog(3);
        let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine).with_policy(policy);
        // A slow tenant so in-flight items stay in flight.
        let slow = seq(|x: i64| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            x
        });
        let t = reg.register(&slow);
        let mut tally = BatchAdmission::default();
        for x in 0..7 {
            match reg.feed(t, x) {
                Admission::Submitted => tally.submitted += 1,
                Admission::Queued => tally.queued += 1,
                Admission::Rejected(RejectReason::BacklogFull) => tally.shed_backlog(1),
                Admission::Rejected(r) => panic!("unexpected rejection: {r:?}"),
            }
        }
        assert_eq!(tally.submitted, 2, "quota");
        assert_eq!(tally.queued, 3, "backlog bound");
        assert_eq!(tally.rejected, 2, "load shed");
        reg.quiesce();
        let got = reg.take_ready(t);
        assert_eq!(got.len(), 5, "submitted + queued items all completed");
        let stats = reg.stats(t).unwrap();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.completed, 5);
        engine.shutdown();
    }

    #[test]
    fn feed_batch_splits_submit_queue_reject_by_reason() {
        let engine = Engine::new(1);
        let policy = AdmissionPolicy::default().max_in_flight(2).max_backlog(3);
        let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine).with_policy(policy);
        let slow = seq(|x: i64| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            x
        });
        let t = reg.register(&slow);
        let out = reg.feed_batch(t, (0..7).collect());
        assert_eq!(
            out,
            BatchAdmission {
                submitted: 2,
                queued: 3,
                rejected: 2,
                rejected_backlog: 2,
                rejected_unknown: 0,
            }
        );
        reg.quiesce();
        assert_eq!(reg.take_ready(t).len(), 5);
        engine.shutdown();
    }

    #[test]
    fn unknown_tenants_are_rejected_not_panicked() {
        let engine = Engine::new(1);
        let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine);
        let ghost = TenantId(99);
        assert_eq!(
            reg.feed(ghost, 1),
            Admission::Rejected(RejectReason::UnknownTenant)
        );
        let out = reg.feed_batch(ghost, vec![1, 2]);
        assert_eq!(out.rejected, 2);
        assert_eq!(out.rejected_unknown, 2, "routing error, not shed load");
        assert_eq!(out.rejected_backlog, 0);
        assert!(reg.take_ready(ghost).is_empty());
        assert!(reg.next_result(ghost).is_none());
        assert!(reg.detach(ghost).is_none());
        engine.shutdown();
    }

    #[test]
    fn detach_flushes_backlog_and_unroutes() {
        let engine = Engine::new(1);
        let policy = AdmissionPolicy::default().max_in_flight(1).max_backlog(64);
        let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine).with_policy(policy);
        let trigger = TriggerEngine::new(0.5);
        let t = reg.register_adaptive(&doubler(), trigger);
        assert!(reg.monitor().routed_nodes() > 0);
        for x in 0..6 {
            reg.feed(t, x);
        }
        let results = reg.detach(t).unwrap();
        assert_eq!(
            results.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
            (0..6).map(|x| x * 2).collect::<Vec<_>>()
        );
        assert_eq!(reg.monitor().routed_nodes(), 0, "routes removed");
        assert!(reg.is_empty());
        engine.shutdown();
    }

    /// The drain cursor rotates over tenant *keys*: a detach/register
    /// between cycles must not shift whose turn it is to go first. The
    /// pre-fix positional cursor (index `cursor % len` over a fresh key
    /// list) re-favored the same tenant whenever churn shifted the
    /// list under it.
    #[test]
    fn drain_cursor_rotation_survives_churn() {
        let engine = Engine::new(1);
        let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine);
        let t0 = reg.register(&doubler());
        let t1 = reg.register(&doubler());
        let t2 = reg.register(&doubler());

        assert_eq!(reg.next_first(), Some(t0));
        reg.drain_cycle(); // visits t0 first
        assert_eq!(reg.next_first(), Some(t1));

        // Churn: t0 leaves, a new tenant registers (id 3 > everyone).
        // t1 is still next — key-based rotation is unaffected.
        reg.detach(t0).unwrap();
        let t3 = reg.register(&doubler());
        assert_eq!(reg.next_first(), Some(t1));
        reg.drain_cycle(); // visits t1 first
        assert_eq!(reg.next_first(), Some(t2));
        reg.drain_cycle(); // visits t2 first
        assert_eq!(reg.next_first(), Some(t3));
        reg.drain_cycle(); // visits t3 first
        assert_eq!(reg.next_first(), Some(t1), "wraps to the smallest key");

        // Detaching the tenant the cursor rests on skips to its key
        // successor, favoring nobody twice.
        reg.drain_cycle(); // visits t1 first; cursor now at t1
        reg.detach(t2).unwrap();
        assert_eq!(reg.next_first(), Some(t3));

        // No-churn sanity: consecutive cycles never repeat a first
        // visit while ≥ 2 tenants are registered.
        let mut last = None;
        for _ in 0..6 {
            let first = reg.next_first();
            assert_ne!(first, last, "a tenant was re-favored back to back");
            reg.drain_cycle();
            last = first;
        }
        engine.shutdown();
    }

    /// Regression for the positional-cursor bug: with ids {0,1,2} and
    /// the cursor resting after a cycle, detaching the *smallest* key
    /// used to shift every later tenant one position left, so the next
    /// cycle re-started at the tenant *after* the intended one. Pin the
    /// exact sequence.
    #[test]
    fn drain_cursor_is_keyed_not_positional() {
        let engine = Engine::new(1);
        let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine);
        let tenants: Vec<TenantId> = (0..4).map(|_| reg.register(&doubler())).collect();
        reg.drain_cycle(); // starts at tenants[0]
        reg.drain_cycle(); // starts at tenants[1]
        reg.detach(tenants[0]).unwrap();
        // Keys are now [1,2,3]; a positional cursor (2 % 3 = index 2)
        // would start at tenants[3], skipping tenants[2] — key rotation
        // must pick tenants[2], the successor of the last start key 1.
        assert_eq!(reg.next_first(), Some(tenants[2]));
        engine.shutdown();
    }
}
