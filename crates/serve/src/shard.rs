//! Sharded, multi-threaded ingress: N registries, N driver threads,
//! one engine.
//!
//! A single [`ServeRegistry`] multiplexes any number of tenants, but
//! one driver thread owns the whole registry — ingress and drain
//! serialize on one core, the opposite of the paper's goal of exploiting
//! "the maximum number of active threads" the hardware allows.
//! [`ShardedServe`] splits the tenant population over `N` independent
//! `ServeRegistry` shards (by hash of [`TenantId`] — the mapping is
//! pure, so there is never anything to rebalance), each owned by its
//! own **driver thread** running the feed→drain→harvest loop. The
//! autonomic loop of every tenant stays local to its shard; what the
//! shards share is exactly the global capacity plane:
//!
//! * **one [`Engine`] / pool** — all shards submit into the same
//!   workers, so capacity decisions (LP, provisioning) stay global;
//! * **one [`ServeMonitor`]** — still the *single* registered listener;
//!   its route table is shard-aware (each route carries its shard tag)
//!   and delivery walks only the monitor's own lock, so an event can
//!   never serialize two shards on each other;
//! * **one [`SharedEstimators`] pool** — a clonable `Arc`-shared,
//!   lock-guarded handle, so structural twins warm-start each other
//!   *across* shards and the latency-aware admission gate prices every
//!   shard's tenants from the same history.
//!
//! Ingress ([`feed`](ShardedServe::feed) /
//! [`feed_batch`](ShardedServe::feed_batch)) takes only the owning
//! shard's lock: `K` ingress threads feeding tenants on different
//! shards proceed in parallel, and each shard's driver drains
//! concurrently with ingress on every other shard. All registry
//! semantics (admission gates, key-rotating round-robin fairness,
//! per-tenant result order) hold per shard unchanged.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use askel_adapt::TriggerEngine;
use askel_core::AutonomicController;
use askel_engine::{Engine, EngineError};
use askel_obs::{HistogramSnapshot, MetricsSnapshot};
use askel_skeletons::Skel;

use crate::admission::{Admission, AdmissionPolicy, BatchAdmission};
use crate::estimators::SharedEstimators;
use crate::mux::ServeMonitor;
use crate::registry::{ServeRegistry, TenantId, TenantStats};

/// SplitMix64 — the tenant→shard hash. Any fixed mixing function works
/// (the mapping must only be pure and well-spread); this one is already
/// the repo's standard mixer (`askel-sim`'s tie keys).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One shard: its registry, and the doorbell its driver sleeps on.
struct ShardSlot<P, R> {
    registry: Mutex<ServeRegistry<P, R>>,
    /// Set by ingress after handing the shard new work; cleared by the
    /// driver when it wakes.
    dirty: Mutex<bool>,
    doorbell: Condvar,
}

struct Inner<P, R> {
    engine: Engine,
    monitor: Arc<ServeMonitor>,
    shared: SharedEstimators,
    shards: Vec<ShardSlot<P, R>>,
    next_tenant: AtomicU64,
    stop: AtomicBool,
}

impl<P, R> Inner<P, R> {
    fn slot(&self, tenant: TenantId) -> &ShardSlot<P, R> {
        &self.shards[(splitmix64(tenant.0) % self.shards.len() as u64) as usize]
    }

    /// Rings a shard's doorbell so its driver re-runs the loop now.
    fn ring(&self, slot: &ShardSlot<P, R>) {
        *slot.dirty.lock() = true;
        slot.doorbell.notify_one();
    }
}

/// N `ServeRegistry` shards over one shared engine, each driven by its
/// own thread; see the module docs.
pub struct ShardedServe<P, R> {
    inner: Arc<Inner<P, R>>,
    drivers: Vec<JoinHandle<()>>,
}

impl<P, R> ShardedServe<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// `shards` registries (≥ 1) over a non-owning clone of `engine`,
    /// with `policy` applied to every shard, and one driver thread per
    /// shard started immediately. Shutting the engine down remains the
    /// caller's job (after [`quiesce`](Self::quiesce) and drop/
    /// [`join`](Self::join)).
    pub fn new(engine: &Engine, shards: usize, policy: AdmissionPolicy) -> Self {
        let shards = shards.max(1);
        let monitor = ServeMonitor::new();
        let shared = SharedEstimators::new(0.5);
        let registered = Arc::new(AtomicBool::new(false));
        let slots = (0..shards)
            .map(|i| ShardSlot {
                registry: Mutex::new(ServeRegistry::new_shard(
                    engine,
                    Arc::clone(&monitor),
                    shared.clone(),
                    Arc::clone(&registered),
                    i as u32,
                    policy,
                )),
                dirty: Mutex::new(false),
                doorbell: Condvar::new(),
            })
            .collect();
        let inner = Arc::new(Inner {
            engine: engine.clone(),
            monitor,
            shared,
            shards: slots,
            next_tenant: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let drivers = (0..shards)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("askel-serve-shard-{i}"))
                    .spawn(move || drive(&inner, i))
                    .expect("spawn shard driver")
            })
            .collect();
        ShardedServe { inner, drivers }
    }

    /// Attaches one shared WCT controller to the multiplexed loop (all
    /// shards; see [`ServeRegistry::attach_controller`]).
    pub fn attach_controller(&self, controller: Arc<AutonomicController>) {
        for slot in &self.inner.shards {
            slot.registry
                .lock()
                .attach_controller(Arc::clone(&controller));
        }
    }

    /// Registers a plain tenant on its hash-owned shard (see
    /// [`ServeRegistry::register`]).
    pub fn register(&self, skel: &Skel<P, R>) -> TenantId {
        let id = self.inner.next_tenant.fetch_add(1, Ordering::SeqCst);
        let tenant = TenantId(id);
        self.inner
            .slot(tenant)
            .registry
            .lock()
            .register_with_id(id, skel)
    }

    /// Registers an adaptive tenant on its hash-owned shard: events are
    /// routed through the shared monitor, and the trigger warm-starts
    /// from the global estimator pool — history absorbed on *any* shard
    /// warms structural twins on every shard (see
    /// [`ServeRegistry::register_adaptive`]).
    pub fn register_adaptive(&self, skel: &Skel<P, R>, trigger: Arc<TriggerEngine>) -> TenantId {
        let id = self.inner.next_tenant.fetch_add(1, Ordering::SeqCst);
        let tenant = TenantId(id);
        self.inner
            .slot(tenant)
            .registry
            .lock()
            .register_adaptive_with_id(id, skel, trigger)
    }

    /// Feeds one item through the owning shard's admission gates and
    /// rings that shard's driver. Only the owning shard's lock is
    /// taken.
    pub fn feed(&self, tenant: TenantId, input: P) -> Admission {
        let slot = self.inner.slot(tenant);
        let out = slot.registry.lock().feed(tenant, input);
        self.inner.ring(slot);
        out
    }

    /// Feeds a batch through the owning shard's admission gates (one
    /// depth sample, one pool transaction per admitted chunk) and rings
    /// that shard's driver.
    pub fn feed_batch(&self, tenant: TenantId, inputs: Vec<P>) -> BatchAdmission {
        let slot = self.inner.slot(tenant);
        let out = slot.registry.lock().feed_batch(tenant, inputs);
        self.inner.ring(slot);
        out
    }

    /// Takes every result the tenant has finished, in submission order,
    /// without blocking (see [`ServeRegistry::take_ready`]).
    pub fn take_ready(&self, tenant: TenantId) -> Vec<Result<R, EngineError>> {
        self.inner.slot(tenant).registry.lock().take_ready(tenant)
    }

    /// Detaches the tenant from its shard, flushing its backlog and
    /// returning its remaining results (see [`ServeRegistry::detach`]).
    /// Safe to call while the shard's driver is mid-drain: the shard
    /// lock serializes them, and the driver's key-rotating cursor skips
    /// over removed tenants without re-favoring anyone.
    pub fn detach(&self, tenant: TenantId) -> Option<Vec<Result<R, EngineError>>> {
        self.inner.slot(tenant).registry.lock().detach(tenant)
    }

    /// A snapshot of `tenant`'s counters; `None` if unknown.
    pub fn stats(&self, tenant: TenantId) -> Option<TenantStats> {
        self.inner.slot(tenant).registry.lock().stats(tenant)
    }

    /// The tenant's sojourn histogram (cloned out of its shard); `None`
    /// for an unknown tenant.
    pub fn tenant_sojourn(&self, tenant: TenantId) -> Option<HistogramSnapshot> {
        self.inner
            .slot(tenant)
            .registry
            .lock()
            .tenant_sojourn(tenant)
            .cloned()
    }

    /// Blocks until every shard is settled — no backlogged or in-flight
    /// items anywhere; every fed item's result is then harvestable via
    /// [`take_ready`](Self::take_ready). The driver threads do the
    /// draining; this only rings and polls.
    pub fn quiesce(&self) {
        loop {
            let mut all = true;
            for slot in &self.inner.shards {
                let settled = slot.registry.lock().settled();
                if !settled {
                    all = false;
                    self.inner.ring(slot);
                }
            }
            if all {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// How many tenants are registered, over all shards.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.registry.lock().len())
            .sum()
    }

    /// Whether no tenants are registered on any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many shards (== driver threads) the front runs.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard index that owns `tenant` (pure hash — stable for the
    /// front's lifetime).
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        (splitmix64(tenant.0) % self.inner.shards.len() as u64) as usize
    }

    /// The shared engine (non-owning clone).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The single multiplexed event monitor all shards route through.
    pub fn monitor(&self) -> &Arc<ServeMonitor> {
        &self.inner.monitor
    }

    /// The global cross-shard estimator pool.
    pub fn shared_estimators(&self) -> &SharedEstimators {
        &self.inner.shared
    }

    /// One unified metrics snapshot: the shared hub's series plus every
    /// shard's per-tenant sojourn histograms.
    pub fn export_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.engine.metrics_hub().snapshot();
        for slot in &self.inner.shards {
            slot.registry.lock().append_tenant_histograms(&mut snap);
        }
        snap
    }

    /// Stops and joins the driver threads. In-flight work is not
    /// awaited — call [`quiesce`](Self::quiesce) first if every fed
    /// item must complete. Dropping the front joins implicitly.
    pub fn join(mut self) {
        self.stop_drivers();
    }
}

impl<P, R> ShardedServe<P, R> {
    fn stop_drivers(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for slot in &self.inner.shards {
            self.inner.ring(slot);
        }
        for handle in self.drivers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<P, R> Drop for ShardedServe<P, R> {
    fn drop(&mut self) {
        self.stop_drivers();
    }
}

/// One shard's driver: the feed→drain→harvest loop. Each pass runs one
/// fairness round (`drain_cycle` — harvest + backlog dispatch + route/
/// estimator refresh) under the shard lock, then decides how to wait:
/// keep going while it dispatched something, nap briefly while items
/// are in flight (harvest again soon without camping on the lock
/// ingress needs), or sleep on the doorbell until ingress rings.
fn drive<P, R>(inner: &Inner<P, R>, idx: usize)
where
    P: Send + 'static,
    R: Send + 'static,
{
    let slot = &inner.shards[idx];
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let (dispatched, settled) = {
            let mut registry = slot.registry.lock();
            let dispatched = registry.drain_cycle();
            (dispatched, registry.settled())
        };
        if dispatched > 0 {
            continue;
        }
        let wait = if settled {
            // Nothing owed: sleep until ingress rings (bounded, so a
            // missed edge can only ever delay work by one period).
            Duration::from_millis(1)
        } else {
            // In flight on the pool: re-harvest soon, off the lock.
            Duration::from_micros(50)
        };
        let mut dirty = slot.dirty.lock();
        if !*dirty {
            slot.doorbell.wait_for(&mut dirty, wait);
        }
        *dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::seq;

    #[test]
    fn tenants_spread_over_shards_and_results_stay_per_tenant() {
        let engine = Engine::new(2);
        let serve: ShardedServe<i64, i64> =
            ShardedServe::new(&engine, 4, AdmissionPolicy::default());
        assert_eq!(serve.shards(), 4);
        let tenants: Vec<TenantId> = (0..16)
            .map(|i| serve.register(&seq(move |x: i64| x * 10 + i)))
            .collect();
        let mut used = std::collections::BTreeSet::new();
        for &t in &tenants {
            used.insert(serve.shard_of(t));
        }
        assert!(used.len() > 1, "16 tenants hash onto more than one shard");
        for (i, &t) in tenants.iter().enumerate() {
            for x in 0..4 {
                assert_ne!(
                    serve.feed(t, x),
                    Admission::Rejected(crate::RejectReason::UnknownTenant),
                    "tenant {i} routed to the wrong shard"
                );
            }
        }
        serve.quiesce();
        for (i, &t) in tenants.iter().enumerate() {
            let got: Vec<i64> = serve
                .take_ready(t)
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            let want: Vec<i64> = (0..4).map(|x| x * 10 + i as i64).collect();
            assert_eq!(got, want, "tenant {i}");
        }
        serve.join();
        engine.shutdown();
    }

    #[test]
    fn drivers_dispatch_backlogs_without_explicit_drain_calls() {
        let engine = Engine::new(2);
        // Quota 1 forces nearly everything through the backlog: only
        // the shard drivers can dispatch it.
        let policy = AdmissionPolicy::default().max_in_flight(1).max_backlog(512);
        let serve: ShardedServe<i64, i64> = ShardedServe::new(&engine, 4, policy);
        let t = serve.register(&seq(|x: i64| x + 1));
        let out = serve.feed_batch(t, (0..64).collect());
        assert_eq!(out.submitted + out.queued, 64, "nothing shed");
        serve.quiesce();
        let got: Vec<i64> = serve
            .take_ready(t)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, (1..=64).collect::<Vec<_>>());
        serve.join();
        engine.shutdown();
    }

    #[test]
    fn empty_front_joins_cleanly() {
        let engine = Engine::new(1);
        let serve: ShardedServe<i64, i64> =
            ShardedServe::new(&engine, 2, AdmissionPolicy::default());
        assert!(serve.is_empty());
        serve.quiesce();
        drop(serve); // Drop path joins the drivers
        engine.shutdown();
    }
}
