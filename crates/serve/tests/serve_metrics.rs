//! Serving-layer metrics: admission-outcome counters, per-tenant sojourn
//! histograms, and the unified export snapshot.

use askel_engine::Engine;
use askel_serve::{Admission, AdmissionPolicy, ServeRegistry, TenantId};
use askel_skeletons::seq;

#[test]
fn disabled_hub_records_no_serve_metrics() {
    let engine = Engine::new(2);
    let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine);
    let t = reg.register(&seq(|x: i64| x * 2));
    for x in 0..10 {
        reg.feed(t, x);
    }
    reg.quiesce();
    assert_eq!(reg.take_ready(t).len(), 10);
    let snap = reg.export_snapshot();
    assert_eq!(snap.counter("serve_admit_submitted_total"), Some(0));
    assert_eq!(snap.histogram("serve_sojourn_ns").unwrap().count(), 0);
    assert!(
        snap.histogram("serve_sojourn_ns{tenant=\"t0\"}").is_none(),
        "no per-tenant series without recorded sojourns"
    );
    engine.shutdown();
}

#[test]
fn admission_outcomes_and_sojourns_are_recorded() {
    let engine = Engine::new(2);
    engine.metrics_hub().set_enabled(true);
    let policy = AdmissionPolicy::default().max_in_flight(2).max_backlog(3);
    let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine).with_policy(policy);
    let slow = seq(|x: i64| {
        std::thread::sleep(std::time::Duration::from_millis(5));
        x
    });
    let t = reg.register(&slow);
    for x in 0..7 {
        reg.feed(t, x);
    }
    assert_eq!(
        reg.feed(TenantId(99), 0),
        Admission::Rejected(askel_serve::RejectReason::UnknownTenant)
    );
    reg.quiesce();
    assert_eq!(reg.take_ready(t).len(), 5);
    let snap = reg.export_snapshot();
    assert_eq!(snap.counter("serve_admit_submitted_total"), Some(2));
    assert_eq!(snap.counter("serve_admit_queued_total"), Some(3));
    assert_eq!(
        snap.counter("serve_admit_rejected_total{reason=\"backlog_full\"}"),
        Some(2)
    );
    assert_eq!(
        snap.counter("serve_admit_rejected_total{reason=\"unknown_tenant\"}"),
        Some(1)
    );
    // All five completed items (2 submitted + 3 backlog-dispatched) have
    // sojourns in both the aggregate and the tenant's own histogram.
    assert_eq!(snap.histogram("serve_sojourn_ns").unwrap().count(), 5);
    let tenant = snap
        .histogram("serve_sojourn_ns{tenant=\"t0\"}")
        .expect("per-tenant series exported");
    assert_eq!(tenant.count(), 5);
    // Each item slept 5 ms; the sojourn floor is well above 1 ms.
    assert!(
        tenant.min() >= 1_000_000,
        "min {} ns too small",
        tenant.min()
    );
    assert_eq!(tenant, reg.tenant_sojourn(t).unwrap());
    engine.shutdown();
}

#[test]
fn export_round_trips_through_prometheus_and_json() {
    use askel_obs::MetricsSnapshot;

    let engine = Engine::new(2);
    engine.metrics_hub().set_enabled(true);
    let mut reg: ServeRegistry<i64, i64> = ServeRegistry::new(&engine);
    let a = reg.register(&seq(|x: i64| x + 1));
    let b = reg.register(&seq(|x: i64| x - 1));
    for x in 0..20 {
        reg.feed(a, x);
        reg.feed(b, x);
    }
    reg.quiesce();
    reg.take_ready(a);
    reg.take_ready(b);
    let snap = reg.export_snapshot();

    // Prometheus: the per-tenant p99 scraped back equals the histogram's.
    let text = snap.to_prometheus();
    for (tenant, id) in [(a, "t0"), (b, "t1")] {
        let series = format!("serve_sojourn_ns{{tenant=\"{id}\",quantile=\"0.99\"}}");
        let scraped = MetricsSnapshot::scrape(&text, &series).expect("series present");
        let expect = reg.tenant_sojourn(tenant).unwrap().percentile(0.99);
        assert_eq!(scraped, expect as f64, "{series}");
    }

    // JSON: lossless round-trip of the whole snapshot.
    let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(
        back.histogram("serve_sojourn_ns{tenant=\"t1\"}"),
        snap.histogram("serve_sojourn_ns{tenant=\"t1\"}")
    );
    assert_eq!(
        back.counter("serve_admit_submitted_total"),
        snap.counter("serve_admit_submitted_total")
    );
    engine.shutdown();
}
