//! Scheduler components: periodic actors that tick on virtual time.
//!
//! A [`Component`] is anything that wants to run *between* muscle
//! completions — a provisioning-policy review point, a telemetry
//! sampler, a fault injector. The scheduler asks each component when it
//! next wants to run ([`Component::next_tick`]) and, once virtual time
//! reaches that instant, calls [`Component::tick`]. Ticks happen *before*
//! any completion carrying the same timestamp, so a component observes
//! the world as of strictly-earlier events.
//!
//! Components only tick while the machine has work in flight: an idle
//! simulated cluster costs nothing, and a simulation with no pending
//! completions terminates regardless of what components would like to do
//! next.

use askel_skeletons::TimeNs;

/// An effect a component asks the scheduler to apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Change the simulated worker capacity (level of parallelism), as
    /// if an external controller had called `SimLpControl::request`.
    RequestLp(usize),
}

/// A periodic actor driven by the discrete-event scheduler.
///
/// Contract: after `tick(now)` returns, `next_tick(now)` must be
/// strictly greater than `now` (or `None`) — otherwise the scheduler
/// would loop forever at one instant. Components are only consulted
/// while completions are pending, so an idle machine never ticks.
pub trait Component: Send {
    /// The next virtual instant this component wants to run, if any.
    fn next_tick(&self, now: TimeNs) -> Option<TimeNs>;

    /// Runs the component at virtual time `now`, returning any commands
    /// for the scheduler to apply before resuming dispatch.
    fn tick(&mut self, now: TimeNs) -> Vec<Command>;
}

/// A fixed-interval component wrapping a callback: fires every `every`
/// nanoseconds of virtual time, starting one interval after first use.
pub struct PeriodicTick<F: FnMut(TimeNs) -> Vec<Command> + Send> {
    every: TimeNs,
    next: Option<TimeNs>,
    on_tick: F,
}

impl<F: FnMut(TimeNs) -> Vec<Command> + Send> PeriodicTick<F> {
    /// A component calling `on_tick` every `every` of virtual time.
    pub fn new(every: TimeNs, on_tick: F) -> Self {
        PeriodicTick {
            every,
            next: None,
            on_tick,
        }
    }
}

impl<F: FnMut(TimeNs) -> Vec<Command> + Send> Component for PeriodicTick<F> {
    fn next_tick(&self, now: TimeNs) -> Option<TimeNs> {
        match self.next {
            Some(at) => Some(at),
            // Lazy start: first tick one interval after the component is
            // first consulted, anchored to current virtual time.
            None => Some(TimeNs(now.0 + self.every.0.max(1))),
        }
    }

    fn tick(&mut self, now: TimeNs) -> Vec<Command> {
        self.next = Some(TimeNs(now.0 + self.every.0.max(1)));
        (self.on_tick)(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_tick_advances_past_now() {
        let mut ticks = Vec::new();
        {
            let mut c = PeriodicTick::new(TimeNs(10), |now| {
                ticks.push(now);
                Vec::new()
            });
            let mut now = TimeNs::ZERO;
            for _ in 0..3 {
                let at = c.next_tick(now).unwrap();
                assert!(at > now, "tick must be strictly in the future");
                now = at;
                c.tick(now);
            }
        }
        assert_eq!(ticks, vec![TimeNs(10), TimeNs(20), TimeNs(30)]);
    }

    #[test]
    fn zero_interval_still_terminates() {
        let mut c = PeriodicTick::new(TimeNs::ZERO, |_| Vec::new());
        let at = c.next_tick(TimeNs(5)).unwrap();
        assert!(at > TimeNs(5));
        c.tick(at);
        assert!(c.next_tick(at).unwrap() > at);
    }
}
