//! Cost models: where simulated muscle durations come from.
//!
//! The simulator executes muscle *functions* for real (so data flow, split
//! cardinalities and results are genuine) but takes their *durations* from a
//! [`CostModel`]. The model sees the muscle identity, how many times that
//! muscle has run, the payload item count and the payload itself, so costs
//! can be constant, data-dependent, or deterministically noisy.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use askel_skeletons::{MuscleId, MuscleRole, TimeNs};

/// Description of one muscle invocation, handed to the cost model *before*
/// the muscle runs.
pub struct MuscleCall<'a> {
    /// Which muscle.
    pub muscle: MuscleId,
    /// Its role (duplicated from the id for convenience).
    pub role: MuscleRole,
    /// How many invocations of this muscle happened before this one
    /// (0 for the first). Lets models vary cost across invocations
    /// deterministically.
    pub seq_no: u64,
    /// Payload item count: 1 for single values, the list length for a
    /// merge's input.
    pub items: usize,
    /// The actual input payload (downcast to inspect sizes).
    pub payload: &'a dyn Any,
}

/// Source of virtual durations for muscle executions.
pub trait CostModel: Send + Sync {
    /// Virtual duration of this invocation.
    fn duration(&self, call: &MuscleCall<'_>) -> TimeNs;
}

/// Every muscle takes zero time — functional simulation only.
pub struct ZeroCost;

impl CostModel for ZeroCost {
    fn duration(&self, _call: &MuscleCall<'_>) -> TimeNs {
        TimeNs::ZERO
    }
}

/// Constant duration per muscle, with a default for unlisted muscles.
///
/// This is the model behind the paper's worked example
/// (`t(fs)=10, t(fe)=15, t(fm)=5`).
#[derive(Clone)]
pub struct TableCost {
    durations: HashMap<MuscleId, TimeNs>,
    default: TimeNs,
}

impl TableCost {
    /// A table where unlisted muscles cost `default`.
    pub fn new(default: TimeNs) -> Self {
        TableCost {
            durations: HashMap::new(),
            default,
        }
    }

    /// Sets the duration of one muscle (builder style).
    pub fn with(mut self, muscle: MuscleId, duration: TimeNs) -> Self {
        self.durations.insert(muscle, duration);
        self
    }

    /// Sets the duration of one muscle.
    pub fn set(&mut self, muscle: MuscleId, duration: TimeNs) {
        self.durations.insert(muscle, duration);
    }

    /// Reads a configured duration.
    pub fn get(&self, muscle: MuscleId) -> Option<TimeNs> {
        self.durations.get(&muscle).copied()
    }
}

impl CostModel for TableCost {
    fn duration(&self, call: &MuscleCall<'_>) -> TimeNs {
        self.durations
            .get(&call.muscle)
            .copied()
            .unwrap_or(self.default)
    }
}

/// A payload inspector supplying item counts to [`LinearCost`].
pub type PayloadProbe = Box<dyn Fn(&dyn Any) -> Option<usize> + Send + Sync>;

/// Cost proportional to payload size: `base + per_item × items`.
///
/// `items` is the payload item count; for finer granularity provide a
/// `probe` that inspects the payload (e.g. the byte length of a text
/// chunk) and overrides the item count.
pub struct LinearCost {
    /// Fixed part of every invocation.
    pub base: TimeNs,
    /// Cost per item.
    pub per_item: TimeNs,
    probe: Option<PayloadProbe>,
}

impl LinearCost {
    /// A linear model with no payload probe.
    pub fn new(base: TimeNs, per_item: TimeNs) -> Self {
        LinearCost {
            base,
            per_item,
            probe: None,
        }
    }

    /// Adds a payload probe that, when it recognizes the payload type,
    /// supplies the item count.
    pub fn with_probe(
        mut self,
        probe: impl Fn(&dyn Any) -> Option<usize> + Send + Sync + 'static,
    ) -> Self {
        self.probe = Some(Box::new(probe));
        self
    }
}

impl CostModel for LinearCost {
    fn duration(&self, call: &MuscleCall<'_>) -> TimeNs {
        let items = self
            .probe
            .as_ref()
            .and_then(|p| p(call.payload))
            .unwrap_or(call.items);
        TimeNs(self.base.0 + self.per_item.0.saturating_mul(items as u64))
    }
}

/// Routes to different models per muscle, with a fallback.
pub struct PerMuscleCost {
    models: HashMap<MuscleId, Arc<dyn CostModel>>,
    fallback: Arc<dyn CostModel>,
}

impl PerMuscleCost {
    /// A router with the given fallback model.
    pub fn new(fallback: Arc<dyn CostModel>) -> Self {
        PerMuscleCost {
            models: HashMap::new(),
            fallback,
        }
    }

    /// Routes one muscle to a dedicated model (builder style).
    pub fn route(mut self, muscle: MuscleId, model: Arc<dyn CostModel>) -> Self {
        self.models.insert(muscle, model);
        self
    }
}

impl CostModel for PerMuscleCost {
    fn duration(&self, call: &MuscleCall<'_>) -> TimeNs {
        self.models
            .get(&call.muscle)
            .unwrap_or(&self.fallback)
            .duration(call)
    }
}

/// Multiplies an inner model's durations by a deterministic pseudo-random
/// factor in `[1-amplitude, 1+amplitude]`, keyed by (seed, muscle, seq_no).
///
/// This models the paper's observation that "in practice some execution
/// muscles took less time than others" without sacrificing replayability.
pub struct JitterCost<C> {
    inner: C,
    amplitude: f64,
    seed: u64,
}

impl<C: CostModel> JitterCost<C> {
    /// Wraps `inner`; `amplitude` is clamped to `[0, 1]`.
    pub fn new(inner: C, amplitude: f64, seed: u64) -> Self {
        JitterCost {
            inner,
            amplitude: amplitude.clamp(0.0, 1.0),
            seed,
        }
    }

    fn factor(&self, muscle: MuscleId, seq_no: u64) -> f64 {
        let mixed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(muscle.node.0.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((muscle.role as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(seq_no);
        let unit = crate::sched::splitmix64(mixed) as f64 / u64::MAX as f64; // in [0, 1]
        1.0 + self.amplitude * (2.0 * unit - 1.0)
    }
}

impl<C: CostModel> CostModel for JitterCost<C> {
    fn duration(&self, call: &MuscleCall<'_>) -> TimeNs {
        let base = self.inner.duration(call);
        let f = self.factor(call.muscle, call.seq_no);
        TimeNs::from_secs_f64(base.as_secs_f64() * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use askel_skeletons::NodeId;

    fn call(muscle: MuscleId, seq_no: u64, items: usize) -> MuscleCall<'static> {
        MuscleCall {
            muscle,
            role: muscle.role,
            seq_no,
            items,
            payload: &(),
        }
    }

    fn m(n: u64, role: MuscleRole) -> MuscleId {
        MuscleId::new(NodeId(n), role)
    }

    #[test]
    fn zero_cost_is_zero() {
        let c = ZeroCost;
        assert_eq!(
            c.duration(&call(m(1, MuscleRole::Execute), 0, 1)),
            TimeNs::ZERO
        );
    }

    #[test]
    fn table_cost_uses_entries_and_default() {
        let fs = m(1, MuscleRole::Split);
        let fe = m(2, MuscleRole::Execute);
        let c = TableCost::new(TimeNs::from_secs(1)).with(fs, TimeNs::from_secs(10));
        assert_eq!(c.duration(&call(fs, 0, 1)), TimeNs::from_secs(10));
        assert_eq!(c.duration(&call(fe, 0, 1)), TimeNs::from_secs(1));
        assert_eq!(c.get(fs), Some(TimeNs::from_secs(10)));
        assert_eq!(c.get(fe), None);
    }

    #[test]
    fn linear_cost_scales_with_items() {
        let c = LinearCost::new(TimeNs::from_millis(10), TimeNs::from_millis(2));
        assert_eq!(
            c.duration(&call(m(1, MuscleRole::Merge), 0, 5)),
            TimeNs::from_millis(20)
        );
    }

    #[test]
    fn linear_probe_overrides_items() {
        let c = LinearCost::new(TimeNs::ZERO, TimeNs::from_millis(1))
            .with_probe(|p| p.downcast_ref::<Vec<u8>>().map(|v| v.len()));
        let payload: Vec<u8> = vec![0; 7];
        let mc = MuscleCall {
            muscle: m(1, MuscleRole::Execute),
            role: MuscleRole::Execute,
            seq_no: 0,
            items: 1,
            payload: &payload,
        };
        assert_eq!(c.duration(&mc), TimeNs::from_millis(7));
    }

    #[test]
    fn per_muscle_routes() {
        let fs = m(1, MuscleRole::Split);
        let fe = m(2, MuscleRole::Execute);
        let c = PerMuscleCost::new(Arc::new(TableCost::new(TimeNs::from_secs(1))))
            .route(fs, Arc::new(TableCost::new(TimeNs::from_secs(9))));
        assert_eq!(c.duration(&call(fs, 0, 1)), TimeNs::from_secs(9));
        assert_eq!(c.duration(&call(fe, 0, 1)), TimeNs::from_secs(1));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let fe = m(2, MuscleRole::Execute);
        let c = JitterCost::new(TableCost::new(TimeNs::from_secs(1)), 0.5, 42);
        let d1 = c.duration(&call(fe, 7, 1));
        let d2 = c.duration(&call(fe, 7, 1));
        assert_eq!(d1, d2, "same key must give same jitter");
        let d3 = c.duration(&call(fe, 8, 1));
        assert_ne!(d1, d3, "different seq_no should jitter differently");
        for s in 0..100 {
            let d = c.duration(&call(fe, s, 1)).as_secs_f64();
            assert!((0.5..=1.5).contains(&d), "jitter out of bounds: {d}");
        }
    }

    #[test]
    fn zero_amplitude_jitter_is_identity() {
        let fe = m(2, MuscleRole::Execute);
        let c = JitterCost::new(TableCost::new(TimeNs::from_secs(2)), 0.0, 1);
        assert_eq!(c.duration(&call(fe, 3, 1)), TimeNs::from_secs(2));
    }
}
